#!/usr/bin/env python3
"""Regenerate the paper's Table 2 across the whole SPEC CINT2000 suite.

Evaluates all eleven workload analogs through the full framework pipeline
and prints the summary table: minimum threads at the best speedup, the
speedup itself, the Moore's-law requirement (1.4x per core doubling) and
the ratio — with GeoMean and ArithMean rows, next to the paper's reported
numbers.

Takes ~10 seconds.  Run:  python examples/suite_report.py
"""

from repro.core.framework import ParallelizationFramework
from repro.core.report import SuiteReport
from repro.workloads.suite import PAPER_TABLE2, SUITE


def main() -> None:
    framework = ParallelizationFramework()
    suite = SuiteReport()
    print("evaluating the suite...")
    for name, factory in SUITE.items():
        evaluation = framework.evaluate(factory())
        suite.add(evaluation.report)
        paper_threads, paper_speedup = PAPER_TABLE2[name]
        print(
            f"  {name:<12} ours {evaluation.report.speedup_at_best:6.2f}x "
            f"@ {evaluation.report.best_threads:<2}   "
            f"paper {paper_speedup:6.2f}x @ {paper_threads}"
        )

    print("\n" + suite.format_table())
    print("\npaper's summary rows: GeoMean 17 threads, 5.54x, 3.97, 1.39 | "
          "ArithMean 20 threads, 9.81x, 4.16, 2.04")


if __name__ == "__main__":
    main()
