#!/usr/bin/env python3
"""The IR route: build a program, analyze it, partition it, simulate it.

The framework's compiler-facing front door (Sections 2.1-2.2): construct a
whole program in the package's IR, discover its loops, build the PDG,
apply profile-guided speculation, run speculative PS-DSWP partitioning,
and simulate the resulting pipeline across core counts.

The example loop is a classic reduction over records behind a linked
traversal — an A (pointer chase) / B (hash) / C (accumulate) shape the
partitioner should discover on its own.

Run:  python examples/compile_and_partition.py
"""

from repro.core.framework import ParallelizationFramework
from repro.ir.builder import ProgramBuilder
from repro.ir.loops import find_loops
from repro.ir.printer import format_function
from repro.ir.types import IntType


def build_program():
    pb = ProgramBuilder("records")
    table = pb.global_variable("table")
    cursor = pb.global_variable("cursor")
    total = pb.global_variable("total")

    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    # A: chase the cursor to the next record (loop-carried, cheap).
    position = fb.load(cursor, [cursor], name="position", cost=2)
    next_position = fb.add(position, 1, name="next_position", cost=1)
    fb.store(next_position, cursor, [cursor], cost=1)
    # B: hash the record (pure, expensive — the replication candidate).
    record = fb.load(table, [table], name="record", cost=4)
    h1 = fb.mul(record, 2654435761, name="h1", cost=30)
    h2 = fb.binop("xor", h1, position, name="h2", cost=30)
    # C: fold into the running total (loop-carried, cheap).
    running = fb.load(total, [total], name="running", cost=1)
    fb.store(fb.add(running, h2, name="updated", cost=1), total, [total], cost=1)
    done = fb.compare("lt", next_position, 100000, name="done")
    fb.branch(done, "loop", "exit")
    fb.block("exit")
    fb.ret()
    return pb.finish()


def main() -> None:
    program = build_program()
    main_fn = program.function("main")
    print("=== the program ===")
    print(format_function(main_fn))

    loop = find_loops(main_fn).outermost()
    framework = ParallelizationFramework()
    partition = framework.parallelize_loop(program, loop)

    print("\n=== PS-DSWP partition ===")
    print(partition.describe())
    print(f"parallel fraction: {partition.parallel_fraction:.1%}")

    print("\n=== simulated speedup (512 iterations) ===")
    graph = partition.task_graph(512)
    for cores in (1, 2, 4, 8, 16, 32):
        result = framework.simulate_graph(graph, cores)
        print(f"  {cores:>2} cores: {result.speedup:5.2f}x "
              f"(utilization {result.utilization:.0%})")


if __name__ == "__main__":
    main()
