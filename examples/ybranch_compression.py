#!/usr/bin/env python3
"""Figure 1 live: the Y-branch on a dictionary compressor.

The paper's motivating example is a compressor whose heuristics "restart
the dictionary at arbitrary intervals" — an unpredictable, data-dependent
decision that serializes block compression.  The Y-branch annotation
declares that the restart may legally happen at *any* dynamic instance, so
the compiler can pick the restart schedule itself and unlock parallelism.

This script runs the real LZ77 workload (164.gzip analog) both ways:

- sequential policy: the heuristic decides; output is bit-exact but the
  pipeline cannot run blocks in parallel;
- parallel policy: the Y-branch fires on its probability-derived interval;
  blocks become independent, speedup becomes near-linear, and the
  compression ratio degrades by well under the paper's 1% bound.

Run:  python examples/ybranch_compression.py
"""

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.workloads.gzip_w import GzipWorkload


def main() -> None:
    print("=== with the Y-branch engaged (interval policy) ===")
    framework = ParallelizationFramework()
    engaged = framework.evaluate(GzipWorkload())
    curve = engaged.report.curve
    for threads in (1, 4, 8, 16, 32):
        print(f"  {threads:>2} threads: {curve[threads]:5.2f}x")
    print(f"  blocks compressed in parallel: {engaged.parallel_trace.iteration_count}")
    print(f"  output: {engaged.output_comparison.note}")

    print("\n=== Y-branch disabled (sequential policy only) ===")
    disabled_framework = ParallelizationFramework(
        FrameworkConfig(engage_ybranch=False)
    )
    disabled = disabled_framework.evaluate(GzipWorkload())
    print(f"  best speedup: {disabled.report.best_speedup:.2f}x "
          "(adaptive boundaries serialize every block)")
    print(f"  output: bit-identical = {disabled.output_comparison.equivalent}")

    gain = engaged.report.best_speedup / disabled.report.best_speedup
    print(f"\nThe two annotated source lines buy a {gain:.0f}x improvement — "
          "the paper's Table 1 lists exactly 2 model-extension lines for gzip.")


if __name__ == "__main__":
    main()
