#!/usr/bin/env python3
"""Figure 2 live: the Commutative annotation on 300.twolf's Yacm_random.

"It seems counterintuitive for parallelism to be limited by the generation
of random numbers" (Section 4.3.3) — yet the Lehmer generator's seed
recurrence is a loop-carried dependence through every iteration that calls
it.  The *Commutative* annotation declares all call orders legal; the
internal seed dependence disappears from the parallelizer's view while each
call still executes atomically.

This script evaluates the twolf placement annealer with and without the
annotation, then shows the same effect in isolation on a micro-loop.

Run:  python examples/commutative_rng.py
"""

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.profiling.memory_profile import MemoryProfile
from repro.profiling.tracer import Tracer
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.rng import AcmRandom
from repro.workloads.twolf_w import TwolfWorkload


class RngMicroLoop(Workload):
    """Monte-Carlo-ish loop: every iteration draws two random numbers."""

    info = WorkloadInfo(
        name="rng-micro", loops=("loop",), exec_time_pct="100%",
        lines_changed_all=1, lines_changed_model=1, techniques=("Commutative",),
    )

    def __init__(self, commutative: bool) -> None:
        self.commutative = commutative

    def run(self, tracer):
        rng = AcmRandom(seed=1, commutative=self.commutative)
        hits = 0
        for i in range(300):
            with tracer.task("A", i):
                tracer.work(1)
            with tracer.task("B", i):
                x = rng.unit()
                y = rng.unit()
                if x * x + y * y < 1.0:
                    hits += 1
                tracer.work(40)
            with tracer.task("C", i):
                tracer.work(1)
        return hits


def main() -> None:
    print("=== micro-loop: two RNG calls per iteration ===")
    for commutative in (False, True):
        evaluation = ParallelizationFramework().evaluate(RngMicroLoop(commutative))
        label = "with @commutative" if commutative else "un-annotated    "
        print(
            f"  {label}: best speedup {evaluation.report.best_speedup:5.2f}x "
            f"(cross-iteration seed deps: "
            f"{len(evaluation.profile.cross_iteration_dependences())})"
        )

    print("\n=== 300.twolf: the paper's actual case study ===")
    annotated = ParallelizationFramework().evaluate(TwolfWorkload())
    stripped = ParallelizationFramework(
        FrameworkConfig(enable_commutative=False)
    ).evaluate(TwolfWorkload())
    print(f"  with the annotation:    {annotated.report.best_speedup:.2f}x "
          f"@ {annotated.report.best_threads} threads (paper: 2.06x @ 8)")
    print(f"  without the annotation: {stripped.report.best_speedup:.2f}x "
          "(the seed recurrence serializes uloop)")
    print("\nOutput changes (different random choices), but per Section 4.3.3 "
          "'the benchmark still runs as intended'.")


if __name__ == "__main__":
    main()
