#!/usr/bin/env python3
"""Quickstart: parallelize a sequential loop and measure its speedup.

This walks the paper's Figure 3 end to end with the *trace route*:

1. write an ordinary sequential program, decomposed into the three phases
   of Section 3.2 (A: read, B: compute, C: commit) and instrumented with
   the tracer;
2. hand it to the parallelization framework, which profiles it, chooses
   speculation from the observed dependences, builds the task graph, and
   simulates it on 1-32 cores with the paper's machine model (bounded
   core-to-core queues, versioned memory, least-loaded phase-B dispatch);
3. print the speedup curve — the same kind of series as the paper's
   Figures 4-7.

Run:  python examples/quickstart.py
"""

from repro.core.framework import ParallelizationFramework
from repro.core.report import format_speedup_curve
from repro.workloads.base import Workload, WorkloadInfo


class ChecksumPipeline(Workload):
    """A toy application: read records, hash them, append to a log.

    The B phase is pure per-record compute — except one shared counter
    that is bumped every 16 records.  Watch the framework *speculate* that
    location (its conflict rate is low) instead of serializing on it.
    """

    info = WorkloadInfo(
        name="quickstart", loops=("main loop",), exec_time_pct="100%",
        lines_changed_all=0, lines_changed_model=0, techniques=("DSWP",),
    )

    def __init__(self, records: int = 200) -> None:
        self.records = records

    def run(self, tracer):
        log = []
        rare_counter = 0
        for i in range(self.records):
            with tracer.task("A", i):             # read the next record
                record = (i * 2654435761) % (1 << 32)
                tracer.store("record", i, value=record)
                tracer.work(2)

            with tracer.task("B", i):             # hash it (expensive)
                tracer.load("record", i)
                digest = record
                for _ in range(64):
                    digest = (digest * 31 + 7) % (1 << 32)
                if i % 16 == 0:                   # the rare shared update
                    tracer.load("stats", "counter")
                    rare_counter += 1
                    tracer.store("stats", "counter", value=rare_counter)
                tracer.store("digest", i, value=digest)
                tracer.work(64)

            with tracer.task("C", i):             # commit in order
                tracer.load("digest", i)
                log.append(digest)
                tracer.work(1)
        return sum(log) % (1 << 32)


def main() -> None:
    framework = ParallelizationFramework()
    evaluation = framework.evaluate(ChecksumPipeline())

    print("=== speculation plan ===")
    for decision in evaluation.plan.decisions:
        print(f"  speculate {decision}")
    for sync in evaluation.plan.synchronizations:
        print(f"  synchronize {sync.target}: {sync.reason}")
    print(f"  misspeculation rate: {evaluation.misspeculation.rate:.1%}")

    print("\n=== speedup vs. threads (cf. paper Figures 4-7) ===")
    print(format_speedup_curve(evaluation.report))

    report = evaluation.report
    print(
        f"\nbest speedup {report.best_speedup:.2f}x at {report.best_threads} "
        f"threads (Moore's-law requirement there: {report.moores_speedup:.2f}x, "
        f"ratio {report.ratio:.2f})"
    )

    print("\n=== the 6-core schedule (A feeds replicated B, C commits in order) ===")
    from repro.core.gantt import render_gantt

    print(render_gantt(evaluation.graph, evaluation.simulations[6], width=84))


if __name__ == "__main__":
    main()
