#!/usr/bin/env python3
"""Beyond the paper: multi-stage PS-DSWP on a two-hump loop.

The paper's evaluation always uses three phases (sequential A, replicated
B, sequential C).  When a loop has *two* heavy DOALL regions separated by a
sequential recurrence, that shape must leave one region unreplicated.  This
example builds such a loop in the IR, partitions it both ways, and compares:

- the classic 3-phase plan (`repro.dswp.partition.partition_loop`);
- the generalized alternating chain
  (`repro.dswp.multistage.partition_loop_multistage`) simulated by
  `MultiStageSimulator` with water-filling core allocation.

Run:  python examples/multistage_pipeline.py
"""

from repro.core.simulator import PipelineSimulator
from repro.dswp.multistage import MultiStageSimulator, partition_loop_multistage
from repro.dswp.partition import partition_loop
from repro.hw.machine import MachineConfig
from repro.ir.builder import ProgramBuilder
from repro.ir.loops import find_loops
from repro.ir.types import IntType


def build_two_hump_loop():
    """B1 (heavy, pure) -> S (carried recurrence) -> B2 (heavy, pure)."""
    pb = ProgramBuilder("two_hump")
    mid = pb.global_variable("mid")
    out = pb.global_variable("out")
    data = pb.global_variable("data")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    i = fb.phi(IntType(64), [(0, "entry")], name="i")
    element = fb.load(data, [data], name="element", cost=2)
    hump1 = fb.mul(element, element, name="hump1", cost=100)
    carried = fb.load(mid, [mid], name="carried", cost=1)
    mixed = fb.add(carried, hump1, name="mixed", cost=1)
    fb.store(mixed, mid, [mid], cost=1)
    hump2 = fb.mul(mixed, 3, name="hump2", cost=100)
    acc = fb.load(out, [out], name="acc", cost=1)
    fb.store(fb.add(acc, hump2, name="acc2", cost=1), out, [out], cost=1)
    next_i = fb.add(i, 1, name="next_i")
    phi = fb.function.block("loop").phis()[0]
    phi.operands.append(next_i)
    phi.incoming_blocks.append("loop")
    fb.branch(fb.compare("lt", next_i, 100000, name="cond"), "loop", "exit")
    fb.block("exit")
    fb.ret()
    program = pb.finish()
    return program, find_loops(program.function("main")).outermost()


def main() -> None:
    iterations = 512

    program, loop = build_two_hump_loop()
    classic = partition_loop(program, loop)
    print("=== classic 3-phase partition ===")
    print(classic.describe())

    program2, loop2 = build_two_hump_loop()
    multi = partition_loop_multistage(program2, loop2)
    print("\n=== multi-stage partition ===")
    print(multi.describe())

    print("\n=== speedup comparison ===")
    print(f"{'cores':>6} {'3-phase':>9} {'multi-stage':>12}")
    for cores in (4, 8, 16, 32):
        machine = MachineConfig(cores=cores)
        classic_result = PipelineSimulator(machine).simulate(
            classic.task_graph(iterations)
        )
        multi_result = MultiStageSimulator(machine).simulate(multi, iterations)
        print(
            f"{cores:>6} {classic_result.speedup:>8.2f}x "
            f"{multi_result.speedup:>11.2f}x   "
            f"(cores per stage: {multi_result.core_allocation})"
        )

    print(
        "\nThe 3-phase plan leaves one hump in a sequential stage, capping it "
        "near 2x at any core count; the generalized chain replicates both "
        "humps and scales to the machine.  (Below ~6 cores the 5-stage chain "
        "cannot even be laid out, so the 3-phase plan wins there — stage "
        "count is itself a resource decision.)"
    )


if __name__ == "__main__":
    main()
