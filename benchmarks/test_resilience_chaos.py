"""Chaos-resilience counters for the benchmark record.

The figure/table benchmarks measure *performance*; this one measures
*survivability* and exports the evidence: seeded chaos runs over the bzip2
analog (the CI seed matrix honours ``CHAOS_SEED``), the injection mix, the
recovery counters, and the invariant audit — all merged into
``benchmarks/results.json`` so EXPERIMENTS.md can cite reproducible
fault-tolerance numbers next to the speedup curves.
"""

import os

from repro.resilience import run_chaos
from repro.workloads.bzip2_w import Bzip2Workload

#: Small blocks, many of them: 40 iterations gives the default chaos mix
#: (21 worker-side + 3 channel-side injections) room to sample disjointly.
BZIP2_ARGS = dict(block_size=4 * 1024, blocks=40)
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1337"))


def test_chaos_counters_exported(benchmark, results_sink):
    report = benchmark.pedantic(
        lambda: run_chaos(
            Bzip2Workload(**BZIP2_ARGS).exec_spec, CHAOS_SEED, workers=2
        ),
        rounds=1,
        iterations=1,
    )
    assert report.ok, report.format_summary()
    assert report.output_identical

    metrics = report.result.metrics
    results_sink["resilience_chaos"] = {
        "seed": report.seed,
        "injected_faults": report.injected_faults,
        "channel_injections": report.channel_injections,
        "ok": report.ok,
        "output_identical": report.output_identical,
        "violations": [str(v) for v in report.violations],
        "worker_crashes": metrics.worker_crashes,
        "worker_timeouts": metrics.worker_timeouts,
        "soft_faults": metrics.soft_faults,
        "conflicts": metrics.conflicts,
        "serial_reexecutions": metrics.serial_reexecutions,
        "respawns": metrics.respawns,
        "retries": metrics.retries,
        "duplicates_dropped": metrics.duplicates_dropped,
        "degraded_to_sequential": metrics.degraded_to_sequential,
        "throttle_shrinks": metrics.throttle_shrinks,
        "throttle_grows": metrics.throttle_grows,
        "min_window": metrics.min_window,
        "checkpoints_taken": metrics.checkpoints_taken,
        "wall_seconds": round(metrics.wall_seconds, 3),
    }
    print()
    print(report.format_summary())
