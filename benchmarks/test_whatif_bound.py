"""Sanity bound on the what-if profiler's batching projection.

The critical-path analyzer (``repro.obs.analyze``) projects a
``double_batch`` what-if by replaying the causal graph with
serialization costs halved.  That projection is a *whole-run* speedup,
so it must never exceed what batching actually buys on the raw wire —
and the wire number is measured right here, with the same
:func:`_throughput` harness ``test_channel_throughput`` gates in CI.

Two bounds, Amdahl-shaped:

- lower: the projection is a speedup, never a slowdown (>= ~1.0);
- upper: halving serialization on a run whose critical path is only
  fraction ``f`` serialization can at most yield ``1 / (1 - f/2)``
  (perfect batching, zero residual).  The measured wire curve caps the
  achievable per-item win, so the projection must also stay under the
  batch-64-vs-1 wire speedup with slack.

Plain runs assert sanity only; ``PERF_GATE=1`` (the CI perf job) arms
the tight band.  Results land in ``benchmarks/results.json`` under
``bottleneck_whatif`` — deliberately *not* a ``check_perf`` gated
section (projection ratios swing with box load; the in-test bounds are
the contract).
"""

import os
import shutil
import tempfile

from test_channel_throughput import _throughput, _tuple_payload

from repro.exec import ExecutionEngine, PipelineSpec
from repro.obs import TraceConfig, analyze_trace, merge_spool_dir

ITERATIONS = 1200
PERF_GATE = os.environ.get("PERF_GATE") == "1"


def whatif_produce(i):
    # Wide tuples: enough pickle bytes per item that the unbatched wire
    # (batch_size=1) pays visible serialization on the critical path.
    return tuple(range(i & 15, (i & 15) + 24))


def whatif_work(i, value):
    return sum(value) ^ (i & 127)


def whatif_commit(i, result, acc):
    acc["sum"] = acc.get("sum", 0) + result


def whatif_finalize(acc):
    return acc.get("sum", 0)


def _traced_unbatched_report():
    """One real engine run at batch_size=1, analyzed from its trace."""
    spool_dir = tempfile.mkdtemp(prefix="whatif-bound-")
    try:
        engine = ExecutionEngine(
            workers=2, capacity=64, batch_size=1,
            trace=TraceConfig(spool_dir=spool_dir),
        )
        result = engine.run(
            PipelineSpec(
                iterations=ITERATIONS,
                produce=whatif_produce,
                work=whatif_work,
                commit=whatif_commit,
                finalize=whatif_finalize,
            )
        )
        merged = merge_spool_dir(spool_dir)
        return analyze_trace(merged, metrics=result.metrics.to_json())
    finally:
        shutil.rmtree(spool_dir, ignore_errors=True)


def test_whatif_batching_projection_is_bounded(benchmark, results_sink):
    measured = {}

    def sweep():
        measured["wire_1"] = _throughput(1, _tuple_payload)
        measured["wire_64"] = _throughput(64, _tuple_payload)
        measured["report"] = _traced_unbatched_report()
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = measured["report"]
    wire_speedup = measured["wire_64"] / measured["wire_1"]
    what_ifs = {w["name"]: w for w in report.to_json()["what_ifs"]}
    assert "double_batch" in what_ifs, (
        f"unbatched run offered no batching what-if: {sorted(what_ifs)}"
    )
    projected = what_ifs["double_batch"]["projected_speedup"]
    serialization_fraction = report.fractions.get("serialization", 0.0)
    # Perfect batching removes at most half the serialization share of
    # the critical path (the edit halves costs, it doesn't erase them).
    amdahl_cap = 1.0 / max(1e-9, 1.0 - serialization_fraction / 2.0)

    print(
        f"\nwhatif/double_batch projected:{projected:.3f}x  "
        f"amdahl-cap:{amdahl_cap:.3f}x  wire b64/b1:{wire_speedup:.2f}x  "
        f"serialization fraction:{serialization_fraction:.1%}"
    )

    results_sink["bottleneck_whatif"] = {
        "iterations": ITERATIONS,
        "projected_double_batch_speedup": round(projected, 3),
        "serialization_fraction": round(serialization_fraction, 4),
        "amdahl_cap": round(amdahl_cap, 3),
        "wire_speedup_batch64_vs_1": round(wire_speedup, 3),
        "top_blame": report.top,
    }

    # Sanity everywhere: a what-if is a projected improvement, and no
    # whole-run batching win can beat the raw wire win.
    assert projected >= 0.95, (
        f"double_batch projected a slowdown: {projected:.3f}x"
    )
    assert projected <= wire_speedup * 1.25, (
        f"projection {projected:.2f}x beats the measured wire speedup "
        f"{wire_speedup:.2f}x — the replay is over-crediting batching"
    )
    if PERF_GATE:
        # Tight band: the projection must respect the Amdahl cap derived
        # from its own blame split (with slack for replay residuals).
        assert projected <= amdahl_cap * 1.20, (
            f"projection {projected:.3f}x exceeds the Amdahl cap "
            f"{amdahl_cap:.3f}x implied by a {serialization_fraction:.1%} "
            "serialization share"
        )
