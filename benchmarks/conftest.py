"""Shared machinery for the figure/table benchmarks.

Each benchmark evaluates workloads through the full framework pipeline and
regenerates the corresponding figure's series (speedup vs. thread count) or
table's rows.  Results are printed and also accumulated into
``benchmarks/results.json`` so EXPERIMENTS.md can be refreshed from one run.

Evaluations are cached per session: several benchmarks inspect the same
workload, and one evaluation (two profiled runs + 16 simulations) is the
natural unit of cost.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.workloads.suite import SUITE, make_workload

_RESULTS_PATH = Path(__file__).parent / "results.json"


class EvaluationCache:
    def __init__(self) -> None:
        self._cache: Dict[str, object] = {}

    def evaluate(self, name: str, config: FrameworkConfig = None):
        key = f"{name}/{config!r}"
        if key not in self._cache:
            framework = ParallelizationFramework(config)
            self._cache[key] = framework.evaluate(make_workload(name))
        return self._cache[key]


@pytest.fixture(scope="session")
def evaluations() -> EvaluationCache:
    return EvaluationCache()


@pytest.fixture(scope="session")
def results_sink():
    """Accumulates every regenerated series/row; flushed at session end."""
    data: Dict[str, object] = {}
    yield data
    if data:
        existing = {}
        if _RESULTS_PATH.exists():
            try:
                existing = json.loads(_RESULTS_PATH.read_text())
            except json.JSONDecodeError:
                existing = {}
        existing.update(data)
        _RESULTS_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True))


def format_series(name: str, curve: Dict[int, float]) -> str:
    points = "  ".join(f"{t}:{s:.2f}" for t, s in sorted(curve.items()))
    return f"{name:<12} {points}"
