"""Perf-regression gate: compare fresh benchmark results against a baseline.

The CI perf job snapshots the committed ``benchmarks/results.json`` (the
recorded baseline), re-runs the throughput benchmarks (which overwrite the
file in place), and then calls this script::

    python benchmarks/check_perf.py /tmp/perf_baseline.json \
        benchmarks/results.json --tolerance 0.30

Every throughput leaf (``items_per_sec`` and ``speedup_batch64_vs_1``)
under the perf sections must stay within ``tolerance`` of the baseline —
a fresh value below ``baseline * (1 - tolerance)`` fails the gate, as does
a leaf that disappeared.  Higher-is-better everywhere; improvements are
reported but never fail.  The per-transport wire-matrix ratios are held
to *absolute* floors instead (see ``ABSOLUTE_FLOORS``) — they swing too
much with box load for a snapshot-relative tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterator, Tuple

#: results.json sections this gate audits (others track figures/tables).
PERF_SECTIONS = ("channel_throughput", "exec_fast_path")
#: Leaves under those sections that are gated (higher is better).
GATED_LEAVES = ("items_per_sec", "speedup_batch64_vs_1")

#: Absolute floors for the per-transport wire matrix (ISSUE 8).  These are
#: deliberately NOT tolerance-vs-baseline gated: the ratios legitimately
#: swing ~2x with box load (the pipe side moves 3x with feeder-thread
#: scheduling), so a snapshot-relative gate would flake on healthy runs.
#: The floors mirror the PERF_GATE assertions inside
#: ``test_transport_matrix`` — the shm wire must stay >=5x the PR 3
#: batched-pipe anchors, and beat the same-run pipe >=3x on 64 KiB blocks.
ABSOLUTE_FLOORS = {
    "transport_matrix.shm_vs_pr3_batched_pipe.tuples": 5.0,
    "transport_matrix.shm_vs_pr3_batched_pipe.raw_bytes": 5.0,
    "transport_matrix.shm_vs_pipe.blocks_64k": 3.0,
}


def _walk(prefix: str, node) -> Iterator[Tuple[str, float]]:
    if isinstance(node, dict):
        for key, value in node.items():
            yield from _walk(f"{prefix}.{key}", value)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        yield prefix, float(node)


def gated_metrics(results: dict) -> Dict[str, float]:
    """``section.leaf...path -> value`` for every gated throughput number."""
    metrics: Dict[str, float] = {}
    for section in PERF_SECTIONS:
        data = results.get(section)
        if not isinstance(data, dict):
            continue
        for leaf in GATED_LEAVES:
            if leaf in data:
                metrics.update(_walk(f"{section}.{leaf}", data[leaf]))
    return metrics


def compare(
    baseline: dict, current: dict, tolerance: float
) -> Tuple[list, list]:
    """Returns (failures, report_lines)."""
    base_metrics = gated_metrics(baseline)
    fresh_metrics = gated_metrics(current)
    failures = []
    lines = []
    for path, base_value in sorted(base_metrics.items()):
        fresh_value = fresh_metrics.get(path)
        if fresh_value is None:
            failures.append(f"{path}: present in baseline, missing now")
            continue
        floor = base_value * (1.0 - tolerance)
        delta = (fresh_value - base_value) / base_value if base_value else 0.0
        verdict = "ok" if fresh_value >= floor else "REGRESSION"
        lines.append(
            f"{verdict:>10}  {path}: {base_value:,.1f} -> {fresh_value:,.1f} "
            f"({delta:+.1%}, floor {floor:,.1f})"
        )
        if fresh_value < floor:
            failures.append(
                f"{path}: {fresh_value:,.1f} is below {floor:,.1f} "
                f"(baseline {base_value:,.1f} - {tolerance:.0%})"
            )
    if not base_metrics:
        failures.append(
            "baseline has no gated perf metrics — run the throughput "
            "benchmarks and commit benchmarks/results.json first"
        )
    flat_current: Dict[str, float] = {}
    for section, data in current.items():
        if isinstance(data, dict):
            flat_current.update(_walk(section, data))
    for path, floor in sorted(ABSOLUTE_FLOORS.items()):
        value = flat_current.get(path)
        if value is None:
            failures.append(f"{path}: required wire-matrix ratio missing")
            continue
        verdict = "ok" if value >= floor else "REGRESSION"
        lines.append(
            f"{verdict:>10}  {path}: {value:,.2f} (absolute floor {floor})"
        )
        if value < floor:
            failures.append(
                f"{path}: {value:,.2f} is below the absolute floor {floor}"
            )
    return failures, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline results.json snapshot")
    parser.add_argument("current", help="freshly generated results.json")
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.current) as handle:
        current = json.load(handle)
    failures, lines = compare(baseline, current, args.tolerance)
    for line in lines:
        print(line)
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} regression(s)):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nperf gate passed: {len(lines)} metric(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
