"""CI smoke for the live telemetry plane: scrape a chaotic run mid-flight.

The unit tests exercise the registry, the watchdog, and the HTTP surface
in-process; this script is the end-to-end acceptance check, run exactly the
way an operator would use the feature:

1. launch ``python -m repro exec 197.parser --chaos 24 --seed 1337 --serve``
   as a real subprocess (the seed deterministically injects a worker hang,
   which freezes the commit frontier long enough for the watchdog to flag
   a stall);
2. poll ``/health`` and scrape ``/metrics`` *while the run executes*,
   asserting the exposition is valid Prometheus text, counters are
   monotone scrape-over-scrape, and health transitions ok -> degraded and
   back;
3. after the run exits 0, assert its history record carries the watchdog's
   stall verdict;
4. run the same seed again and gate the pair through
   ``python -m repro history --check`` — the cross-run regression gate the
   record exists to feed.

Usage: ``PYTHONPATH=src python benchmarks/live_smoke.py [HISTORY_PATH]``
"""

import json
import os
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

SEED = 1337
CHAOS = 24
WORKERS = 3
#: Wide tolerance for the cross-run gate: both runs inject the same ~1 s
#: hang, but shared CI boxes add real timing noise on top.
HISTORY_TOLERANCE = "0.5"
DEADLINE_S = 180.0


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def get(port: int, path: str):
    """(status, body) — 503 from /health is an answer, not an error."""
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5.0
        ) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def parse_prometheus(text: str) -> dict:
    """Validate exposition structure; return {sample-key: value}."""
    samples = {}
    seen_help, seen_type = set(), set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            seen_help.add(line.split(" ")[2])
            continue
        if line.startswith("# TYPE "):
            name = line.split(" ")[2]
            assert name in seen_help, f"TYPE before HELP: {name}"
            seen_type.add(name)
            continue
        assert line.strip(), "blank line in exposition"
        key, value = line.rsplit(" ", 1)
        family = key.split("{")[0]
        base = (
            family.rsplit("_bucket", 1)[0]
            .rsplit("_sum", 1)[0]
            .rsplit("_count", 1)[0]
        )
        assert base in seen_type, f"sample before TYPE: {line}"
        samples[key] = float(value)
    assert samples, "empty exposition"
    return samples


def exec_command(history: str, port: int, label: str):
    return [
        sys.executable, "-m", "repro", "exec", "197.parser",
        "--chaos", str(CHAOS), "--seed", str(SEED),
        "--workers", str(WORKERS),
        "--serve", str(port), "--live-interval", "0.1",
        "--history", history, "--label", label,
    ]


def monitored_run(history: str) -> None:
    port = free_port()
    proc = subprocess.Popen(
        exec_command(history, port, "live-smoke"),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    statuses = set()
    scrapes = []
    deadline = time.monotonic() + DEADLINE_S
    try:
        # Wait for the server (it comes up after the workers spawn).
        while proc.poll() is None:
            assert time.monotonic() < deadline, "server never came up"
            try:
                get(port, "/health")
                break
            except OSError:
                time.sleep(0.05)
        polls = 0
        while proc.poll() is None and time.monotonic() < deadline:
            try:
                status, body = get(port, "/health")
            except OSError:
                break  # server torn down at run end
            payload = json.loads(body)
            statuses.add((status, payload["status"]))
            if polls % 10 == 0:
                try:
                    _, text = get(port, "/metrics")
                    scrapes.append(parse_prometheus(text))
                except OSError:
                    break
            polls += 1
            time.sleep(0.02)
        proc.wait(timeout=DEADLINE_S)
    finally:
        if proc.poll() is None:
            proc.kill()
    output = proc.stdout.read()
    assert proc.returncode == 0, f"chaos run failed:\n{output}"

    # Mid-run scrapes: valid exposition, monotone counters.
    assert len(scrapes) >= 2, f"only {len(scrapes)} mid-run scrapes"
    first, last = scrapes[0], scrapes[-1]
    for key, value in first.items():
        if "_total" in key or "_bucket" in key or "_count" in key:
            assert last.get(key, 0) >= value, f"{key} went backwards"

    # Health transitioned: healthy at some point, degraded during the
    # injected hang (HTTP 503 is the probe contract).
    assert (200, "ok") in statuses, f"never saw ok: {sorted(statuses)}"
    assert (503, "degraded") in statuses, (
        f"watchdog never surfaced the injected stall over /health: "
        f"{sorted(statuses)}"
    )

    # The history record carries the watchdog's verdict durably.
    with open(history, "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    record = records[-1]
    assert record["label"] == "live-smoke"
    watchdog = record["watchdog"]
    assert watchdog is not None and watchdog["stalls"] >= 1, (
        f"no stall in the history record: {watchdog}"
    )
    print(
        f"live smoke: {len(scrapes)} scrapes, statuses {sorted(statuses)}, "
        f"watchdog {watchdog['stalls']} stall(s) -> recorded"
    )


def baseline_gate(history: str) -> None:
    subprocess.run(
        exec_command(history, free_port(), "live-smoke-2"),
        check=True, stdout=subprocess.DEVNULL,
    )
    subprocess.run(
        [
            sys.executable, "-m", "repro", "history",
            "--history", history, "--check",
            "--tolerance", HISTORY_TOLERANCE,
        ],
        check=True,
    )


def main() -> int:
    history = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        "benchmarks", "history.jsonl"
    )
    monitored_run(history)
    baseline_gate(history)
    print("live smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
