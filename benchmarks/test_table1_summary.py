"""Table 1: the per-benchmark parallelization summary.

Regenerates the paper's Table 1 columns — loop(s), approximate execution
time, lines changed (all / within the model), techniques — from the
workload metadata, and cross-checks the per-benchmark claims against the
actually-used mechanisms in each evaluation.
"""

import pytest

from repro.workloads.suite import SUITE, make_workload, suite_names

#: The paper's Table 1 "Approx. Exec. Time" column, per loop.
PAPER_EXEC_TIME = {
    "164.gzip": ("30%", "70%"),
    "175.vpr": ("100%",),
    "176.gcc": ("95%",),
    "181.mcf": ("25%", "75%", "4%", "20%"),
    "186.crafty": ("100%", "98%"),
    "197.parser": ("100%",),
    "253.perlbmk": ("100%",),
    "254.gap": ("100%",),
    "255.vortex": ("20%", "70%"),
    "256.bzip2": ("100%",),
    "300.twolf": ("100%",),
}

#: The paper's Table 1 lines-changed columns: (all, model).
PAPER_LINES_CHANGED = {
    "164.gzip": (26, 2),
    "175.vpr": (1, 1),
    "176.gcc": (18, 8),
    "181.mcf": (0, 0),
    "186.crafty": (0, 9),
    "197.parser": (3, 3),
    "253.perlbmk": (0, 0),
    "254.gap": (3, 3),
    "255.vortex": (0, 0),
    "256.bzip2": (0, 0),
    "300.twolf": (1, 1),
}


def test_table1_rows(benchmark, results_sink):
    def build_table():
        rows = []
        for name in suite_names():
            info = make_workload(name).info
            rows.append(
                (
                    info.name,
                    "; ".join(info.loops),
                    info.exec_time_pct,
                    info.lines_changed_all,
                    info.lines_changed_model,
                    ", ".join(info.techniques),
                )
            )
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    header = (
        f"{'Benchmark':<12} {'All':>4} {'Model':>5}  Techniques"
    )
    print("\n" + header)
    for name, loops, pct, all_lines, model_lines, techniques in rows:
        print(f"{name:<12} {all_lines:>4} {model_lines:>5}  {techniques}")
    results_sink["table1"] = [
        {
            "benchmark": r[0],
            "loops": r[1],
            "exec_time": r[2],
            "lines_all": r[3],
            "lines_model": r[4],
            "techniques": r[5],
        }
        for r in rows
    ]
    assert len(rows) == 11


@pytest.mark.parametrize("name", sorted(SUITE))
def test_lines_changed_match_paper(name):
    info = make_workload(name).info
    assert (info.lines_changed_all, info.lines_changed_model) == PAPER_LINES_CHANGED[name]


@pytest.mark.parametrize("name", sorted(SUITE))
def test_exec_time_column_matches_paper(name):
    info = make_workload(name).info
    assert info.exec_time_pct == PAPER_EXEC_TIME[name]
    assert len(info.exec_time_pct) == len(info.loops)


def test_total_lines_changed_about_sixty():
    """Abstract: 'by changing only 60 source code lines, all of the C
    benchmarks in the SPEC CINT2000 suite were parallelizable'."""
    total = sum(all_lines for all_lines, _ in PAPER_LINES_CHANGED.values())
    model_total = sum(m for _, m in PAPER_LINES_CHANGED.values())
    assert total + (model_total - total if model_total > total else 0) <= 60
    assert total == 52  # the All column of Table 1 sums to 52


@pytest.mark.parametrize("name", sorted(SUITE))
def test_claimed_techniques_are_exercised(name):
    """Workloads claiming Commutative must register groups; Y-branch
    claimants must expose a site."""
    workload = make_workload(name)
    techniques = " ".join(workload.info.techniques)
    if "Commutative" in techniques:
        from repro.core.framework import ParallelizationFramework

        evaluation = ParallelizationFramework().evaluate(workload)
        assert evaluation.plan.commutative_groups
    if "Y-branch" in techniques:
        assert workload.uses_ybranch
