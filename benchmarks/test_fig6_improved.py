"""Figure 6: speedup vs. threads for annotation-improved parallelizations.

186.crafty, 197.parser, 300.twolf and 175.vpr parallelize without
annotations but misspeculate too much; *Commutative* on caches, allocators
and RNGs improves them (Section 4.3).  Regenerates each panel plus the
paper's per-benchmark signatures (crafty/parser near-linear; twolf ~2x;
vpr saturating in the mid-teens of threads with its early/late misspec
asymmetry).
"""

import pytest

from repro.core.framework import FrameworkConfig
from repro.workloads.suite import FIGURE6, PAPER_TABLE2

from conftest import format_series


@pytest.mark.parametrize("name", FIGURE6)
def test_figure6_panel(benchmark, evaluations, results_sink, name):
    evaluation = benchmark.pedantic(
        lambda: evaluations.evaluate(name), rounds=1, iterations=1
    )
    curve = evaluation.report.curve
    results_sink[f"figure6/{name}"] = {
        "curve": {str(t): round(s, 3) for t, s in curve.items()},
        "best": round(evaluation.report.best_speedup, 3),
        "best_threads": evaluation.report.best_threads,
        "paper": PAPER_TABLE2[name],
    }
    print("\n" + format_series(name, curve))

    paper_threads, paper_speedup = PAPER_TABLE2[name]
    assert paper_speedup / 2 < evaluation.report.best_speedup < paper_speedup * 2


def test_crafty_and_parser_scale(evaluations):
    for name in ("186.crafty", "197.parser"):
        curve = evaluations.evaluate(name).report.curve
        assert curve[32] > 15
        assert curve[32] > curve[16] > curve[8]


def test_twolf_saturates_low(evaluations):
    report = evaluations.evaluate("300.twolf").report
    assert report.best_speedup < 3.0
    assert report.best_threads <= 14


def test_vpr_early_late_misspeculation_asymmetry(evaluations, results_sink):
    """Section 4.3.4: early try_place iterations misspeculate far more."""
    evaluation = evaluations.evaluate("175.vpr")
    windows = evaluation.misspeculation.windowed_rates(2 * 130)
    results_sink["figure6/175.vpr/misspec_windows"] = [round(w, 3) for w in windows]
    early = sum(windows[:2]) / 2
    late = sum(windows[-2:]) / 2
    assert early > 0.6
    assert late < early / 1.5


def test_commutative_rng_improvement(evaluations, results_sink):
    """The Figure 2 annotation: RNG-bound annealers get unblocked."""
    rows = {}
    for name in ("300.twolf", "175.vpr"):
        with_annotation = evaluations.evaluate(name).report.best_speedup
        without = evaluations.evaluate(
            name, FrameworkConfig(enable_commutative=False)
        ).report.best_speedup
        rows[name] = {"with": round(with_annotation, 3), "without": round(without, 3)}
        assert without < 1.35  # the seed recurrence serializes everything
    results_sink["figure6/commutative_rng"] = rows
