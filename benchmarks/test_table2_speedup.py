"""Table 2: best speedup, threads, Moore's-law comparison for the suite.

Regenerates the paper's summary table — per benchmark the minimum thread
count achieving the best speedup, that speedup, the Moore's-law requirement
(1.4x per core doubling) and the ratio — plus the GeoMean and ArithMean
rows.  The headline reproduction checks:

- every benchmark lands within 2x of its paper speedup, with the same
  winners and losers;
- the suite GeoMean ratio is >= 1 (the paper's 1.39): the extracted
  parallelism beats the historical single-thread trend.
"""

import pytest

from repro.core.report import SuiteReport, moores_law_speedup
from repro.workloads.suite import PAPER_TABLE2, suite_names

from conftest import format_series


def test_table2(benchmark, evaluations, results_sink):
    def build_table():
        suite = SuiteReport()
        for name in suite_names():
            suite.add(evaluations.evaluate(name).report)
        return suite

    suite = benchmark.pedantic(build_table, rounds=1, iterations=1)
    table = suite.format_table()
    print("\n" + table)

    rows = {}
    for report in suite.reports:
        rows[report.name] = {
            "threads": report.best_threads,
            "speedup": round(report.speedup_at_best, 3),
            "moores": round(report.moores_speedup, 3),
            "ratio": round(report.ratio, 3),
            "paper": PAPER_TABLE2[report.name],
        }
    geo = suite.geo_mean_row()
    arith = suite.arith_mean_row()
    results_sink["table2"] = {
        "rows": rows,
        "geomean": [round(x, 3) if isinstance(x, float) else x for x in geo],
        "arithmean": [round(x, 3) if isinstance(x, float) else x for x in arith],
        "paper_geomean": {"threads": 17, "speedup": 5.54, "moores": 3.97, "ratio": 1.39},
        "paper_arithmean": {"threads": 20, "speedup": 9.81, "moores": 4.16, "ratio": 2.04},
    }

    # Per-benchmark: within 2x of the paper's best speedup.
    for report in suite.reports:
        _, paper_speedup = PAPER_TABLE2[report.name]
        assert paper_speedup / 2 < report.speedup_at_best < paper_speedup * 2, report.name

    # Suite-level: beats the Moore's-law line on (geometric) average.
    assert geo[4] >= 1.0
    # And the paper's qualitative conclusion — around 5-6x mean speedup.
    assert 3.5 < geo[2] < 9.0


def test_moores_law_column_matches_paper():
    """The paper's Moore's Speedup values for its thread counts."""
    assert moores_law_speedup(32) == pytest.approx(5.38, abs=0.01)
    assert moores_law_speedup(16) == pytest.approx(3.84, abs=0.01)
    assert moores_law_speedup(15) == pytest.approx(3.71, abs=0.02)
    assert moores_law_speedup(12) == pytest.approx(3.34, abs=0.01)
    assert moores_law_speedup(10) == pytest.approx(3.05, abs=0.01)
    assert moores_law_speedup(8) == pytest.approx(2.74, abs=0.01)
    assert moores_law_speedup(5) == pytest.approx(2.18, abs=0.01)


def test_winners_and_losers_match_paper(evaluations):
    """Ordering sanity across the whole suite."""
    best = {
        name: evaluations.evaluate(name).report.best_speedup
        for name in suite_names()
    }
    scalers = {"164.gzip", "186.crafty", "197.parser"}
    strugglers = {"253.perlbmk", "254.gap", "300.twolf", "181.mcf"}
    for scaler in scalers:
        for struggler in strugglers:
            assert best[scaler] > best[struggler]
    # gzip and crafty and parser all clear 15x; the strugglers stay under 4x.
    assert all(best[s] > 15 for s in scalers)
    assert all(best[s] < 4 for s in strugglers)
