"""First real wall-clock numbers: the multiprocess engine vs. sequential.

Everything else in ``benchmarks/`` measures *simulated* makespans over
abstract work units.  This benchmark measures *actual seconds*: the bzip2
analog's block loop executed sequentially and on the `repro.exec` engine at
1/2/4 workers, plus the simulated speedup at the matching thread counts for
the calibration table EXPERIMENTS.md records.

Wall-clock speedup is hardware-dependent, so the speedup assertion is gated
on CPU count (ISSUE acceptance: >=1.3x at 4 workers, skipped with a reason
on machines with <4 CPUs); the bit-identical-output assertion always runs.
"""

import os
import time

import pytest

from repro.core.report import CalibrationRow, format_calibration_table
from repro.exec import ExecutionEngine, PipelineSpec, run_sequential
from repro.workloads.bzip2_w import Bzip2Workload

from conftest import format_series

#: Enough independent blocks that 4 workers all stay busy, small enough
#: that the whole sweep stays in benchmark territory (~10s of seconds).
BZIP2_ARGS = dict(block_size=12 * 1024, blocks=8)
WORKER_COUNTS = [1, 2, 4]


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_exec_engine_wall_clock(benchmark, evaluations, results_sink):
    sequential_output, sequential_seconds = run_sequential(
        Bzip2Workload(**BZIP2_ARGS).exec_spec()
    )

    measured = {}

    def sweep():
        for workers in WORKER_COUNTS:
            engine = ExecutionEngine(workers=workers, capacity=8)
            result = engine.run(Bzip2Workload(**BZIP2_ARGS).exec_spec())
            assert result.output == sequential_output, (
                f"engine output diverged at {workers} workers"
            )
            result.metrics.sequential_seconds = sequential_seconds
            measured[workers] = result.metrics
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    curve = {
        workers: round(metrics.measured_speedup, 3)
        for workers, metrics in measured.items()
    }
    print("\n" + format_series("exec/bzip2", curve))
    print(f"sequential: {sequential_seconds:.3f}s on {_cpu_count()} CPU(s)")

    # Simulated-vs-measured calibration at the matching thread counts
    # (N workers ~= N+2 simulated threads: + phase-A core + phase-C core).
    rows = []
    evaluation = evaluations.evaluate("256.bzip2")
    for workers, metrics in measured.items():
        threads = workers + 2
        simulated = evaluation.report.curve.get(threads)
        if simulated is None:
            continue
        rows.append(
            CalibrationRow(
                workers=workers,
                threads=threads,
                simulated_speedup=simulated,
                measured_speedup=metrics.measured_speedup,
            )
        )
    if rows:
        print(format_calibration_table("256.bzip2", rows))

    results_sink["exec_engine"] = {
        "workload": "256.bzip2",
        "config": BZIP2_ARGS,
        "cpus": _cpu_count(),
        "sequential_seconds": round(sequential_seconds, 3),
        "measured_speedup": curve,
        "wall_seconds": {
            workers: round(metrics.wall_seconds, 3)
            for workers, metrics in measured.items()
        },
        "calibration": [
            {
                "workers": row.workers,
                "threads": row.threads,
                "simulated": round(row.simulated_speedup, 3),
                "measured": round(row.measured_speedup, 3),
                "ratio": round(row.ratio, 3),
            }
            for row in rows
        ],
    }

    # Outputs identical everywhere (asserted inside the sweep); the
    # wall-clock speedup claim needs real cores.
    cpus = _cpu_count()
    if cpus < 4:
        pytest.skip(
            f"wall-clock speedup assertion needs >=4 CPUs, machine has {cpus}: "
            f"measured curve {curve} is recorded but not asserted"
        )
    assert curve[4] >= 1.3, (
        f"expected >=1.3x at 4 workers on {cpus} CPUs, got {curve[4]}"
    )
    assert curve[2] > curve[1] * 0.9  # 2 workers should not be slower


# -- the fast path: batched transport on a communication-bound pipeline ------------

#: Enough trivial iterations that per-item transport cost dominates the
#: run (and process spawn-up does not) — exactly the regime the batched
#: framed transport exists for.
FAST_ITERATIONS = 12000
FAST_BATCH_SIZES = [1, 8, 64]
#: Hard perf assertions (the >=2x fast-path claim) run in the CI perf job.
PERF_GATE = os.environ.get("PERF_GATE") == "1"


def fast_produce(i):
    return (i, i & 7)


def fast_work(i, value):
    return value[1] ^ (i & 3)


def fast_commit(i, result, acc):
    acc["sum"] = acc.get("sum", 0) + result


def fast_finalize(acc):
    return acc.get("sum", 0)


def fast_spec():
    return PipelineSpec(
        iterations=FAST_ITERATIONS,
        produce=fast_produce,
        work=fast_work,
        commit=fast_commit,
        finalize=fast_finalize,
    )


def test_exec_fast_path_batching(benchmark, results_sink):
    """Items/sec through the whole engine at batch sizes 1 / 8 / 64.

    The work is deliberately negligible: at batch size 1 every iteration
    pays a pickle, a pipe write, and per-item counter locks on each of the
    two channels, so the run measures communication overhead — the cost the
    framed transport, lock-light counters, and chunked dispatch amortize.
    """
    sequential_output, _ = run_sequential(fast_spec())
    measured = {}

    def sweep():
        for batch_size in FAST_BATCH_SIZES:
            engine = ExecutionEngine(
                workers=2, capacity=64, batch_size=batch_size
            )
            result = engine.run(fast_spec())
            assert result.output == sequential_output, (
                f"engine output diverged at batch size {batch_size}"
            )
            measured[batch_size] = result.metrics
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rates = {
        batch: FAST_ITERATIONS / metrics.wall_seconds
        for batch, metrics in measured.items()
    }
    series = "  ".join(
        f"b{batch}:{rate:,.0f}/s ({1e6 / rate:.0f}us)"
        for batch, rate in sorted(rates.items())
    )
    print(f"\nexec/fast-path {series}  on {_cpu_count()} CPU(s)")

    results_sink["exec_fast_path"] = {
        "iterations": FAST_ITERATIONS,
        "workers": 2,
        "capacity": 64,
        "cpus": _cpu_count(),
        "items_per_sec": {
            str(batch): round(rate, 1) for batch, rate in rates.items()
        },
        "per_item_us": {
            str(batch): round(1e6 / rate, 2) for batch, rate in rates.items()
        },
        "wall_seconds": {
            str(batch): round(metrics.wall_seconds, 3)
            for batch, metrics in measured.items()
        },
        "work_channel_frames": {
            str(batch): metrics.channel_stats["work"]["flushes"]
            for batch, metrics in measured.items()
        },
        "speedup_batch64_vs_1": round(rates[64] / rates[1], 3),
    }

    # The fast-path claim: batching wins >=2x on communication-bound work.
    if PERF_GATE:
        assert rates[64] >= 2.0 * rates[1], (
            f"fast path must be >=2x at batch 64, got "
            f"{rates[64] / rates[1]:.2f}x"
        )
    else:
        assert rates[64] >= 0.9 * rates[1], (
            f"batching made the engine slower ({rates[64] / rates[1]:.2f}x)"
        )
