"""First real wall-clock numbers: the multiprocess engine vs. sequential.

Everything else in ``benchmarks/`` measures *simulated* makespans over
abstract work units.  This benchmark measures *actual seconds*: the bzip2
analog's block loop executed sequentially and on the `repro.exec` engine at
1/2/4 workers, plus the simulated speedup at the matching thread counts for
the calibration table EXPERIMENTS.md records.

Wall-clock speedup is hardware-dependent, so the speedup assertion is gated
on CPU count (ISSUE acceptance: >=1.3x at 4 workers, skipped with a reason
on machines with <4 CPUs); the bit-identical-output assertion always runs.
"""

import os
import time

import pytest

from repro.core.report import CalibrationRow, format_calibration_table
from repro.exec import ExecutionEngine, run_sequential
from repro.workloads.bzip2_w import Bzip2Workload

from conftest import format_series

#: Enough independent blocks that 4 workers all stay busy, small enough
#: that the whole sweep stays in benchmark territory (~10s of seconds).
BZIP2_ARGS = dict(block_size=12 * 1024, blocks=8)
WORKER_COUNTS = [1, 2, 4]


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_exec_engine_wall_clock(benchmark, evaluations, results_sink):
    sequential_output, sequential_seconds = run_sequential(
        Bzip2Workload(**BZIP2_ARGS).exec_spec()
    )

    measured = {}

    def sweep():
        for workers in WORKER_COUNTS:
            engine = ExecutionEngine(workers=workers, capacity=8)
            result = engine.run(Bzip2Workload(**BZIP2_ARGS).exec_spec())
            assert result.output == sequential_output, (
                f"engine output diverged at {workers} workers"
            )
            result.metrics.sequential_seconds = sequential_seconds
            measured[workers] = result.metrics
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    curve = {
        workers: round(metrics.measured_speedup, 3)
        for workers, metrics in measured.items()
    }
    print("\n" + format_series("exec/bzip2", curve))
    print(f"sequential: {sequential_seconds:.3f}s on {_cpu_count()} CPU(s)")

    # Simulated-vs-measured calibration at the matching thread counts
    # (N workers ~= N+2 simulated threads: + phase-A core + phase-C core).
    rows = []
    evaluation = evaluations.evaluate("256.bzip2")
    for workers, metrics in measured.items():
        threads = workers + 2
        simulated = evaluation.report.curve.get(threads)
        if simulated is None:
            continue
        rows.append(
            CalibrationRow(
                workers=workers,
                threads=threads,
                simulated_speedup=simulated,
                measured_speedup=metrics.measured_speedup,
            )
        )
    if rows:
        print(format_calibration_table("256.bzip2", rows))

    results_sink["exec_engine"] = {
        "workload": "256.bzip2",
        "config": BZIP2_ARGS,
        "cpus": _cpu_count(),
        "sequential_seconds": round(sequential_seconds, 3),
        "measured_speedup": curve,
        "wall_seconds": {
            workers: round(metrics.wall_seconds, 3)
            for workers, metrics in measured.items()
        },
        "calibration": [
            {
                "workers": row.workers,
                "threads": row.threads,
                "simulated": round(row.simulated_speedup, 3),
                "measured": round(row.measured_speedup, 3),
                "ratio": round(row.ratio, 3),
            }
            for row in rows
        ],
    }

    # Outputs identical everywhere (asserted inside the sweep); the
    # wall-clock speedup claim needs real cores.
    cpus = _cpu_count()
    if cpus < 4:
        pytest.skip(
            f"wall-clock speedup assertion needs >=4 CPUs, machine has {cpus}: "
            f"measured curve {curve} is recorded but not asserted"
        )
    assert curve[4] >= 1.3, (
        f"expected >=1.3x at 4 workers on {cpus} CPUs, got {curve[4]}"
    )
    assert curve[2] > curve[1] * 0.9  # 2 workers should not be slower
