"""Performance microbenchmarks of the reproduction's own machinery.

Unlike the figure/table benches (which run once and assert shapes), these
use pytest-benchmark's real repeated timing: they track the throughput of
the components a user pays for — the pipeline simulator, the memory
profiler, PDG condensation, and the whole-program alias analysis — so
regressions in the infrastructure itself are visible.
"""

import pytest

from repro.analysis.alias import AliasAnalysis
from repro.core.simulator import PipelineSimulator
from repro.core.tasks import Phase, SerializationEdge, Task, TaskGraph
from repro.hw.machine import MachineConfig
from repro.pdg.builder import build_loop_pdg
from repro.pdg.scc import condense
from repro.profiling.memory_profile import MemoryProfile
from repro.profiling.tracer import Tracer


def build_big_graph(iterations=2000):
    tasks = []
    index = 0
    for i in range(iterations):
        for phase, cost in (("A", 2), ("B", 50 + (i * 7919) % 60), ("C", 2)):
            tasks.append(Task(index, Phase(phase), i, cost))
            index += 1
    graph = TaskGraph(tasks)
    for i in range(16, iterations, 16):
        graph.add_edge(
            SerializationEdge((i - 16) * 3 + 1, i * 3 + 1, "misspeculation")
        )
    return graph


def test_perf_pipeline_simulator(benchmark):
    graph = build_big_graph()
    machine = MachineConfig(cores=32)

    result = benchmark(lambda: PipelineSimulator(machine).simulate(graph))
    assert result.makespan > 0


def test_perf_memory_profile(benchmark):
    tracer = Tracer()
    for i in range(3000):
        with tracer.task("B", i):
            tracer.work(1)
            tracer.load("shared", i % 64)
            tracer.store("shared", i % 64, value=i)
            tracer.load("private", i)
    trace = tracer.finish()

    profile = benchmark(lambda: MemoryProfile(trace))
    assert profile.dependences


def test_perf_scc_condensation(benchmark, pipeline_program_and_loop):
    program, loop = pipeline_program_and_loop
    pdg = build_loop_pdg(program, loop)

    dag = benchmark(lambda: condense(pdg))
    assert dag.sccs


def test_perf_alias_analysis(benchmark):
    from repro.workloads.gcc_compiler import Lowerer, Parser, generate_source, tokenize
    from repro.ir.program import Program

    unit = Parser(tokenize(generate_source(5, 25))).parse_unit()
    program = Program("big")
    for ast in unit:
        program.add_function(Lowerer().lower(ast))

    analysis = benchmark(lambda: AliasAnalysis(program))
    assert analysis.all_objects()


@pytest.fixture
def pipeline_program_and_loop():
    from repro.ir.builder import ProgramBuilder
    from repro.ir.loops import find_loops
    from repro.ir.types import IntType

    pb = ProgramBuilder("perf")
    total = pb.global_variable("total")
    data = pb.global_variable("data")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    i = fb.phi(IntType(64), [(0, "entry")], name="i")
    value = fb.load(data, [data], name="value", cost=2)
    result = value
    for step in range(30):  # a wide loop body: 30 chained operations
        result = fb.mul(result, result, name=f"step{step}", cost=3)
    running = fb.load(total, [total], name="running")
    fb.store(fb.add(running, result), total, [total])
    next_i = fb.add(i, 1, name="next_i")
    phi = fb.function.block("loop").phis()[0]
    phi.operands.append(next_i)
    phi.incoming_blocks.append("loop")
    fb.branch(fb.compare("lt", next_i, 1000), "loop", "exit")
    fb.block("exit")
    fb.ret()
    return pb.finish(), find_loops(pb.program.function("main")).outermost()
