"""Figure 7: speedup vs. threads for the output-varying benchmark.

164.gzip needs the Y-branch: fixed block boundaries change the output
(slightly worse compression) in exchange for scalable parallelism
(Section 4.4).  Regenerates the panel and verifies the paper's two claims:
near-linear scaling to 32 threads, and average compression loss under 1%.
"""

import pytest

from repro.core.framework import FrameworkConfig
from repro.workloads.suite import PAPER_TABLE2

from conftest import format_series


def test_figure7_gzip_panel(benchmark, evaluations, results_sink):
    evaluation = benchmark.pedantic(
        lambda: evaluations.evaluate("164.gzip"), rounds=1, iterations=1
    )
    curve = evaluation.report.curve
    results_sink["figure7/164.gzip"] = {
        "curve": {str(t): round(s, 3) for t, s in curve.items()},
        "best": round(evaluation.report.best_speedup, 3),
        "best_threads": evaluation.report.best_threads,
        "paper": PAPER_TABLE2["164.gzip"],
        "output": evaluation.output_comparison.note,
    }
    print("\n" + format_series("164.gzip", curve))
    print(f"output: {evaluation.output_comparison.note}")

    assert evaluation.report.best_speedup > 20      # paper: 29.91
    assert evaluation.report.best_threads >= 28     # paper: 32
    assert curve[32] > curve[16] > curve[8]


def test_figure7_compression_loss_under_one_percent(evaluations):
    evaluation = evaluations.evaluate("164.gzip")
    comparison = evaluation.output_comparison
    assert not comparison.equivalent  # the output legally changed...
    assert comparison.acceptable, comparison.note  # ...by less than 1%


def test_figure7_without_ybranch_no_parallelism(evaluations, results_sink):
    """The sequential-policy ablation: adaptive boundaries serialize gzip."""
    disabled = evaluations.evaluate(
        "164.gzip", FrameworkConfig(engage_ybranch=False)
    )
    results_sink["figure7/ablation_no_ybranch"] = round(
        disabled.report.best_speedup, 3
    )
    assert disabled.report.best_speedup < 1.5
    assert disabled.output_comparison.equivalent  # and the output is exact
