"""CI smoke for repro.service: the job server driven exactly like an
operator would, as a real subprocess over real HTTP.

1. launch ``python -m repro serve`` on an ephemeral port and parse the
   bound address from its banner line;
2. run three consecutive jobs and assert the pool's worker PIDs never
   change — the shared-pool reuse claim, scraped from ``/snapshot``;
3. submit concurrent jobs from two tenants — tenant ``storm`` with a
   seeded misspeculation storm (``chaos.conflicts``), tenant ``quiet``
   clean — and assert the quiet tenant's outputs are bit-identical to a
   solo run of the same spec while ``/health`` degrades only ``storm``;
4. cancel one job mid-flight and assert it lands ``cancelled``;
5. scrape ``/metrics`` for the per-tenant counters;
6. run one *traced* job (``params.trace``) under seeded chaos, fetch
   ``GET /jobs/<id>/trace`` + ``/timeline``, validate the Chrome trace
   structurally, and assert the service stages are present — the merged
   trace is saved as a CI artifact;
7. SIGTERM the server and assert a clean drain (exit 0, "drained
   cleanly" on stdout);
8. kill-and-recover: a *durable* server (``--state-dir``) is SIGKILLed
   mid-job on a seeded :func:`repro.resilience.server_kill_plan`
   schedule (replay with ``SMOKE_KILL_SEED``), restarted on the same
   state dir, and must resume the interrupted job from its checkpoint to
   a bit-identical result, honor the idempotency key from before the
   crash, and dead-letter a poison job after bounded retries — the
   journal and a recovery ``/metrics`` snapshot are saved as CI
   artifacts.

Usage: ``PYTHONPATH=src python benchmarks/service_smoke.py [artifact_dir]``
"""

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

DEADLINE_S = 420.0
QUIET_PARAMS = {"iterations": 48, "spin": 400}
STORM_PARAMS = {
    "iterations": 64, "spin": 400,
    "chaos": {"conflicts": 32, "seed": 11},
}

_deadline = time.monotonic() + DEADLINE_S


def remaining() -> float:
    left = _deadline - time.monotonic()
    if left <= 0:
        raise SystemExit("smoke deadline exceeded")
    return left


def request(method, url, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=min(15, remaining())) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read() or b"{}")


def submit(base, tenant, params):
    status, body = request(
        "POST", f"{base}/jobs",
        {"tenant": tenant, "workload": "synthetic", "params": params},
    )
    assert status == 202, f"submit for {tenant} refused: {status} {body}"
    return body["id"]


def wait_done(base, job_id, expect="done"):
    while True:
        _, body = request("GET", f"{base}/jobs/{job_id}")
        if body["state"] in ("done", "failed", "cancelled", "dead_letter"):
            assert body["state"] == expect, f"{job_id}: {body}"
            return body
        remaining()
        time.sleep(0.1)


def pool_pids(base):
    _, snapshot = request("GET", f"{base}/snapshot")
    return snapshot["pool"]["pids"]


def launch(extra_args=()):
    """Start ``python -m repro serve`` and parse the banner for the base
    URL (skipping any recovery summary a durable restart prints first)."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--workers", "2", "--slots", "2", "--drain-timeout", "30",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    while True:
        remaining()
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before its banner (rc={proc.poll()})"
            )
        match = re.search(r"serving on (http://[\d.]+:\d+)", line)
        if match:
            return proc, match.group(1)
        print(f"  server: {line.strip()}")


def kill_and_recover(artifact_dir: str) -> None:
    """Phase 7: SIGKILL a durable server mid-job, restart, lose nothing."""
    from repro.exec.engine import run_sequential
    from repro.resilience import server_kill_plan
    from repro.service.jobs import build_spec

    seed = int(os.environ.get("SMOKE_KILL_SEED", "0")) or int.from_bytes(
        os.urandom(4), "big"
    )
    plan = server_kill_plan(seed)
    print(f"{plan.format_summary()}  (replay with SMOKE_KILL_SEED={seed})")

    params = {"iterations": 400, "spin": 30000}
    expected, _seconds = run_sequential(build_spec("synthetic", params))
    state_dir = os.path.join(artifact_dir, "state")
    # A stale journal from a previous smoke run would replay its jobs (and
    # claim this phase's idempotency key) — this phase assumes fresh state.
    shutil.rmtree(state_dir, ignore_errors=True)
    serve_args = ("--state-dir", state_dir, "--checkpoint-interval", "4",
                  "--retry-max", "1")

    # -- incarnation 1: submit, wait for a durable checkpoint, SIGKILL ---
    proc, base = launch(serve_args)
    try:
        status, body = request(
            "POST", f"{base}/jobs",
            {"tenant": "acme", "workload": "synthetic", "params": params,
             "idempotency_key": "smoke-kill-1"},
        )
        assert status == 202, (status, body)
        job_id = body["id"]
        checkpoint = os.path.join(
            state_dir, "artifacts", job_id, "checkpoint.pkl"
        )
        while not os.path.exists(checkpoint):
            assert proc.poll() is None, "server died before the kill"
            remaining()
            time.sleep(0.02)
        time.sleep(min(plan.delays[0], 0.5))
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=remaining())
        print(f"SIGKILLed server mid-job ({job_id} had a checkpoint)")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)

    # -- incarnation 2: recover, resume, finish bit-identical ------------
    proc, base = launch(serve_args)
    try:
        # the client's crash-retry resubmit hits the idempotency key
        status, body = request(
            "POST", f"{base}/jobs",
            {"tenant": "acme", "workload": "synthetic", "params": params,
             "idempotency_key": "smoke-kill-1"},
        )
        assert status == 200 and body["id"] == job_id, (status, body)
        assert body.get("deduplicated") is True, body

        # a poison job rides along: bounded retries, then dead-letter,
        # while the recovered job keeps making progress
        status, body = request(
            "POST", f"{base}/jobs",
            {"tenant": "evil", "workload": "synthetic",
             "params": {"iterations": 48, "fail_at": 5,
                        "retry": {"max_attempts": 2,
                                  "backoff_base": 0.05}}},
        )
        assert status == 202, (status, body)
        poison_id = body["id"]

        final = wait_done(base, job_id)
        assert final.get("recovered") is True, final
        assert final.get("resumed_from", 0) > 0, final
        _, result = request("GET", f"{base}/jobs/{job_id}/result")
        assert result["output"] == expected, "recovered output diverged"
        poison = wait_done(base, poison_id, expect="dead_letter")
        assert poison["attempts"] == 2, poison

        with urllib.request.urlopen(f"{base}/metrics", timeout=15) as resp:
            metrics = resp.read().decode()
        for needle in (
            "repro_service_durable 1",
            'repro_service_recovery_total{outcome="resumed"} 1',
            'repro_service_jobs_total{tenant="evil",event="dead_letter"} 1',
        ):
            assert needle in metrics, f"missing from /metrics: {needle}"

        # the CI artifacts: recovery metrics snapshot + the journal itself
        with open(os.path.join(artifact_dir, "recovery-metrics.prom"),
                  "w") as handle:
            handle.write(metrics)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=remaining())
        assert proc.returncode == 0, f"exit {proc.returncode}:\n{out}"
        shutil.copy(
            os.path.join(state_dir, "journal.jsonl"),
            os.path.join(artifact_dir, "journal.jsonl"),
        )
        print("kill-and-recover ok: checkpoint resume, bit-identical "
              "output, idempotent resubmit, poison dead-lettered")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


def main() -> int:
    # the solo-run reference the quiet tenant is compared against
    from repro.exec.engine import run_sequential
    from repro.service.jobs import build_spec

    expected_quiet, _seconds = run_sequential(
        build_spec("synthetic", QUIET_PARAMS)
    )

    artifact_dir = sys.argv[1] if len(sys.argv) > 1 else "/tmp/service-smoke"
    os.makedirs(artifact_dir, exist_ok=True)

    proc, base = launch()
    try:
        print(f"server up at {base}")

        # -- shared-pool reuse: 3 consecutive jobs, PIDs frozen ----------
        pids = pool_pids(base)
        assert len(pids) == 2, pids
        for round_number in range(3):
            job_id = submit(base, "reuse", QUIET_PARAMS)
            wait_done(base, job_id)
            now = pool_pids(base)
            assert now == pids, f"round {round_number}: {now} != {pids}"
        print(f"pool PIDs stable across 3 jobs: {pids}")

        # -- two tenants, one storming; quiet stays bit-identical --------
        storm_ids = [submit(base, "storm", STORM_PARAMS) for _ in range(2)]
        quiet_ids = [submit(base, "quiet", QUIET_PARAMS) for _ in range(2)]
        for job_id in quiet_ids:
            wait_done(base, job_id)
            _, result = request("GET", f"{base}/jobs/{job_id}/result")
            assert result["output"] == expected_quiet, result
            assert result["metrics"]["serial_reexecutions"] == 0
        for job_id in storm_ids:
            final = wait_done(base, job_id)
            _, result = request("GET", f"{base}/jobs/{job_id}/result")
            assert result["metrics"]["serial_reexecutions"] >= 32, result
        status, health = request("GET", f"{base}/health")
        assert status == 200 and health["status"] == "ok", health
        assert health["tenants"]["storm"]["status"] == "degraded", health
        assert health["tenants"]["quiet"]["status"] == "ok", health
        print("storm isolated: quiet bit-identical, only storm degraded")

        # -- cancel one mid-flight ---------------------------------------
        job_id = submit(
            base, "cancels", {"iterations": 100_000, "spin": 3000}
        )
        while True:
            _, body = request("GET", f"{base}/jobs/{job_id}")
            if body["state"] != "queued":
                break
            time.sleep(0.05)
        status, body = request("POST", f"{base}/jobs/{job_id}/cancel")
        assert status == 202, (status, body)
        wait_done(base, job_id, expect="cancelled")
        print("mid-flight cancel ok")

        # -- per-tenant counters on /metrics -----------------------------
        with urllib.request.urlopen(f"{base}/metrics", timeout=15) as resp:
            text = resp.read().decode()
        for needle in (
            'repro_service_jobs_total{tenant="quiet",event="completed"} 2',
            'repro_service_jobs_total{tenant="storm",event="completed"} 2',
            'repro_service_jobs_total{tenant="cancels",event="cancelled"} 1',
            'repro_service_tenant_degraded{tenant="storm"} 1',
            'repro_service_tenant_degraded{tenant="quiet"} 0',
            "repro_service_pool_spawned_total 2",
        ):
            assert needle in text, f"missing from /metrics: {needle}"
        print("per-tenant /metrics counters ok")

        # -- traced job: fetch + validate the merged Chrome trace --------
        from repro.obs.export import validate_chrome_trace

        traced_params = dict(STORM_PARAMS, trace=True)
        traced_id = submit(base, "traced", traced_params)
        wait_done(base, traced_id)
        # The merge runs just after the terminal transition; a 409 here
        # means "merge in flight — retry", so poll briefly.
        deadline = time.monotonic() + 15.0
        while True:
            status, trace = request("GET", f"{base}/jobs/{traced_id}/trace")
            if status != 409 or time.monotonic() >= deadline:
                break
            time.sleep(0.1)
        assert status == 200, (status, trace)
        problems = validate_chrome_trace(trace)
        assert problems == [], problems
        span_names = {
            event["name"] for event in trace["traceEvents"]
            if event.get("ph") == "X"
        }
        for needle in ("admit", "queue_wait", "sched_pick",
                       "lease_dispatch", "A", "B", "C"):
            assert needle in span_names, f"missing span {needle}"
        status, timeline = request(
            "GET", f"{base}/jobs/{traced_id}/timeline"
        )
        assert status == 200 and timeline["job"] == traced_id, timeline
        stages = [phase["stage"] for phase in timeline["phases"]]
        assert stages[0] == "admit", stages
        with urllib.request.urlopen(f"{base}/metrics", timeout=15) as resp:
            text = resp.read().decode()
        needle = 'repro_service_queue_wait_seconds_bucket{tenant="traced"'
        assert needle in text, "queue-wait histogram missing from /metrics"
        with open(os.path.join(artifact_dir, "traced-job.trace.json"),
                  "w") as handle:
            json.dump(trace, handle)
        print(f"traced job ok: {len(trace['traceEvents'])} events, "
              f"stages {stages}")

        # -- SIGTERM => clean drain --------------------------------------
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=remaining())
        assert proc.returncode == 0, f"exit {proc.returncode}:\n{out}"
        assert "drained cleanly" in out, out
        print("SIGTERM drained cleanly")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)

    # -- durable server: SIGKILL mid-job, restart, lose nothing ----------
    kill_and_recover(artifact_dir)
    print("SERVICE SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
