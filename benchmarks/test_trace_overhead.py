"""What observability costs: engine throughput with tracing on vs off.

The tracing layer's hot path is deliberately cheap — a ``struct.pack``
and a ``bytearray`` append into a per-process ring spool, no pipe traffic,
no cross-process locks — and this benchmark holds it to that claim on the
least favourable workload: trivial per-item work, where every traced span
is a visible fraction of the iteration.  Items/sec is measured with
tracing off and on (best of ``ROUNDS`` runs each, interleaved so drift
hits both alike); the overhead lands in ``benchmarks/results.json`` and
the CI perf job (``PERF_GATE=1``) fails the build when tracing costs more
than ``MAX_OVERHEAD`` of throughput.
"""

import gc
import os
import tempfile
import time

import pytest

from repro.exec import ExecutionEngine, PipelineSpec, run_sequential
from repro.obs import LiveConfig, TraceConfig, merge_spool_dir

TRACE_ITERATIONS = 6000
#: The acceptance bound: tracing may cost at most this fraction of
#: items/sec on a communication-bound pipeline.
MAX_OVERHEAD = 0.10
#: The live plane is cheaper by construction — in-band writers pay one
#: shared-memory store per update (batch-amortized), and the sampler runs
#: in the parent — so it is held to a tighter bound than tracing.
MAX_LIVE_OVERHEAD = 0.05
#: Interleaved measurement rounds per mode.  Single-round overhead on a
#: loaded 1-CPU box swings by more than the gate itself, so the estimate
#: is best-of-N for *both* modes — each mode's least-interfered run.
ROUNDS = 5
#: Hard assertions only under the CI perf gate; local runs record numbers.
PERF_GATE = os.environ.get("PERF_GATE") == "1"


def trace_produce(i):
    return (i, i & 15)


def trace_work(i, value):
    return value[1] ^ (i & 7)


def trace_commit(i, result, acc):
    acc["sum"] = acc.get("sum", 0) + result


def trace_finalize(acc):
    return acc.get("sum", 0)


def trace_spec():
    return PipelineSpec(
        iterations=TRACE_ITERATIONS,
        produce=trace_produce,
        work=trace_work,
        commit=trace_commit,
        finalize=trace_finalize,
    )


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_once(trace: "TraceConfig | None", expected) -> float:
    engine = ExecutionEngine(
        workers=2, capacity=64, batch_size=8, trace=trace
    )
    result = engine.run(trace_spec())
    assert result.output == expected
    return TRACE_ITERATIONS / result.metrics.wall_seconds


def _measure_rounds(rates, spool_dirs, expected, rounds) -> None:
    gc.disable()
    try:
        for _ in range(rounds):
            rates["off"].append(_run_once(None, expected))
            spool_dir = tempfile.mkdtemp(prefix="trace-overhead-")
            spool_dirs.append(spool_dir)
            rates["on"].append(
                _run_once(TraceConfig(spool_dir=spool_dir), expected)
            )
    finally:
        gc.enable()


def _estimate(rates):
    """Two estimators for two noise modes on a shared box.  Best-of-N
    cancels one-sided interference (a background task landing on some
    rounds); the median of per-round paired ratios cancels box-wide slow
    phases (which depress an adjacent off/on pair together).  A genuine
    hot-path regression inflates every traced round and therefore *both*
    estimators, so the gate takes their minimum."""
    best_of = 1.0 - max(rates["on"]) / max(rates["off"])
    paired = sorted(
        1.0 - on / off for off, on in zip(rates["off"], rates["on"])
    )
    paired_median = paired[len(paired) // 2]
    return best_of, paired_median, min(best_of, paired_median)


def test_trace_overhead(benchmark, results_sink):
    expected, _ = run_sequential(trace_spec())
    rates = {"off": [], "on": []}
    spool_dirs = []

    def sweep():
        # Warmup pair: pay the fork/import/page-cache cold start outside
        # the measurement.
        _run_once(None, expected)
        _run_once(
            TraceConfig(spool_dir=tempfile.mkdtemp(prefix="trace-warm-")),
            expected,
        )
        _measure_rounds(rates, spool_dirs, expected, ROUNDS)
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    best_of, paired_median, overhead = _estimate(rates)

    # Escalate on suspicion: an over-gate first batch is far more often a
    # noisy box than a regression, so buy statistical power only when it
    # is needed.  A real hot-path regression holds across every extra
    # batch; transient interference does not survive 15 paired rounds.
    batches = 1
    while overhead > MAX_OVERHEAD and batches < 3:
        batches += 1
        _measure_rounds(rates, spool_dirs, expected, ROUNDS)
        best_of, paired_median, overhead = _estimate(rates)

    best_off = max(rates["off"])
    best_on = max(rates["on"])

    # The traced runs must have actually traced: every commit shows up.
    merged = merge_spool_dir(spool_dirs[-1])
    commits = len(
        [i for i in merged.instants if int(i.kind) == 21]  # COMMIT
    )
    assert commits == TRACE_ITERATIONS
    print(
        f"\ntrace-overhead  off:{best_off:,.0f}/s  on:{best_on:,.0f}/s  "
        f"overhead {overhead:+.1%} "
        f"(best-of {best_of:+.1%}, paired median {paired_median:+.1%}, "
        f"{merged.span_count} spans) on {_cpu_count()} CPU(s)"
    )

    results_sink["trace_overhead"] = {
        "iterations": TRACE_ITERATIONS,
        "workers": 2,
        "capacity": 64,
        "batch_size": 8,
        "cpus": _cpu_count(),
        "rounds": len(rates["off"]),
        "items_per_sec_no_trace": round(best_off, 1),
        "items_per_sec_traced": round(best_on, 1),
        "overhead_fraction": round(overhead, 4),
        "overhead_best_of": round(best_of, 4),
        "overhead_paired_median": round(paired_median, 4),
        "max_overhead_gate": MAX_OVERHEAD,
        "spans_merged": merged.span_count,
    }

    if PERF_GATE:
        assert overhead <= MAX_OVERHEAD, (
            f"tracing costs {overhead:.1%} of items/sec, "
            f"gate is {MAX_OVERHEAD:.0%}"
        )
    else:
        # Sanity bound for untuned local machines: tracing must never
        # halve throughput.
        assert overhead <= 0.5, (
            f"tracing costs {overhead:.1%} of items/sec"
        )


# -- live telemetry plane (registry writes + sampling thread) -----------------------


def _run_once_live(live: "LiveConfig | None", expected) -> float:
    engine = ExecutionEngine(
        workers=2, capacity=64, batch_size=8, live=live
    )
    result = engine.run(trace_spec())
    assert result.output == expected
    if live is not None:
        # The observed runs must have actually been observed: the monitor
        # sampled (stop() always takes a final sample) and the registry's
        # in-band counters agree with the authoritative metrics.
        monitor = engine.live_monitor
        assert monitor is not None and monitor.samples >= 1
        final = monitor.last_snapshot
        assert final.counters["committed"] == TRACE_ITERATIONS
        assert final.counters["produced"] == TRACE_ITERATIONS
    return TRACE_ITERATIONS / result.metrics.wall_seconds


def _measure_live_rounds(rates, expected, rounds) -> None:
    gc.disable()
    try:
        for _ in range(rounds):
            rates["off"].append(_run_once_live(None, expected))
            rates["on"].append(
                _run_once_live(LiveConfig(interval=0.05), expected)
            )
    finally:
        gc.enable()


def test_live_overhead(benchmark, results_sink):
    """Engine throughput with the live telemetry plane on vs off, same
    estimator discipline as the tracing gate above."""
    expected, _ = run_sequential(trace_spec())
    rates = {"off": [], "on": []}

    def sweep():
        _run_once_live(None, expected)
        _run_once_live(LiveConfig(interval=0.05), expected)
        _measure_live_rounds(rates, expected, ROUNDS)
        return rates

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    best_of, paired_median, overhead = _estimate(rates)

    batches = 1
    while overhead > MAX_LIVE_OVERHEAD and batches < 3:
        batches += 1
        _measure_live_rounds(rates, expected, ROUNDS)
        best_of, paired_median, overhead = _estimate(rates)

    best_off = max(rates["off"])
    best_on = max(rates["on"])
    print(
        f"\nlive-overhead  off:{best_off:,.0f}/s  on:{best_on:,.0f}/s  "
        f"overhead {overhead:+.1%} "
        f"(best-of {best_of:+.1%}, paired median {paired_median:+.1%}) "
        f"on {_cpu_count()} CPU(s)"
    )

    results_sink["live_overhead"] = {
        "iterations": TRACE_ITERATIONS,
        "workers": 2,
        "capacity": 64,
        "batch_size": 8,
        "cpus": _cpu_count(),
        "rounds": len(rates["off"]),
        "items_per_sec_no_live": round(best_off, 1),
        "items_per_sec_live": round(best_on, 1),
        "overhead_fraction": round(overhead, 4),
        "overhead_best_of": round(best_of, 4),
        "overhead_paired_median": round(paired_median, 4),
        "max_overhead_gate": MAX_LIVE_OVERHEAD,
    }

    if PERF_GATE:
        assert overhead <= MAX_LIVE_OVERHEAD, (
            f"live telemetry costs {overhead:.1%} of items/sec, "
            f"gate is {MAX_LIVE_OVERHEAD:.0%}"
        )
    else:
        assert overhead <= 0.5, (
            f"live telemetry costs {overhead:.1%} of items/sec"
        )


# -- job-plane causal tracing (service path, ``--trace-jobs``) ----------------------


#: Jobs submitted per measured round; batched so the scheduler/dispatch
#: path — the part job tracing instruments — is actually contended.
SERVICE_BATCH = 3
SERVICE_ITERATIONS = 48
#: Job tracing rides the same bound as engine tracing: the extra work per
#: job is a handful of service spans, one spool merge, and one Chrome
#: export, amortized over a full pipeline run.
MAX_SERVICE_OVERHEAD = 0.10
#: Fewer rounds than the engine gates: each round runs two 3-job batches
#: through a live worker pool, so a round is seconds, not milliseconds.
SERVICE_ROUNDS = 3


def _service_batch_rate(svc, wait_terminal, traced: bool) -> float:
    """Submit one batch and return jobs/sec from first submit to the last
    job's terminal state — trace merge + artifact export included, since
    that is exactly what ``--trace-jobs`` adds to the service path."""
    params = {"iterations": SERVICE_ITERATIONS, "spin": 200}
    if traced:
        params["trace"] = True
    t0 = time.perf_counter()
    jobs = []
    for _ in range(SERVICE_BATCH):
        job, decision = svc.submit("perf", "synthetic", dict(params))
        assert job is not None, decision
        jobs.append(job)
    wait_terminal(jobs)
    elapsed = time.perf_counter() - t0
    for job in jobs:
        assert job.state.value == "done", (job.id, job.state, job.error)
        if traced:
            # The runner finalizes the trace just after the terminal
            # transition (outside the service lock) — allow it to land.
            deadline = time.monotonic() + 5.0
            trace = svc.job_trace_json(job)
            while trace is None and time.monotonic() < deadline:
                time.sleep(0.01)
                trace = svc.job_trace_json(job)
            assert trace is not None and trace["traceEvents"]
    return SERVICE_BATCH / elapsed


def _measure_service_rounds(rates, svc, wait_terminal, rounds) -> None:
    gc.disable()
    try:
        for _ in range(rounds):
            rates["off"].append(
                _service_batch_rate(svc, wait_terminal, traced=False)
            )
            rates["on"].append(
                _service_batch_rate(svc, wait_terminal, traced=True)
            )
    finally:
        gc.enable()


def test_service_trace_overhead(benchmark, results_sink):
    """Job throughput through the full service path (admission →
    scheduler → lease → engine → terminal) with per-job tracing on vs
    off, same estimator discipline as the engine gates above.  One
    service instance serves every round so the worker pool stays warm and
    only the per-job trace work differs between modes."""
    from repro.exec import RobustnessPolicy
    from repro.service import PipelineService, ServiceConfig
    from repro.service.jobs import TERMINAL_STATES

    def wait_terminal(jobs, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(j.state in TERMINAL_STATES for j in jobs):
                return
            time.sleep(0.01)
        raise AssertionError(
            f"jobs never finished: {[(j.id, j.state.value) for j in jobs]}"
        )

    policy = RobustnessPolicy(
        task_timeout=10.0, stall_timeout=20.0, poll_interval=0.01
    )
    svc = PipelineService(ServiceConfig(
        pool_workers=2, slots=2, capacity=16, batch_size=8, policy=policy,
    )).start(serve_http=False)
    rates = {"off": [], "on": []}
    try:

        def sweep():
            # Warmup pair: first jobs pay pool spawn + import cold start.
            _service_batch_rate(svc, wait_terminal, traced=False)
            _service_batch_rate(svc, wait_terminal, traced=True)
            _measure_service_rounds(rates, svc, wait_terminal, SERVICE_ROUNDS)
            return rates

        benchmark.pedantic(sweep, rounds=1, iterations=1)
        best_of, paired_median, overhead = _estimate(rates)

        batches = 1
        while overhead > MAX_SERVICE_OVERHEAD and batches < 3:
            batches += 1
            _measure_service_rounds(rates, svc, wait_terminal, SERVICE_ROUNDS)
            best_of, paired_median, overhead = _estimate(rates)
    finally:
        svc.drain_and_stop(10.0)

    best_off = max(rates["off"])
    best_on = max(rates["on"])
    print(
        f"\nservice-trace-overhead  off:{best_off:,.2f} jobs/s  "
        f"on:{best_on:,.2f} jobs/s  overhead {overhead:+.1%} "
        f"(best-of {best_of:+.1%}, paired median {paired_median:+.1%}) "
        f"on {_cpu_count()} CPU(s)"
    )

    results_sink["service_trace_overhead"] = {
        "batch_jobs": SERVICE_BATCH,
        "iterations_per_job": SERVICE_ITERATIONS,
        "pool_workers": 2,
        "cpus": _cpu_count(),
        "rounds": len(rates["off"]),
        "jobs_per_sec_untraced": round(best_off, 3),
        "jobs_per_sec_traced": round(best_on, 3),
        "overhead_fraction": round(overhead, 4),
        "overhead_best_of": round(best_of, 4),
        "overhead_paired_median": round(paired_median, 4),
        "max_overhead_gate": MAX_SERVICE_OVERHEAD,
    }

    if PERF_GATE:
        assert overhead <= MAX_SERVICE_OVERHEAD, (
            f"job tracing costs {overhead:.1%} of jobs/sec, "
            f"gate is {MAX_SERVICE_OVERHEAD:.0%}"
        )
    else:
        # Sanity bound for untuned local machines: job tracing must never
        # halve service throughput.
        assert overhead <= 0.5, (
            f"job tracing costs {overhead:.1%} of jobs/sec"
        )
