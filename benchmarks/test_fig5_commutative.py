"""Figure 5: speedup vs. threads for the Commutative-enabled benchmarks.

176.gcc and 254.gap are unparallelizable by the bare framework; the
*Commutative* annotation (symbol table + obstacks for gcc, the allocator for
gap) unlocks them (Section 4.2).  Each panel is regenerated, and a paired
ablation shows the annotation is load-bearing.
"""

import pytest

from repro.core.framework import FrameworkConfig
from repro.workloads.suite import FIGURE5, PAPER_TABLE2

from conftest import format_series


@pytest.mark.parametrize("name", FIGURE5)
def test_figure5_panel(benchmark, evaluations, results_sink, name):
    evaluation = benchmark.pedantic(
        lambda: evaluations.evaluate(name), rounds=1, iterations=1
    )
    curve = evaluation.report.curve
    results_sink[f"figure5/{name}"] = {
        "curve": {str(t): round(s, 3) for t, s in curve.items()},
        "best": round(evaluation.report.best_speedup, 3),
        "best_threads": evaluation.report.best_threads,
        "paper": PAPER_TABLE2[name],
    }
    print("\n" + format_series(name, curve))

    paper_threads, paper_speedup = PAPER_TABLE2[name]
    assert paper_speedup / 2 < evaluation.report.best_speedup < paper_speedup * 2


@pytest.mark.parametrize("name", FIGURE5)
def test_commutative_is_load_bearing(evaluations, results_sink, name):
    """Without the annotation, both benchmarks collapse toward 1x."""
    with_annotation = evaluations.evaluate(name)
    without = evaluations.evaluate(name, FrameworkConfig(enable_commutative=False))
    results_sink[f"figure5/{name}/ablation"] = {
        "with": round(with_annotation.report.best_speedup, 3),
        "without": round(without.report.best_speedup, 3),
    }
    assert without.report.best_speedup < with_annotation.report.best_speedup


def test_gcc_beats_gap(evaluations):
    """Figure 5's ordering: gcc (~5x) above gap (~2x)."""
    gcc = evaluations.evaluate("176.gcc").report.best_speedup
    gap = evaluations.evaluate("254.gap").report.best_speedup
    assert gcc > gap


def test_gap_gc_causes_misspeculation(evaluations):
    evaluation = evaluations.evaluate("254.gap")
    heap_conflicts = [
        location for location, _ in evaluation.misspeculation.worst_locations(5)
        if location[0] == "gap.heap"
    ]
    assert heap_conflicts, "copying GC should dominate the misspeculation"
