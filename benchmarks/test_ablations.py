"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not in the paper as figures, but each isolates one mechanism the paper
argues for:

- speculation on/off — Section 2.1's "judicious use of speculation";
- Commutative on/off — Section 2.3.2 (also paired into Figures 5/6);
- Y-branch on/off — Section 2.3.1 (also paired into Figure 7);
- queue capacity — Section 3.1's "full and empty conditions on 256
  32-entry queues";
- communication latency — the microarchitectural effect the paper's
  simulator deliberately omits;
- DSWP pipeline vs. TLS execution plan — Section 3.2's claim that "similar
  parallelizations and results could be obtained with execution plans that
  more closely resemble TLS".
"""

import pytest

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.core.simulator import PipelineSimulator
from repro.core.tasks import TaskGraph
from repro.hw.machine import MachineConfig
from repro.tls.scheduler import simulate_tls
from repro.workloads.suite import make_workload


def test_ablation_speculation(benchmark, evaluations, results_sink):
    """vortex with no speculation: every conflicting location synchronizes."""

    def run():
        return (
            evaluations.evaluate("255.vortex"),
            evaluations.evaluate(
                "255.vortex", FrameworkConfig(enable_speculation=False)
            ),
        )

    with_speculation, without = benchmark.pedantic(run, rounds=1, iterations=1)
    results_sink["ablation/speculation"] = {
        "with": round(with_speculation.report.best_speedup, 3),
        "without": round(without.report.best_speedup, 3),
    }
    assert without.report.best_speedup <= with_speculation.report.best_speedup


def test_ablation_queue_capacity(benchmark, results_sink):
    """Shrinking the 32-entry queues throttles pipeline run-ahead.

    Uses a bursty pipeline (task costs alternate heavy/light) where run-ahead
    matters: with deep queues the fast stages smooth the bursts; with
    single-entry queues every burst stalls its producer.
    """
    from repro.core.tasks import Phase, Task

    tasks = []
    index = 0
    for i in range(200):
        b_cost = 100 if i % 8 == 0 else 10
        for phase, cost in (("A", 6), ("B", b_cost), ("C", 6)):
            tasks.append(Task(index, Phase(phase), i, cost))
            index += 1
    graph = TaskGraph(tasks)
    sequential = graph.total_cost()

    def sweep():
        speedups = {}
        for capacity in (1, 2, 8, 32, 128):
            machine = MachineConfig(cores=4, queue_capacity=capacity)
            result = PipelineSimulator(machine).simulate(graph)
            speedups[capacity] = sequential / result.makespan
        return speedups

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    results_sink["ablation/queue_capacity"] = {
        str(c): round(s, 3) for c, s in speedups.items()
    }
    print("\nqueue capacity sweep:", {c: round(s, 2) for c, s in speedups.items()})
    assert speedups[32] > speedups[1]
    assert speedups[128] == pytest.approx(speedups[32], rel=0.10)


def test_ablation_communication_latency(benchmark, evaluations, results_sink):
    """Nonzero queue latency: what the paper's zero-latency model hides."""
    evaluation = evaluations.evaluate("197.parser")
    graph = evaluation.graph

    def sweep():
        speedups = {}
        for latency in (0, 10, 100, 1000):
            machine = MachineConfig(cores=32, communication_latency=latency)
            result = PipelineSimulator(machine).simulate(graph)
            speedups[latency] = evaluation.sequential_cost / result.makespan
        return speedups

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    results_sink["ablation/communication_latency"] = {
        str(l): round(s, 3) for l, s in speedups.items()
    }
    print("\nlatency sweep:", {l: round(s, 2) for l, s in speedups.items()})
    assert speedups[0] >= speedups[100] >= speedups[1000]


def test_ablation_dswp_vs_tls(benchmark, evaluations, results_sink):
    """Section 3.2: TLS-style plans give similar results on these traces."""

    def compare():
        rows = {}
        for name in ("256.bzip2", "197.parser", "300.twolf"):
            evaluation = evaluations.evaluate(name)
            machine = MachineConfig(cores=16)
            dswp = PipelineSimulator(machine).simulate(evaluation.graph)
            tls = simulate_tls(evaluation.graph, machine)
            rows[name] = (
                evaluation.sequential_cost / dswp.makespan,
                evaluation.sequential_cost / tls.makespan,
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    results_sink["ablation/dswp_vs_tls"] = {
        name: {"dswp": round(d, 3), "tls": round(t, 3)}
        for name, (d, t) in rows.items()
    }
    print("\nDSWP vs TLS @16:", {n: (round(d, 2), round(t, 2)) for n, (d, t) in rows.items()})
    for name, (dswp_speedup, tls_speedup) in rows.items():
        assert 0.3 < dswp_speedup / tls_speedup < 3.0, name


def test_ablation_multistage(benchmark, results_sink):
    """Beyond the paper: multi-stage PS-DSWP vs. the 3-phase plan on a loop
    with two DOALL regions split by a sequential recurrence."""
    from repro.dswp.multistage import MultiStageSimulator, partition_loop_multistage
    from repro.dswp.partition import partition_loop
    from repro.testing import build_two_hump_loop

    def compare():
        program, loop = build_two_hump_loop()
        iterations = 256
        classic = partition_loop(program, loop)
        classic_speedup = PipelineSimulator(MachineConfig(cores=32)).simulate(
            classic.task_graph(iterations)
        ).speedup
        program2, loop2 = build_two_hump_loop()
        multi = partition_loop_multistage(program2, loop2)
        multi_speedup = MultiStageSimulator(MachineConfig(cores=32)).simulate(
            multi, iterations
        ).speedup
        return classic_speedup, multi_speedup

    classic_speedup, multi_speedup = benchmark.pedantic(compare, rounds=1, iterations=1)
    results_sink["ablation/multistage"] = {
        "three_phase": round(classic_speedup, 3),
        "multi_stage": round(multi_speedup, 3),
    }
    print(f"\n3-phase: {classic_speedup:.2f}x   multi-stage: {multi_speedup:.2f}x")
    assert multi_speedup > classic_speedup * 1.3


def test_ablation_replication(benchmark, evaluations, results_sink):
    """PS-DSWP replication vs. classic 3-stage DSWP (one core per stage).

    Classic DSWP pins each stage to one core: with 3 cores total its best
    case is the bottleneck stage; replication is what buys scalability
    (Section 2.1).
    """
    evaluation = evaluations.evaluate("197.parser")
    graph = evaluation.graph

    def compare():
        replicated = PipelineSimulator(MachineConfig(cores=32)).simulate(graph)
        classic = PipelineSimulator(MachineConfig(cores=3)).simulate(graph)
        return (
            evaluation.sequential_cost / replicated.makespan,
            evaluation.sequential_cost / classic.makespan,
        )

    replicated, classic = benchmark.pedantic(compare, rounds=1, iterations=1)
    results_sink["ablation/replication"] = {
        "ps_dswp_32": round(replicated, 3),
        "classic_dswp_3": round(classic, 3),
    }
    print(f"\nreplicated @32: {replicated:.2f}  classic 3-stage: {classic:.2f}")
    assert replicated > 4 * classic
