"""Raw transport throughput: what batching buys on the wire.

Pushes a fixed item count through one :class:`ProcessChannel` at batch
sizes 1 / 8 / 64 — once with small work-item-shaped tuples (the pickle
fast path: one ``HIGHEST_PROTOCOL`` dump per frame) and once with
homogeneous ``bytes`` payloads (the raw mode: no per-item pickle at all).
Items/sec and per-item microseconds land in ``benchmarks/results.json``;
the CI perf job replays this file with ``PERF_GATE=1`` and fails on
regression against the recorded baseline.

The producer runs on the calling thread and a consumer thread drains
concurrently, so the measurement includes the real queue wakeups, feeder
handoffs, and shared-counter traffic the engine pays — per item at batch
size 1, per frame above it.
"""

import os
import threading
import time

from repro.exec.channels import ProcessChannel

ITEMS = 8000
BATCH_SIZES = [1, 8, 64]
#: Hard perf assertions run only in the CI perf job (and wherever a
#: developer exports PERF_GATE=1); plain test runs assert sanity only.
PERF_GATE = os.environ.get("PERF_GATE") == "1"


def _tuple_payload(i):
    return (i, i * 3, 0.000125)


def _bytes_payload(i):
    return (i % 251).to_bytes(1, "big") * 64


def _throughput(batch_size: int, payload) -> float:
    """Items/sec through one channel with a live consumer thread."""
    channel = ProcessChannel(
        capacity=256, batch_size=batch_size, flush_interval=0.05
    )
    received = 0
    failure = []

    def consume():
        nonlocal received
        try:
            while received < ITEMS:
                received += len(
                    channel.get_many(max(batch_size, 1), timeout=10.0)
                )
        except Exception as error:  # surfaces in the main thread's assert
            failure.append(error)

    consumer = threading.Thread(target=consume, daemon=True)
    started = time.perf_counter()
    consumer.start()
    for i in range(ITEMS):
        channel.put(payload(i), timeout=10.0)
    channel.flush(timeout=10.0)
    consumer.join(timeout=30.0)
    elapsed = time.perf_counter() - started
    channel.close()
    assert not failure, f"consumer died: {failure[0]!r}"
    assert received == ITEMS
    return ITEMS / elapsed


def test_channel_throughput(benchmark, results_sink):
    measured = {"tuples": {}, "raw_bytes": {}}

    def sweep():
        for batch_size in BATCH_SIZES:
            measured["tuples"][batch_size] = _throughput(
                batch_size, _tuple_payload
            )
            measured["raw_bytes"][batch_size] = _throughput(
                batch_size, _bytes_payload
            )
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for mode, curve in measured.items():
        series = "  ".join(
            f"b{batch}:{rate:,.0f}/s ({1e6 / rate:.1f}us)"
            for batch, rate in sorted(curve.items())
        )
        print(f"\nchannel/{mode:<9} {series}")

    results_sink["channel_throughput"] = {
        "items": ITEMS,
        "capacity": 256,
        "items_per_sec": {
            mode: {
                str(batch): round(rate, 1)
                for batch, rate in curve.items()
            }
            for mode, curve in measured.items()
        },
        "per_item_us": {
            mode: {
                str(batch): round(1e6 / rate, 2)
                for batch, rate in curve.items()
            }
            for mode, curve in measured.items()
        },
        "speedup_batch64_vs_1": {
            mode: round(curve[64] / curve[1], 3)
            for mode, curve in measured.items()
        },
    }

    for mode, curve in measured.items():
        if PERF_GATE:
            assert curve[64] >= 2.0 * curve[1], (
                f"{mode}: batch 64 must be >=2x batch 1, got "
                f"{curve[64] / curve[1]:.2f}x"
            )
        else:
            assert curve[64] >= 0.9 * curve[1], (
                f"{mode}: batching made the transport slower "
                f"({curve[64] / curve[1]:.2f}x)"
            )
