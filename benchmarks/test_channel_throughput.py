"""Raw transport throughput: what batching buys on the wire.

Pushes a fixed item count through one :class:`ProcessChannel` at batch
sizes 1 / 8 / 64 — once with small work-item-shaped tuples (the pickle
fast path: one ``HIGHEST_PROTOCOL`` dump per frame) and once with
homogeneous ``bytes`` payloads (the raw mode: no per-item pickle at all).
Items/sec and per-item microseconds land in ``benchmarks/results.json``;
the CI perf job replays this file with ``PERF_GATE=1`` and fails on
regression against the recorded baseline.

The producer runs on the calling thread and a consumer thread drains
concurrently, so the measurement includes the real queue wakeups, feeder
handoffs, and shared-counter traffic the engine pays — per item at batch
size 1, per frame above it.
"""

import multiprocessing
import os
import threading
import time

from repro.exec.channels import ProcessChannel
from repro.exec.transport import TRANSPORT_KINDS, make_transport

ITEMS = 8000
BATCH_SIZES = [1, 8, 64]
#: Hard perf assertions run only in the CI perf job (and wherever a
#: developer exports PERF_GATE=1); plain test runs assert sanity only.
PERF_GATE = os.environ.get("PERF_GATE") == "1"


def _tuple_payload(i):
    return (i, i * 3, 0.000125)


def _bytes_payload(i):
    return (i % 251).to_bytes(1, "big") * 64


def _throughput(batch_size: int, payload) -> float:
    """Items/sec through one channel with a live consumer thread."""
    channel = ProcessChannel(
        capacity=256, batch_size=batch_size, flush_interval=0.05
    )
    received = 0
    failure = []

    def consume():
        nonlocal received
        try:
            while received < ITEMS:
                received += len(
                    channel.get_many(max(batch_size, 1), timeout=10.0)
                )
        except Exception as error:  # surfaces in the main thread's assert
            failure.append(error)

    consumer = threading.Thread(target=consume, daemon=True)
    started = time.perf_counter()
    consumer.start()
    for i in range(ITEMS):
        channel.put(payload(i), timeout=10.0)
    channel.flush(timeout=10.0)
    consumer.join(timeout=30.0)
    elapsed = time.perf_counter() - started
    channel.close()
    assert not failure, f"consumer died: {failure[0]!r}"
    assert received == ITEMS
    return ITEMS / elapsed


def test_channel_throughput(benchmark, results_sink):
    measured = {"tuples": {}, "raw_bytes": {}}

    def sweep():
        for batch_size in BATCH_SIZES:
            measured["tuples"][batch_size] = _throughput(
                batch_size, _tuple_payload
            )
            measured["raw_bytes"][batch_size] = _throughput(
                batch_size, _bytes_payload
            )
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for mode, curve in measured.items():
        series = "  ".join(
            f"b{batch}:{rate:,.0f}/s ({1e6 / rate:.1f}us)"
            for batch, rate in sorted(curve.items())
        )
        print(f"\nchannel/{mode:<9} {series}")

    results_sink["channel_throughput"] = {
        "items": ITEMS,
        "capacity": 256,
        "items_per_sec": {
            mode: {
                str(batch): round(rate, 1)
                for batch, rate in curve.items()
            }
            for mode, curve in measured.items()
        },
        "per_item_us": {
            mode: {
                str(batch): round(1e6 / rate, 2)
                for batch, rate in curve.items()
            }
            for mode, curve in measured.items()
        },
        "speedup_batch64_vs_1": {
            mode: round(curve[64] / curve[1], 3)
            for mode, curve in measured.items()
        },
    }

    for mode, curve in measured.items():
        if PERF_GATE:
            assert curve[64] >= 2.0 * curve[1], (
                f"{mode}: batch 64 must be >=2x batch 1, got "
                f"{curve[64] / curve[1]:.2f}x"
            )
        else:
            assert curve[64] >= 0.9 * curve[1], (
                f"{mode}: batching made the transport slower "
                f"({curve[64] / curve[1]:.2f}x)"
            )


# -- per-transport wire matrix (ISSUE 8) -------------------------------------------

#: Best recorded batched-pipe rates from the PR 3 baseline sweep (the
#: ``channel_throughput`` section above, batch 64).  The shm ring's
#: acceptance gate is >=5x these anchors — a fixed goalpost, so the gate
#: cannot drift as results.json is regenerated on faster machines.
PR3_BATCHED_PIPE_ANCHORS = {"tuples": 178_000.0, "raw_bytes": 163_000.0}

#: payload name -> (items per frame, total items, builder)
WIRE_PAYLOADS = {
    "tuples": (64, 32_768, lambda i: (i, i * 3, 0.000125)),
    "raw_bytes": (64, 32_768, lambda i: (i % 251).to_bytes(1, "big") * 64),
    "blocks_64k": (4, 2_048, lambda i: (i % 251).to_bytes(1, "big") * 65_536),
}


def _wire_rate(kind: str, payload_name: str) -> float:
    """Items/sec through one bare transport, send/recv ping-pong.

    This strips the channel layer (credit flow, buffering, consumer
    threads) to expose the wire cost alone: frame encode, the hop through
    the backend, frame decode.  Best of three rounds — the matrix gates
    hard ratios in CI, so each cell takes its least-noisy sample.
    """
    frame_items, total, build = WIRE_PAYLOADS[payload_name]
    ctx = multiprocessing.get_context()
    best = 0.0
    for _ in range(3):
        transport = make_transport(kind, ctx, capacity=256)
        try:
            frame = [build(i) for i in range(frame_items)]
            rounds = total // frame_items
            started = time.perf_counter()
            for _ in range(rounds):
                transport.send(frame, True, timeout=10.0)
                items, single, _ = transport.recv(timeout=10.0)
                assert single is None and len(items) == frame_items
            elapsed = time.perf_counter() - started
        finally:
            transport.close()
        best = max(best, (rounds * frame_items) / elapsed)
    return best


def test_transport_matrix(benchmark, results_sink):
    measured = {kind: {} for kind in TRANSPORT_KINDS}

    def sweep():
        for kind in TRANSPORT_KINDS:
            for payload_name in WIRE_PAYLOADS:
                measured[kind][payload_name] = _wire_rate(kind, payload_name)
        return measured

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for kind, row in measured.items():
        cells = "  ".join(
            f"{name}:{rate:,.0f}/s" for name, rate in row.items()
        )
        print(f"\nwire/{kind:<6} {cells}")

    shm_vs_pipe = {
        name: round(measured["shm"][name] / measured["pipe"][name], 3)
        for name in WIRE_PAYLOADS
    }
    shm_vs_anchor = {
        name: round(measured["shm"][name] / anchor, 3)
        for name, anchor in PR3_BATCHED_PIPE_ANCHORS.items()
    }
    results_sink["transport_matrix"] = {
        "payloads": {
            name: {"frame_items": spec[0], "total_items": spec[1]}
            for name, spec in WIRE_PAYLOADS.items()
        },
        # Informational, deliberately NOT named items_per_sec: absolute
        # wire rates swing hugely with core count and box load (the pipe's
        # feeder thread alone moves them 3x), so check_perf gates only the
        # shm ratios below.
        "wire_items_per_sec": {
            kind: {name: round(rate, 1) for name, rate in row.items()}
            for kind, row in measured.items()
        },
        "mb_per_sec_blocks_64k": {
            kind: round(row["blocks_64k"] * 65_536 / 1e6, 1)
            for kind, row in measured.items()
        },
        "shm_vs_pipe": shm_vs_pipe,
        "shm_vs_pr3_batched_pipe": shm_vs_anchor,
        "pr3_anchor_items_per_sec": PR3_BATCHED_PIPE_ANCHORS,
    }

    # Sanity even un-gated: every backend moved data, and shm beat the
    # pipe on large blocks (its whole reason to exist).
    for kind, row in measured.items():
        for name, rate in row.items():
            assert rate > 0, f"{kind}/{name} measured no throughput"
    assert shm_vs_pipe["blocks_64k"] >= 1.5, (
        f"shm ring slower than pipe on 64KiB blocks: "
        f"{shm_vs_pipe['blocks_64k']:.2f}x"
    )

    if PERF_GATE:
        # The ISSUE 8 acceptance gate: the zero-copy shm fast path is
        # >=5x the PR 3 batched-pipe baseline on the same payload shapes.
        for name, ratio in shm_vs_anchor.items():
            assert ratio >= 5.0, (
                f"shm/{name}: {measured['shm'][name]:,.0f}/s is only "
                f"{ratio:.1f}x the PR 3 batched-pipe anchor "
                f"({PR3_BATCHED_PIPE_ANCHORS[name]:,.0f}/s); gate is 5x"
            )
        # Same-run cross-check on big blocks.  The floor is 3x, not 5x:
        # the pipe side of this ratio swings ~3x between runs (feeder
        # thread scheduling), so a 5x same-run gate would flake on rates
        # the anchored gates above already prove.  Observed 5.6-10.3x.
        assert shm_vs_pipe["blocks_64k"] >= 3.0, (
            f"shm/blocks_64k: only {shm_vs_pipe['blocks_64k']:.1f}x the "
            f"same-run pipe rate; floor is 3x"
        )
