"""Figure 4: speedup vs. threads for the framework-only benchmarks.

The paper's Figure 4 plots MT-over-ST speedup for 181.mcf, 253.perlbmk,
255.vortex and 256.bzip2 — the four benchmarks parallelizable without any
sequential-model extension (Section 4.1).  Each benchmark here regenerates
one panel and asserts its paper-reported shape:

- mcf: a low plateau (paper best 2.84x);
- perlbmk: barely above 1 (paper 1.21x), saturating by ~5 threads;
- vortex: mid-single-digit, still climbing late (paper 4.92x @ 32);
- bzip2: capped by the block count (paper 6.72x @ 12, flat beyond).
"""

import pytest

from repro.workloads.suite import FIGURE4, PAPER_TABLE2

from conftest import format_series


@pytest.mark.parametrize("name", FIGURE4)
def test_figure4_panel(benchmark, evaluations, results_sink, name):
    evaluation = benchmark.pedantic(
        lambda: evaluations.evaluate(name), rounds=1, iterations=1
    )
    curve = evaluation.report.curve
    results_sink[f"figure4/{name}"] = {
        "curve": {str(t): round(s, 3) for t, s in curve.items()},
        "best": round(evaluation.report.best_speedup, 3),
        "best_threads": evaluation.report.best_threads,
        "paper": PAPER_TABLE2[name],
    }
    print("\n" + format_series(name, curve))

    paper_threads, paper_speedup = PAPER_TABLE2[name]
    best = evaluation.report.best_speedup
    # Shape check: within a factor of two of the paper's best speedup, and
    # the 1-thread point is exactly 1.0.
    assert curve[1] == pytest.approx(1.0)
    assert paper_speedup / 2 < best < paper_speedup * 2


def test_figure4_ordering(evaluations):
    """Who wins in Figure 4: bzip2 > vortex > mcf > perlbmk."""
    bests = {
        name: evaluations.evaluate(name).report.best_speedup for name in FIGURE4
    }
    assert bests["256.bzip2"] > bests["255.vortex"] > bests["181.mcf"] > bests["253.perlbmk"]


def test_bzip2_saturates_at_block_count(evaluations):
    evaluation = evaluations.evaluate("256.bzip2")
    curve = evaluation.report.curve
    # Flat tail: 32 threads buy nothing over 16 (7 blocks cap it first).
    assert curve[32] == pytest.approx(curve[16], rel=0.05)


def test_perlbmk_saturates_early(evaluations):
    evaluation = evaluations.evaluate("253.perlbmk")
    curve = evaluation.report.curve
    assert curve[32] < 1.6
    assert curve[5] > curve[32] * 0.8  # most of the benefit by 5 threads
