"""Meta-tests on code quality: every public module documents itself, and
the package's export surface stays importable and coherent."""

import importlib
import pkgutil

import pytest

import repro


def iter_modules():
    package = importlib.import_module("repro")
    for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(iter_modules())


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{module_name} docstring is trivial"


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports_cleanly(module_name):
    importlib.import_module(module_name)


def test_package_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_expected_module_count():
    # A coarse inventory guard: new subsystems should register here.
    packages = {name.split(".")[1] for name in ALL_MODULES if name.count(".") >= 1}
    assert {
        "ir", "analysis", "profiling", "pdg", "speculation",
        "annotations", "dswp", "tls", "hw", "core", "workloads",
    } <= packages


def test_public_classes_documented():
    import inspect

    undocumented = []
    for module_name in ALL_MODULES:
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != module_name:
                continue  # re-export
            if not (obj.__doc__ or "").strip():
                undocumented.append(f"{module_name}.{name}")
    assert not undocumented, f"undocumented public classes: {undocumented}"
