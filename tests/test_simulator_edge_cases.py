"""Edge-case tests for the simulator, plans, and task graphs."""

import pytest

from repro.core.plan import ExecutionPlan
from repro.core.simulator import PipelineSimulator
from repro.core.tasks import Phase, SerializationEdge, Task, TaskGraph
from repro.hw.machine import MachineConfig


class TestEmptyAndDegenerate:
    def test_empty_graph(self):
        graph = TaskGraph([])
        result = PipelineSimulator(MachineConfig(cores=8)).simulate(graph)
        assert result.makespan == 0
        assert result.speedup == 1.0

    def test_single_task(self):
        graph = TaskGraph([Task(0, Phase.B, 0, 42)])
        result = PipelineSimulator(MachineConfig(cores=8)).simulate(graph)
        assert result.makespan == 42

    def test_b_only_workload(self):
        tasks = [Task(i, Phase.B, i, 10) for i in range(32)]
        graph = TaskGraph(tasks)
        result = PipelineSimulator(MachineConfig(cores=8)).simulate(graph)
        # No A/C phases: all 8 cores go to B.
        assert result.plan.replication_width == 8
        assert result.speedup > 7.5

    def test_a_and_b_without_c(self):
        tasks = []
        index = 0
        for i in range(20):
            tasks.append(Task(index, Phase.A, i, 1)); index += 1
            tasks.append(Task(index, Phase.B, i, 20)); index += 1
        graph = TaskGraph(tasks)
        result = PipelineSimulator(MachineConfig(cores=8)).simulate(graph)
        assert result.speedup > 4

    def test_missing_b_in_some_iterations(self):
        tasks = []
        index = 0
        for i in range(12):
            tasks.append(Task(index, Phase.A, i, 2)); index += 1
            if i % 3 != 0:
                tasks.append(Task(index, Phase.B, i, 20)); index += 1
            tasks.append(Task(index, Phase.C, i, 2)); index += 1
        graph = TaskGraph(tasks)
        result = PipelineSimulator(MachineConfig(cores=6)).simulate(graph)
        assert result.makespan > 0
        assert sum(result.core_busy_time.values()) == graph.total_cost()

    def test_zero_cost_tasks(self):
        tasks = []
        index = 0
        for i in range(5):
            for phase in ("A", "B", "C"):
                tasks.append(Task(index, Phase(phase), i, 0))
                index += 1
        graph = TaskGraph(tasks)
        result = PipelineSimulator(MachineConfig(cores=4)).simulate(graph)
        assert result.makespan == 0
        assert result.speedup == 1.0


class TestPlanDescriptions:
    def test_describe_mentions_all_phases(self):
        plan = ExecutionPlan.for_machine(MachineConfig(cores=8))
        description = plan.describe()
        assert "A->core0" in description
        assert "C->core7" in description
        assert "B->cores{1..6}" in description

    def test_describe_single_b_core(self):
        plan = ExecutionPlan.for_machine(MachineConfig(cores=3))
        assert "B->core1" in plan.describe()

    def test_core_of_phase(self):
        plan = ExecutionPlan.for_machine(MachineConfig(cores=8))
        assert plan.core_of_phase(Phase.A) == 0
        assert plan.core_of_phase(Phase.C) == 7
        assert plan.core_of_phase(Phase.B) is None  # dynamic

    def test_too_many_queues_rejected(self):
        machine = MachineConfig(cores=32, queue_count=4)
        tasks = []
        index = 0
        for i in range(4):
            for phase in ("A", "B", "C"):
                tasks.append(Task(index, Phase(phase), i, 1))
                index += 1
        with pytest.raises(ValueError, match="queues"):
            PipelineSimulator(machine).simulate(TaskGraph(tasks))


class TestSerializationEdgeSemantics:
    def test_edge_to_a_task_delays_a_chain(self):
        tasks = []
        index = 0
        for i in range(4):
            tasks.append(Task(index, Phase.A, i, 1)); index += 1
            tasks.append(Task(index, Phase.B, i, 30)); index += 1
            tasks.append(Task(index, Phase.C, i, 1)); index += 1
        graph = TaskGraph(tasks)
        # A of iteration 3 must wait for B of iteration 0 (a synchronized
        # command-flag pattern, like parser's echo mode).
        graph.add_edge(SerializationEdge(1, 9, "synchronization"))
        result = PipelineSimulator(MachineConfig(cores=4)).simulate(graph)
        b0_end = result.task_end_times[1]
        a3_end = result.task_end_times[9]
        assert a3_end >= b0_end + 1

    def test_edge_to_c_task(self):
        tasks = []
        index = 0
        for i in range(3):
            tasks.append(Task(index, Phase.A, i, 1)); index += 1
            tasks.append(Task(index, Phase.B, i, 5)); index += 1
            tasks.append(Task(index, Phase.C, i, 1)); index += 1
        graph = TaskGraph(tasks)
        graph.add_edge(SerializationEdge(1, 8, "misspeculation"))  # B0 -> C2
        result = PipelineSimulator(MachineConfig(cores=4)).simulate(graph)
        assert result.task_end_times[8] >= result.task_end_times[1] + 1

    def test_duplicate_edges_harmless(self):
        tasks = [
            Task(0, Phase.B, 0, 5),
            Task(1, Phase.B, 1, 5),
        ]
        graph = TaskGraph(tasks)
        graph.add_edge(SerializationEdge(0, 1, "misspeculation"))
        graph.add_edge(SerializationEdge(0, 1, "misspeculation"))
        result = PipelineSimulator(MachineConfig(cores=4)).simulate(graph)
        assert result.makespan == 10
