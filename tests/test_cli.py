"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "164.gzip" in output
    assert "300.twolf" in output


def test_bench_single(capsys):
    assert main(["bench", "256.bzip2", "--threads", "1", "8"]) == 0
    output = capsys.readouterr().out
    assert "256.bzip2" in output
    assert "paper reference" in output


def test_bench_unknown_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["bench", "999.unknown"])


def test_figure(capsys):
    assert main(["figure", "5", "--threads", "1", "8"]) == 0
    output = capsys.readouterr().out
    assert "176.gcc" in output
    assert "254.gap" in output


def test_ablation_flags(capsys):
    assert main(
        ["bench", "300.twolf", "--threads", "1", "8", "--no-commutative"]
    ) == 0
    output = capsys.readouterr().out
    assert "300.twolf" in output


def test_threads_deduplicated_and_sorted(capsys):
    assert main(["bench", "253.perlbmk", "--threads", "8", "1", "8"]) == 0
    output = capsys.readouterr().out
    lines = [l for l in output.splitlines() if "|" in l]
    assert len(lines) == 2  # 1 and 8 only
