"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "164.gzip" in output
    assert "300.twolf" in output


def test_bench_single(capsys):
    assert main(["bench", "256.bzip2", "--threads", "1", "8"]) == 0
    output = capsys.readouterr().out
    assert "256.bzip2" in output
    assert "paper reference" in output


def test_bench_unknown_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["bench", "999.unknown"])


def test_figure(capsys):
    assert main(["figure", "5", "--threads", "1", "8"]) == 0
    output = capsys.readouterr().out
    assert "176.gcc" in output
    assert "254.gap" in output


def test_ablation_flags(capsys):
    assert main(
        ["bench", "300.twolf", "--threads", "1", "8", "--no-commutative"]
    ) == 0
    output = capsys.readouterr().out
    assert "300.twolf" in output


def test_threads_deduplicated_and_sorted(capsys):
    assert main(["bench", "253.perlbmk", "--threads", "8", "1", "8"]) == 0
    output = capsys.readouterr().out
    lines = [l for l in output.splitlines() if "|" in l]
    assert len(lines) == 2  # 1 and 8 only


class TestExecCommand:
    """The ``exec`` subcommand: real multiprocess execution."""

    def test_exec_bzip2(self, capsys):
        assert main(["exec", "256.bzip2", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "bit-identical to sequential execution" in output
        assert "measured speedup" in output
        assert "commits" in output

    def test_exec_with_fault_injection(self, capsys):
        assert main(
            ["exec", "256.bzip2", "--workers", "2", "--inject-faults"]
        ) == 0
        output = capsys.readouterr().out
        assert "bit-identical to sequential execution" in output
        # The injected crash and soft fault were absorbed and retried.
        assert "1 crashes" in output
        assert "1 soft faults" in output

    def test_exec_json_export(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(
            ["exec", "197.parser", "--workers", "2", "--json", str(path)]
        ) == 0
        import json

        data = json.loads(path.read_text())
        assert data["commits"] == data["iterations"] > 0
        assert data["measured_speedup"] is not None

    def test_exec_rejects_workload_without_spec(self):
        # 186.crafty has no exec spec; argparse rejects it up front.
        with pytest.raises(SystemExit):
            main(["exec", "186.crafty"])
