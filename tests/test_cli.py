"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.exec.metrics import EngineMetrics
from repro.obs.history import append_record, load_history, make_record


def test_list(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "164.gzip" in output
    assert "300.twolf" in output


def test_bench_single(capsys):
    assert main(["bench", "256.bzip2", "--threads", "1", "8"]) == 0
    output = capsys.readouterr().out
    assert "256.bzip2" in output
    assert "paper reference" in output


def test_bench_unknown_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["bench", "999.unknown"])


def test_figure(capsys):
    assert main(["figure", "5", "--threads", "1", "8"]) == 0
    output = capsys.readouterr().out
    assert "176.gcc" in output
    assert "254.gap" in output


def test_ablation_flags(capsys):
    assert main(
        ["bench", "300.twolf", "--threads", "1", "8", "--no-commutative"]
    ) == 0
    output = capsys.readouterr().out
    assert "300.twolf" in output


def test_threads_deduplicated_and_sorted(capsys):
    assert main(["bench", "253.perlbmk", "--threads", "8", "1", "8"]) == 0
    output = capsys.readouterr().out
    lines = [l for l in output.splitlines() if "|" in l]
    assert len(lines) == 2  # 1 and 8 only


class TestExecCommand:
    """The ``exec`` subcommand: real multiprocess execution."""

    def test_exec_bzip2(self, capsys):
        assert main(["exec", "256.bzip2", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "bit-identical to sequential execution" in output
        assert "measured speedup" in output
        assert "commits" in output

    def test_exec_with_fault_injection(self, capsys):
        assert main(
            ["exec", "256.bzip2", "--workers", "2", "--inject-faults"]
        ) == 0
        output = capsys.readouterr().out
        assert "bit-identical to sequential execution" in output
        # The injected crash and soft fault were absorbed and retried.
        assert "1 crashes" in output
        assert "1 soft faults" in output

    def test_exec_json_export(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(
            ["exec", "197.parser", "--workers", "2", "--json", str(path)]
        ) == 0
        import json

        data = json.loads(path.read_text())
        assert data["commits"] == data["iterations"] > 0
        assert data["measured_speedup"] is not None

    def test_exec_rejects_workload_without_spec(self):
        # 186.crafty has no exec spec; argparse rejects it up front.
        with pytest.raises(SystemExit):
            main(["exec", "186.crafty"])

    def test_exec_gzip_has_real_spec(self, capsys):
        assert main(["exec", "164.gzip", "--workers", "2"]) == 0
        output = capsys.readouterr().out
        assert "bit-identical to sequential execution" in output


class TestExecExitCode:
    """``exec`` must not exit 0 when the run only finished by giving up
    on parallelism."""

    def test_clean_run_is_zero(self):
        from repro.__main__ import _exec_exit_code

        metrics = EngineMetrics()
        metrics.watchdog = {"health": "ok"}
        assert _exec_exit_code(True, metrics) == 0

    def test_mismatch_wins_over_health(self):
        from repro.__main__ import _exec_exit_code

        metrics = EngineMetrics()
        metrics.watchdog = {"health": "degraded"}
        assert _exec_exit_code(False, metrics) == 1

    def test_degraded_watchdog_is_two(self, capsys):
        from repro.__main__ import _exec_exit_code

        for health in ("degraded", "aborted"):
            metrics = EngineMetrics()
            metrics.watchdog = {"health": health}
            assert _exec_exit_code(True, metrics) == 2

    def test_degraded_to_sequential_is_two(self):
        from repro.__main__ import _exec_exit_code

        metrics = EngineMetrics()
        metrics.degraded_to_sequential = True
        assert _exec_exit_code(True, metrics) == 2

    def test_no_watchdog_stays_zero(self):
        from repro.__main__ import _exec_exit_code

        assert _exec_exit_code(True, EngineMetrics()) == 0


class TestExecLiveFlags:
    """The live-telemetry and output-path flags of ``exec``."""

    def test_serve_attaches_live_plane_and_records_history(
        self, capsys, tmp_path
    ):
        history = tmp_path / "nested" / "history.jsonl"
        assert main(
            [
                "exec", "256.bzip2", "--workers", "2",
                "--serve", "0", "--live-interval", "0.05",
                "--history", str(history), "--label", "smoke",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "live: served /metrics /snapshot /health on port" in output
        assert "live health" in output
        # The run appended a schema-versioned record, creating the
        # missing parent directory on the way.
        records = load_history(str(history))
        assert len(records) == 1
        assert records[0]["label"] == "smoke"
        assert records[0]["watchdog"] is not None
        assert records[0]["counters"]["commits"] > 0

    def test_watch_renders_status_to_stderr(self, capsys, tmp_path):
        assert main(
            [
                "exec", "256.bzip2", "--workers", "2",
                "--watch", "--live-interval", "0.01",
                "--history", str(tmp_path / "h.jsonl"),
            ]
        ) == 0
        assert "live:" in capsys.readouterr().err

    def test_no_history_skips_the_store(self, tmp_path):
        history = tmp_path / "h.jsonl"
        assert main(
            [
                "exec", "256.bzip2", "--workers", "2",
                "--history", str(history), "--no-history",
            ]
        ) == 0
        assert not history.exists()

    def test_metrics_out_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "metrics.json"
        assert main(
            [
                "exec", "256.bzip2", "--workers", "2",
                "--metrics-out", str(path), "--no-history",
            ]
        ) == 0
        assert json.loads(path.read_text())["commits"] > 0

    def test_trace_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.json"
        assert main(
            [
                "exec", "256.bzip2", "--workers", "2",
                "--trace", str(path), "--no-history",
            ]
        ) == 0
        assert "traceEvents" in json.loads(path.read_text())

    def test_json_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "run.json"
        assert main(
            [
                "exec", "256.bzip2", "--workers", "2",
                "--json", str(path), "--no-history",
            ]
        ) == 0
        assert json.loads(path.read_text())["commits"] > 0


class TestHistoryCommand:
    """The ``history`` subcommand: cross-run diffs and the CI gate."""

    def _store(self, tmp_path, runs):
        """A synthetic store: (wall_seconds, label) per record."""
        path = tmp_path / "history.jsonl"
        for wall, label in runs:
            metrics = EngineMetrics(
                workers=2, capacity=8, iterations=100, batch_size=16,
                wall_seconds=wall, commits=100,
            )
            append_record(
                str(path),
                make_record(name="256.bzip2", metrics=metrics, label=label),
            )
        return str(path)

    def test_diff_against_auto_baseline(self, capsys, tmp_path):
        path = self._store(tmp_path, [(2.0, None), (2.1, None)])
        assert main(["history", "--history", path]) == 0
        output = capsys.readouterr().out
        assert "verdict: ok" in output
        assert "items_per_sec" in output

    def test_check_fails_on_regression(self, capsys, tmp_path):
        path = self._store(tmp_path, [(2.0, None), (4.0, None)])
        # Without --check the regression is reported but not fatal.
        assert main(["history", "--history", path]) == 0
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["history", "--history", path, "--check"]) == 1

    def test_tolerance_loosens_the_gate(self, tmp_path):
        path = self._store(tmp_path, [(2.0, None), (4.0, None)])
        assert main(
            ["history", "--history", path, "--check", "--tolerance", "0.6"]
        ) == 0

    def test_baseline_by_label(self, tmp_path):
        path = self._store(
            tmp_path, [(2.0, "golden"), (3.9, None), (4.1, None)]
        )
        assert main(
            ["history", "--history", path, "--baseline", "golden", "--check"]
        ) == 1

    def test_no_records_exits_nonzero(self, capsys, tmp_path):
        path = str(tmp_path / "absent.jsonl")
        assert main(["history", "--history", path]) == 1
        assert "no records" in capsys.readouterr().out

    def test_single_record_has_no_baseline(self, capsys, tmp_path):
        path = self._store(tmp_path, [(2.0, None)])
        # Informational without --check, fatal with it (a CI gate that
        # silently has nothing to compare is not a gate).
        assert main(["history", "--history", path]) == 0
        assert "not found" in capsys.readouterr().out
        assert main(["history", "--history", path, "--check"]) == 1

    def test_list_and_json_export(self, capsys, tmp_path):
        path = self._store(tmp_path, [(2.0, "a"), (2.1, None)])
        json_path = tmp_path / "out" / "records.json"
        assert main(
            [
                "history", "--history", path, "--list",
                "--json", str(json_path),
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "256.bzip2" in output
        assert "[a]" in output
        assert len(json.loads(json_path.read_text())) == 2

    def test_exec_to_history_round_trip(self, capsys, tmp_path):
        """The full chain: two real engine runs through the CLI, then the
        cross-run gate over the records they appended."""
        history = str(tmp_path / "history.jsonl")
        for _ in range(2):
            assert main(
                [
                    "exec", "256.bzip2", "--workers", "2",
                    "--history", history,
                ]
            ) == 0
        capsys.readouterr()
        assert main(["history", "--history", history, "--check"]) == 0
        assert "verdict: ok" in capsys.readouterr().out
