"""Tests for the vpr/twolf annealers and the vortex B-tree database."""

import pytest

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.profiling.tracer import Tracer
from repro.workloads.rng import AcmRandom
from repro.workloads.twolf_w import TwolfWorkload
from repro.workloads.vortex_w import BTree, VortexWorkload, _ORDER, _Node
from repro.workloads.vpr_w import VprWorkload


class TestAcmRandom:
    def test_lehmer_sequence(self):
        rng = AcmRandom(1, commutative=False)
        assert rng.next() == 16807
        assert rng.next() == 282475249

    def test_snapshot_restore(self):
        rng = AcmRandom(99)
        saved = rng.snapshot()
        first = [rng.next() for _ in range(5)]
        rng.restore(saved)
        assert [rng.next() for _ in range(5)] == first

    def test_commutative_accesses_tagged(self):
        from repro.profiling.context import activate

        tracer = Tracer()
        rng = AcmRandom(7, commutative=True)
        with activate(tracer):
            with tracer.task("B", 0):
                tracer.work(1)
                rng.next()
        trace = tracer.finish()
        seed_accesses = [a for a in trace.accesses if a.location == ("Yacm_random", "seed")]
        assert seed_accesses
        assert all(a.commutative_group == "Yacm_random" for a in seed_accesses)

    def test_unannotated_accesses_untagged(self):
        from repro.profiling.context import activate

        tracer = Tracer()
        rng = AcmRandom(7, commutative=False)
        with activate(tracer):
            with tracer.task("B", 0):
                tracer.work(1)
                rng.next()
        trace = tracer.finish()
        seed_accesses = [a for a in trace.accesses if a.location == ("Yacm_random", "seed")]
        assert all(a.commutative_group is None for a in seed_accesses)

    def test_below_bounds(self):
        rng = AcmRandom(3)
        assert all(0 <= rng.below(10) < 10 for _ in range(100))


class TestAnnealers:
    def test_vpr_improves_placement(self):
        output = ParallelizationFramework().profile_workload(VprWorkload(), False)[1]
        assert output["final_cost"] < output["initial_cost"]

    def test_vpr_acceptance_declines_with_temperature(self):
        evaluation = ParallelizationFramework().evaluate(VprWorkload())
        windows = evaluation.misspeculation.windowed_rates(
            2 * 130  # two outer iterations per window
        )
        assert windows[0] > 0.6          # hot: most moves accepted & conflict
        assert windows[-1] < windows[0]  # cold: conflicts thin out

    def test_vpr_moderate_speedup(self):
        evaluation = ParallelizationFramework().evaluate(VprWorkload())
        assert 2.5 < evaluation.report.best_speedup < 7.0   # paper: 3.59
        assert evaluation.report.best_threads <= 20         # paper: 15

    def test_twolf_low_plateau(self):
        evaluation = ParallelizationFramework().evaluate(TwolfWorkload())
        assert 1.4 < evaluation.report.best_speedup < 3.0   # paper: 2.06
        assert evaluation.report.best_threads <= 14         # paper: 8

    def test_twolf_improves_wirelength(self):
        output = ParallelizationFramework().profile_workload(TwolfWorkload(), False)[1]
        assert output["wirelength"] < output["initial_wirelength"]

    def test_commutative_rng_is_load_bearing(self):
        """Figure 2's point: without the annotation the RNG serializes all."""
        with_annotation = ParallelizationFramework().evaluate(TwolfWorkload())
        without = ParallelizationFramework(
            FrameworkConfig(enable_commutative=False)
        ).evaluate(TwolfWorkload())
        assert without.report.best_speedup < 1.3
        assert with_annotation.report.best_speedup > 1.5

    def test_deterministic(self):
        fw = ParallelizationFramework()
        assert (
            fw.profile_workload(VprWorkload(), False)[1]
            == fw.profile_workload(VprWorkload(), False)[1]
        )


class TestBTree:
    def make_tree(self, keys):
        tree = BTree(tracer=None)
        for i, key in enumerate(keys):
            tree.insert(key, i)
        return tree

    def test_insert_lookup(self):
        tree = self.make_tree(range(0, 200, 3))
        assert tree.lookup(99) == 33
        assert tree.lookup(100) is None

    def test_duplicates_rejected(self):
        tree = BTree(tracer=None)
        assert tree.insert(5, 0)
        assert not tree.insert(5, 1)
        assert tree.size == 1

    def test_splits_occur(self):
        tree = self.make_tree(range(100))
        assert tree.splits > 0
        assert not tree.root.leaf

    def test_sorted_key_invariant(self):
        tree = self.make_tree([(i * 7919) % 1000 for i in range(300)])
        self._check_sorted(tree.root)

    def _check_sorted(self, node, lower=None, upper=None):
        keys = node.keys
        assert keys == sorted(keys)
        if lower is not None:
            assert all(k > lower for k in keys)
        if upper is not None:
            assert all(k < upper for k in keys)
        if not node.leaf:
            assert len(node.children) == len(keys) + 1
            for i, child in enumerate(node.children):
                child_lower = keys[i - 1] if i > 0 else lower
                child_upper = keys[i] if i < len(keys) else upper
                self._check_sorted(child, child_lower, child_upper)

    def test_node_capacity_respected(self):
        tree = self.make_tree(range(500))
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node.keys) <= _ORDER
            stack.extend(node.children)

    def test_delete_removes(self):
        tree = self.make_tree(range(50))
        assert tree.delete(25)
        assert tree.lookup(25) is None
        assert tree.size == 49

    def test_delete_missing_returns_false(self):
        tree = self.make_tree(range(10))
        assert not tree.delete(999)

    def test_interior_delete_preserves_order(self):
        tree = self.make_tree(range(100))
        interior_key = tree.root.keys[0]
        assert tree.delete(interior_key)
        assert tree.lookup(interior_key) is None
        self._check_sorted(tree.root)


class TestVortexWorkload:
    def test_status_overwhelmingly_normal(self):
        output = ParallelizationFramework().profile_workload(VortexWorkload(), False)[1]
        assert output["status_normal"] > 10 * output["status_failed"]

    def test_transactions_do_real_work(self):
        output = ParallelizationFramework().profile_workload(VortexWorkload(), False)[1]
        assert output["creates"] > 100
        assert output["deletes"] > 50
        assert output["hits"] >= 0
        assert output["splits"] > 5

    def test_moderate_scalability(self):
        evaluation = ParallelizationFramework().evaluate(VortexWorkload())
        assert 3.0 < evaluation.report.best_speedup < 8.5  # paper: 4.92
