"""The shared-memory ring transport's internals and the transport plane.

``tests/test_exec_batching`` proves the *channel* contracts hold on every
backend; this file covers what only the shm ring can get wrong:

- publication ordering: a slot whose seq is not yet published (a writer
  died mid-fill, leaving a torn write) is never consumed;
- wrap markers: messages that would straddle the ring end skip to slot 0
  and FIFO order survives arbitrary payload-size mixes (property-based);
- full-ring backpressure: a stuffed ring raises ``TransportFull`` at the
  deadline and recovers once the reader frees slots;
- the raw-bytes fast path: homogeneous byte frames travel without pickle
  and round-trip exactly;
- segment lifecycle: the owner unlinks on close, attached copies never
  unlink, pickling attaches by name, a SIGKILLed run leaks nothing the
  resource tracker cannot reclaim, and ``reap_stale_segments`` reclaims
  the one shape nothing in-flight can (the whole group died at once);
- the thread backend is deliberately unpicklable, and pool/engine reject
  transports that cannot reach their workers.
"""

import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.channels import ProcessChannel
from repro.exec.engine import ExecutionEngine
from repro.exec.transport import (
    SHM_PREFIX,
    ShmRingTransport,
    ThreadTransport,
    TransportEmpty,
    TransportFull,
    make_transport,
    orphaned_segments,
    reap_stale_segments,
    wait_for_reclaim,
)

CTX = multiprocessing.get_context()


def tiny_ring(slots=4, slot_bytes=64):
    return ShmRingTransport(CTX, slots=slots, slot_bytes=slot_bytes)


# -- publication ordering / torn writes --------------------------------------------


class TestTornWrites:
    def test_unpublished_slot_is_never_consumed(self):
        ring = tiny_ring()
        try:
            ring.send([b"live"], True, timeout=1.0)
            assert ring.recv(timeout=1.0)[0] == [b"live"]
            # A writer that died mid-fill: payload bytes land but the slot
            # seq was never published (it still holds a stale lap's value).
            import struct

            buf = ring._shm.buf
            offset = 128 + (1 % ring.slots) * ring.slot_bytes
            struct.pack_into("<II", buf, offset + 8, 4, 1)  # length, FRAME
            struct.pack_into("<q", buf, offset, -7)  # seq never published
            with pytest.raises(TransportEmpty):
                ring.recv(timeout=0.1)
        finally:
            ring.close()

    def test_stale_previous_lap_seq_is_not_consumed(self):
        """After a full lap, a slot still holding last lap's seq must read
        as empty, not as a duplicate of the old message."""
        ring = tiny_ring()
        try:
            for lap in range(3):  # several laps over the same slots
                for k in range(2):
                    ring.send([b"x%d" % (lap * 2 + k)], True, timeout=1.0)
                    items, _, _ = ring.recv(timeout=1.0)
                    assert items == [b"x%d" % (lap * 2 + k)]
            with pytest.raises(TransportEmpty):
                ring.recv(timeout=0.05)
        finally:
            ring.close()


# -- wrap handling (property-based) ------------------------------------------------


class TestWrap:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=90),
            min_size=1,
            max_size=30,
        )
    )
    @settings(deadline=None, max_examples=30)
    def test_fifo_survives_arbitrary_wraps(self, sizes):
        """Messages sized to force wrap markers at unpredictable offsets
        still arrive complete and in order."""
        ring = tiny_ring(slots=4, slot_bytes=64)
        try:
            for n, size in enumerate(sizes):
                payload = bytes([n % 251]) * size
                ring.send([payload, b"t"], True, timeout=2.0)
                items, single, _ = ring.recv(timeout=2.0)
                assert single is None
                assert items == [payload, b"t"]
        finally:
            ring.close()

    def test_wrap_marker_skips_to_slot_zero(self):
        ring = tiny_ring(slots=4, slot_bytes=64)
        try:
            # Two sends leave the tail mid-ring; the third is sized so it
            # cannot fit before the ring end and must wrap.
            ring.send([b"a" * 30], True, timeout=1.0)
            ring.send([b"b" * 30], True, timeout=1.0)
            assert ring.recv(timeout=1.0)[0] == [b"a" * 30]
            assert ring.recv(timeout=1.0)[0] == [b"b" * 30]
            ring.send([b"c" * 80], True, timeout=1.0)  # needs 2 slots
            assert ring.recv(timeout=1.0)[0] == [b"c" * 80]
        finally:
            ring.close()


# -- full-ring backpressure --------------------------------------------------------


class TestBackpressure:
    def test_full_ring_raises_transport_full_then_recovers(self):
        ring = tiny_ring(slots=4, slot_bytes=64)
        try:
            sent = 0
            with pytest.raises(TransportFull):
                for _ in range(10):
                    ring.send([b"z" * 40], True, timeout=0.05)
                    sent += 1
            assert sent >= 1
            for _ in range(sent):  # reader frees slots
                ring.recv(timeout=1.0)
            ring.send([b"recovered"], True, timeout=1.0)
            assert ring.recv(timeout=1.0)[0] == [b"recovered"]
        finally:
            ring.close()

    def test_oversize_message_rejected_with_guidance(self):
        ring = tiny_ring(slots=4, slot_bytes=64)
        try:
            with pytest.raises(ValueError, match="larger ring"):
                ring.send([b"x" * 4096], True, timeout=1.0)
        finally:
            ring.close()


# -- the raw-bytes fast path -------------------------------------------------------


class TestRawFastPath:
    def test_homogeneous_bytes_round_trip_without_pickle(self):
        ring = ShmRingTransport(CTX)
        try:
            frame = [os.urandom(64) for _ in range(16)]
            ring.send(frame, True, timeout=1.0)
            items, single, deser = ring.recv(timeout=1.0)
            assert single is None
            assert items == frame
            assert deser >= 0.0
        finally:
            ring.close()

    @given(st.lists(st.binary(min_size=0, max_size=128), min_size=2,
                    max_size=24))
    @settings(deadline=None, max_examples=25)
    def test_raw_mode_preserves_every_length_mix(self, frame):
        ring = ShmRingTransport(CTX)
        try:
            ring.send(frame, True, timeout=2.0)
            assert ring.recv(timeout=2.0)[0] == frame
        finally:
            ring.close()


# -- segment lifecycle -------------------------------------------------------------


class TestLifecycle:
    def test_owner_close_unlinks_segment(self):
        ring = ShmRingTransport(CTX)
        name = ring.name
        assert name in orphaned_segments()
        ring.close()
        assert name not in orphaned_segments()
        ring.close()  # idempotent

    def test_state_copy_attaches_and_non_owner_close_keeps_segment(self):
        # mp locks refuse to pickle outside a real Process spawn, so drive
        # the state protocol directly — exactly what spawn would do.
        ring = ShmRingTransport(CTX)
        try:
            state = ring.__getstate__()
            assert state["_shm"] is None  # only the name crosses
            attached = ShmRingTransport.__new__(ShmRingTransport)
            attached.__setstate__(dict(state))
            attached._owner_pid = -1  # what a child's pid check sees
            ring.send([b"through the copy"], True, timeout=1.0)
            assert attached.recv(timeout=1.0)[0] == [b"through the copy"]
            attached.close()  # not the owner: the name must survive
            assert ring.name in orphaned_segments()
        finally:
            ring.close()
        assert ring.name not in orphaned_segments()

    def test_cross_process_round_trip(self):
        channel = ProcessChannel(capacity=64, batch_size=8, transport="shm")

        def child(chan):
            chan.put_many([(k, bytes([k])) for k in range(40)], timeout=5.0)
            chan.flush_and_close(timeout=5.0)

        process = CTX.Process(target=child, args=(channel.for_caller(),))
        process.start()
        try:
            received = []
            while len(received) < 40:
                received.extend(channel.get_many(8, timeout=5.0))
            assert received == [(k, bytes([k])) for k in range(40)]
        finally:
            process.join(5.0)
            channel.close()
        assert not orphaned_segments()

    def test_reap_stale_segments_reclaims_dead_creators(self):
        from multiprocessing import shared_memory

        # A pid that provably no longer exists: a child that already exited.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        name = f"{SHM_PREFIX}{child.pid}-deadbeef"
        segment = shared_memory.SharedMemory(name=name, create=True, size=64)
        segment.close()
        try:
            reaped = reap_stale_segments()
            assert name in reaped
            assert name not in orphaned_segments()
        finally:
            try:
                shared_memory.SharedMemory(name=name).unlink()
            except FileNotFoundError:
                pass

    def test_sigkilled_run_leaks_no_segments(self):
        """SIGKILL the engine parent mid-flight: children notice
        orphanhood and exit, and the resource tracker unlinks both rings.
        The acceptance gate for the whole lifecycle design."""
        child_src = (
            "import sys, time\n"
            f"sys.path.insert(0, {os.path.abspath('src')!r})\n"
            "from repro.exec.engine import ExecutionEngine, PipelineSpec\n"
            "def produce(i): return i\n"
            "def work(i, v):\n"
            "    time.sleep(0.02)\n"
            "    return v + 1\n"
            "def commit(i, r, acc): acc.setdefault('xs', []).append(r)\n"
            "spec = PipelineSpec(iterations=5000, produce=produce,\n"
            "                    work=work, commit=commit,\n"
            "                    finalize=lambda acc: None)\n"
            "print('starting', flush=True)\n"
            "ExecutionEngine(workers=2, capacity=32, batch_size=8,\n"
            "                transport='shm').run(spec)\n"
        )
        before = set(orphaned_segments())
        proc = subprocess.Popen(
            [sys.executable, "-c", child_src],
            stdout=subprocess.PIPE, start_new_session=True,
        )
        try:
            proc.stdout.readline()  # engine is up
            time.sleep(0.8)  # mid-flight: segments exist
            assert set(orphaned_segments()) - before
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10.0)
        finally:
            if proc.poll() is None:
                proc.kill()
        leaked = [
            name for name in wait_for_reclaim(timeout=15.0)
            if name not in before
        ]
        assert not leaked, f"SIGKILLed run leaked {leaked}"


# -- backend registry and rejections -----------------------------------------------


class TestRegistry:
    def test_make_transport_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown transport"):
            make_transport("carrier-pigeon", CTX, 16)

    def test_thread_transport_is_unpicklable_by_design(self):
        transport = ThreadTransport()
        with pytest.raises(TypeError):
            pickle.dumps(transport)

    def test_engine_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ExecutionEngine(transport="bogus")

    def test_pool_rejects_thread_transport(self):
        from repro.service.pool import WorkerPool

        with pytest.raises(ValueError, match="pipe.*shm"):
            WorkerPool(transport="thread")
