"""Tests for DSWP partitioning, stage balancing, MTCG and the TLS runtime."""

import pytest

from repro.core.simulator import PipelineSimulator
from repro.dswp.balance import balance_stages, pipeline_throughput_bound
from repro.dswp.partition import StageKind, partition_loop
from repro.hw.machine import MachineConfig
from repro.hw.versioned_memory import VersionedMemory
from repro.pdg.builder import build_loop_pdg
from repro.pdg.scc import condense
from repro.tls.epochs import TLSExecution
from repro.tls.scheduler import simulate_tls


class TestPartition:
    def test_pipeline_loop_gets_three_stages(self, pipeline_program, pipeline_loop):
        partition = partition_loop(pipeline_program, pipeline_loop)
        phases = [stage.phase for stage in partition.stages]
        assert phases == ["A", "B", "C"]
        assert partition.parallel_stage is not None
        assert partition.parallel_stage.kind is StageKind.PARALLEL

    def test_heavy_compute_lands_in_parallel_stage(self, pipeline_program, pipeline_loop):
        partition = partition_loop(pipeline_program, pipeline_loop)
        assert partition.parallel_stage.cost >= 50
        assert partition.parallel_fraction > 0.8

    def test_validation_accepts_partition(self, pipeline_program, pipeline_loop):
        partition = partition_loop(pipeline_program, pipeline_loop)
        partition.validate()  # must not raise

    def test_fully_serial_loop_degrades_to_sequential_stages(
        self, counter_program, counter_loop
    ):
        partition = partition_loop(counter_program, counter_loop)
        parallel = partition.parallel_stage
        # The counter loop is one big recurrence: any parallel stage found
        # must be trivial (the loop-control SCC only).
        if parallel is not None:
            assert parallel.cost <= partition_total(partition) / 2

    def test_task_graph_synthesis(self, pipeline_program, pipeline_loop):
        partition = partition_loop(pipeline_program, pipeline_loop)
        graph = partition.task_graph(100)
        assert graph.iterations() == 100
        result = PipelineSimulator(MachineConfig(cores=16)).simulate(graph)
        assert result.speedup > 5


def partition_total(partition):
    return sum(stage.cost for stage in partition.stages)


class TestBalance:
    def test_balancing_minimizes_bottleneck(self, pipeline_program, pipeline_loop):
        pdg = build_loop_pdg(pipeline_program, pipeline_loop)
        topo = condense(pdg).topological_order()
        stages = balance_stages(topo, 2)
        total, bottleneck = pipeline_throughput_bound(stages)
        assert total == sum(s.cost for s in topo)
        # The heavy 50-cost SCC dictates the floor.
        assert bottleneck >= max(s.cost for s in topo)
        assert bottleneck < total

    def test_more_stages_never_worse(self, pipeline_program, pipeline_loop):
        pdg = build_loop_pdg(pipeline_program, pipeline_loop)
        topo = condense(pdg).topological_order()
        _, bottleneck2 = pipeline_throughput_bound(balance_stages(topo, 2))
        _, bottleneck4 = pipeline_throughput_bound(balance_stages(topo, 4))
        assert bottleneck4 <= bottleneck2

    def test_empty_input(self):
        assert balance_stages([], 3) == [[], [], []]

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            balance_stages([], 0)


class TestTLSRuntime:
    def test_independent_iterations_commit_cleanly(self):
        execution = TLSExecution()

        def body(view, i):
            view.write("cell", i, i * i)
            return i * i

        results = execution.execute(body, 10)
        assert results == [i * i for i in range(10)]
        assert execution.stats.squashes == 0
        assert execution.memory.committed_value("cell", 3) == 9

    def test_dependent_iterations_squash_and_replay(self):
        execution = TLSExecution(VersionedMemory(eager_forwarding=False), max_epochs_in_flight=4)

        def body(view, i):
            current = view.read("sum") or 0
            view.write("sum", None, current + 1)
            return current + 1

        results = execution.execute(body, 8)
        assert execution.memory.committed_value("sum") == 8
        assert results[-1] == 8
        assert execution.stats.squashes > 0

    def test_eager_forwarding_avoids_squashes_in_window(self):
        execution = TLSExecution(VersionedMemory(eager_forwarding=True), max_epochs_in_flight=4)

        def body(view, i):
            current = view.read("sum") or 0
            view.write("sum", None, current + 1)
            return current + 1

        execution.execute(body, 8)
        assert execution.memory.committed_value("sum") == 8
        # Within one window, forwarding supplies fresh values: no squashes.
        assert execution.stats.squashes == 0

    def test_commutative_rollback_on_squash(self):
        allocations = []

        def xalloc():
            allocations.append(len(allocations))
            return allocations[-1]

        def xfree():
            allocations.pop()

        execution = TLSExecution(VersionedMemory(eager_forwarding=False), max_epochs_in_flight=2)

        def body(view, i):
            view.commutative_call(xalloc, xfree)
            stale = view.read("x")
            view.write("x", None, i)
            return stale

        execution.execute(body, 4)
        # Every surviving iteration allocated exactly once.
        assert len(allocations) == 4

    def test_sequential_semantics_preserved(self):
        """The TLS result must match plain sequential execution."""

        def sequential():
            memory = {}
            out = []
            for i in range(12):
                value = memory.get("acc", 1)
                memory["acc"] = (value * 3 + i) % 97
                out.append(memory["acc"])
            return out, memory["acc"]

        execution = TLSExecution(VersionedMemory(eager_forwarding=False), max_epochs_in_flight=5)

        def body(view, i):
            value = view.read("acc")
            if value is None:
                value = 1
            new = (value * 3 + i) % 97
            view.write("acc", None, new)
            return new

        results = execution.execute(body, 12)
        expected_list, expected_final = sequential()
        assert results == expected_list
        assert execution.memory.committed_value("acc") == expected_final


class TestTLSScheduler:
    def test_independent_iterations_scale(self):
        from tests.test_core_simulator import make_graph

        graph = make_graph(iterations=64, a=0, b=100, c=0)
        result = simulate_tls(graph, MachineConfig(cores=8))
        assert result.speedup > 7.0

    def test_serial_chain_does_not_scale(self):
        from repro.core.tasks import Phase, SerializationEdge, Task, TaskGraph

        tasks = [Task(i, Phase.B, i, 10) for i in range(32)]
        edges = [SerializationEdge(i - 1, i, "misspeculation") for i in range(1, 32)]
        graph = TaskGraph(tasks, edges)
        result = simulate_tls(graph, MachineConfig(cores=8))
        assert result.speedup == pytest.approx(1.0)

    def test_single_core_is_baseline(self):
        from tests.test_core_simulator import make_graph

        graph = make_graph(iterations=10)
        result = simulate_tls(graph, MachineConfig(cores=1))
        assert result.speedup == 1.0
