"""Hypothesis fuzzing of the mini-C compiler.

Random programs are *composed structurally* (not from seeds), compiled with
the full optimization path (mem2reg + scalar passes), and checked for exact
behavioral equivalence against the unoptimized lowering via the IR
interpreter — the compiler analog of differential testing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.interp import Interpreter
from repro.ir.ssa import promote_memory_to_registers
from repro.ir.transforms import run_pass_pipeline
from repro.workloads.gcc_compiler import Lowerer, Parser, tokenize

_VARIABLES = ["a", "b", "x", "y", "z"]


@st.composite
def expressions(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(_VARIABLES))
        return str(draw(st.integers(min_value=0, max_value=50)))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(expressions(depth=depth + 1))
    right = draw(expressions(depth=depth + 1))
    return f"({left} {op} {right})"


@st.composite
def statements(draw, depth=0):
    kind = draw(st.sampled_from(["assign", "assign", "assign", "if", "while"]))
    if kind == "assign" or depth >= 2:
        target = draw(st.sampled_from(_VARIABLES[2:]))
        return f"{target} = {draw(expressions())};"
    if kind == "if":
        condition = f"{draw(expressions())} > {draw(st.integers(0, 30))}"
        then_statement = draw(statements(depth=depth + 1))
        else_statement = draw(statements(depth=depth + 1))
        return f"if ({condition}) {{ {then_statement} }} else {{ {else_statement} }}"
    # Bounded while: the loop variable strictly decreases, so it terminates.
    loop_var = draw(st.sampled_from(_VARIABLES[2:]))
    step = draw(st.integers(min_value=1, max_value=3))
    body = draw(statements(depth=depth + 1))
    return (
        f"while ({loop_var} > {draw(st.integers(0, 8))}) "
        f"{{ {loop_var} = {loop_var} - {step}; {body.replace(loop_var + ' =', '__skip =') if loop_var in body.split(' =')[0] else body} }}"
    )


@st.composite
def functions(draw):
    body = " ".join(draw(st.lists(statements(), min_size=1, max_size=6)))
    returned = draw(st.sampled_from(_VARIABLES))
    return (
        "func fuzz(a, b) { x = a; y = b; z = 0; __skip = 0; "
        f"{body} return {returned}; }}"
    )


@given(source=functions(), args=st.tuples(st.integers(0, 20), st.integers(0, 20)))
@settings(max_examples=60, deadline=None)
def test_optimized_compile_equals_reference(source, args):
    from repro.ir.interp import InterpreterError

    ast = Parser(tokenize(source)).parse_unit()[0]
    reference = Lowerer().lower(ast)
    optimized = Lowerer().lower(ast)
    promote_memory_to_registers(optimized)
    run_pass_pipeline(optimized)
    optimized.verify()

    def run(function):
        try:
            return ("ok", Interpreter(max_steps=500_000).run_function(function, list(args)))
        except InterpreterError as error:
            if "budget" in str(error):
                return ("diverged", None)  # a generated endless loop
            raise

    assert run(reference) == run(optimized)
