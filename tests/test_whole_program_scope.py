"""Tests for Section 2.2: whole-program scope via loop-call inlining.

A loop whose heavy compute hides behind a function call cannot be
pipelined — the call is one opaque node.  After ``inline_loop_calls`` the
callee's body is inside the loop and the partitioner finds the parallel
stage.
"""

import pytest

from repro.core.framework import ParallelizationFramework
from repro.core.simulator import PipelineSimulator
from repro.hw.machine import MachineConfig
from repro.ir.builder import ProgramBuilder
from repro.ir.inline import inline_loop_calls
from repro.ir.loops import find_loops
from repro.ir.types import IntType


def build_program_with_helper(commutative_helper=False):
    pb = ProgramBuilder("scoped")
    total = pb.global_variable("total")
    data = pb.global_variable("data")

    helper = pb.function("heavy", [IntType(64)], ["x"])
    helper.block("entry")
    squared = helper.mul(helper.param(0), helper.param(0), name="squared", cost=80)
    helper.ret(squared)
    if commutative_helper:
        helper.function.mark_commutative(group="heavy")

    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    i = fb.phi(IntType(64), [(0, "entry")], name="i")
    element = fb.load(data, [data], name="element", cost=2)
    call = fb.call("heavy", [element], name="result", cost=1)
    running = fb.load(total, [total], name="running", cost=1)
    fb.store(fb.add(running, call.result), total, [total], cost=1)
    next_i = fb.add(i, 1, name="next_i")
    phi = fb.function.block("loop").phis()[0]
    phi.operands.append(next_i)
    phi.incoming_blocks.append("loop")
    fb.branch(fb.compare("lt", next_i, 1000), "loop", "exit")
    fb.block("exit")
    fb.ret()
    program = pb.finish()
    program.set_main("main")
    return program


class TestInlineLoopCalls:
    def test_call_disappears_from_loop(self):
        program = build_program_with_helper()
        loop = find_loops(program.function("main")).outermost()
        refreshed = inline_loop_calls(program, loop)
        opcodes = [i.opcode() for i in refreshed.instructions()]
        assert "call" not in opcodes
        assert "mul" in opcodes
        program.function("main").verify()

    def test_loop_header_preserved(self):
        program = build_program_with_helper()
        loop = find_loops(program.function("main")).outermost()
        refreshed = inline_loop_calls(program, loop)
        assert refreshed.header.name == loop.header.name
        assert len(refreshed.blocks) > len(loop.blocks)

    def test_commutative_callee_stays_opaque(self):
        program = build_program_with_helper(commutative_helper=True)
        loop = find_loops(program.function("main")).outermost()
        refreshed = inline_loop_calls(program, loop)
        opcodes = [i.opcode() for i in refreshed.instructions()]
        assert "call" in opcodes

    def test_inline_budget_respected(self):
        program = build_program_with_helper()
        loop = find_loops(program.function("main")).outermost()
        refreshed = inline_loop_calls(program, loop, max_inlines=0)
        assert "call" in [i.opcode() for i in refreshed.instructions()]


class TestScopeUnlocksParallelism:
    def test_inlined_partition_scales_where_opaque_does_not(self):
        framework = ParallelizationFramework()

        opaque_program = build_program_with_helper()
        opaque_loop = find_loops(opaque_program.function("main")).outermost()
        opaque = framework.parallelize_loop(opaque_program, opaque_loop)

        scoped_program = build_program_with_helper()
        scoped_loop = find_loops(scoped_program.function("main")).outermost()
        scoped = framework.parallelize_loop(
            scoped_program, scoped_loop, inline_calls=True
        )

        # The inlined version exposes the heavy mul as replicable work.
        machine_speedup = lambda p: PipelineSimulator(
            MachineConfig(cores=16)
        ).simulate(p.task_graph(200)).speedup
        assert scoped.parallel_fraction > 0.5
        assert machine_speedup(scoped) > 5

    def test_inlined_partition_validates(self):
        program = build_program_with_helper()
        loop = find_loops(program.function("main")).outermost()
        partition = ParallelizationFramework().parallelize_loop(
            program, loop, inline_calls=True
        )
        partition.validate()
        assert partition.parallel_stage is not None
