"""Tests for the live telemetry plane (ISSUE 5).

The acceptance contract:

- the shared-memory registry counts exactly and sums across writer rows;
  snapshots taken mid-run are internally consistent
  (``committed <= claimed <= produced``) — pinned by a hypothesis property
  over arbitrary causal schedules, a threaded writer/sampler stress, and a
  real engine run polled over HTTP;
- ``/metrics`` is valid Prometheus text exposition: golden-file pinned
  (HELP/TYPE preambles, label escaping, cumulative histogram buckets) and
  counter-monotone across two scrapes of a live run;
- ``/health`` transitions ok → degraded when an injected committer stall
  freezes the commit frontier, and back once commits resume;
- the watchdog detects stalls, queue saturation, and misspeculation
  storms, escalating log → degraded → (optional) abort;
- the history store appends schema-versioned records, survives corrupt
  lines, picks sensible baselines, and gates regressions with tolerance;
- empty latency histograms render guarded summaries (no degenerate
  p50=p99=0 rows, no exceptions).
"""

import json
import multiprocessing
import os
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import ExecutionEngine, PipelineSpec, run_sequential
from repro.exec.metrics import EngineMetrics
from repro.obs.hist import LatencyHistogram
from repro.obs.history import (
    HISTORY_SCHEMA,
    append_record,
    diff_records,
    format_history_diff,
    format_history_list,
    load_history,
    make_record,
    select_baseline,
)
from repro.obs.live import (
    HealthState,
    LiveConfig,
    LiveMonitor,
    Watchdog,
    WatchdogConfig,
)
from repro.obs.registry import (
    BUCKET_BOUNDS,
    COUNTER_NAMES,
    GAUGE_NAMES,
    HistogramSnapshot,
    MetricsRegistry,
    RegistrySnapshot,
    WRITER_COMMITTER,
    WRITER_PRODUCER,
    WRITER_WORKER0,
    bucket_index,
    writers_for,
)
from repro.obs.serve import (
    MetricsServer,
    escape_label_value,
    prometheus_exposition,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")


# -- module-level stage functions (picklable across processes) ---------------------


def produce_i(i):
    return i


def sleepy_work(i, value):
    time.sleep(0.004)
    return value * 2


def record_commit(i, result, acc):
    acc[i] = result


# -- registry -----------------------------------------------------------------------


class TestRegistry:
    def _registry(self, writers=4):
        return MetricsRegistry.create(multiprocessing.get_context(), writers)

    def test_counters_sum_across_writer_rows(self):
        registry = self._registry()
        registry.add(WRITER_WORKER0, "claimed", 3)
        registry.add(WRITER_WORKER0 + 1, "claimed", 4)
        registry.add(WRITER_PRODUCER, "produced", 9)
        assert registry.counter_total("claimed") == 7
        assert registry.counter_total("produced") == 9
        assert registry.counter_total("committed") == 0

    def test_gauges_overwrite(self):
        registry = self._registry()
        registry.set_gauge("watermark", 5)
        registry.set_gauge("watermark", 11)
        assert registry.gauge_value("watermark") == 11

    def test_unknown_names_rejected(self):
        registry = self._registry()
        with pytest.raises(KeyError):
            registry.add(0, "no_such_counter")
        with pytest.raises(KeyError):
            registry.set_gauge("no_such_gauge", 1)
        with pytest.raises(KeyError):
            registry.observe(0, "no_such_histogram", 0.1)

    def test_bucket_index_bounds(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(1e-6) == 0
        assert bucket_index(1.1e-6) == 1
        # Beyond the last bound lands in the overflow bucket.
        assert bucket_index(BUCKET_BOUNDS[-1] * 10) == len(BUCKET_BOUNDS)

    def test_histogram_snapshot_percentiles(self):
        registry = self._registry()
        for seconds in (0.001, 0.002, 0.004, 0.008, 0.1):
            registry.observe(WRITER_WORKER0, "task_b_seconds", seconds)
        hist = registry.histogram_snapshot("task_b_seconds")
        assert hist.count == 5
        assert hist.total == pytest.approx(0.115)
        p50 = hist.percentile(50)
        # The estimate interpolates inside the landing bucket: it must be
        # within the bucket that holds the true median (0.004).
        assert 0.002 < p50 <= 0.004096
        assert hist.percentile(100) >= hist.percentile(0)

    def test_histogram_sums_across_writers(self):
        registry = self._registry()
        registry.observe(WRITER_WORKER0, "task_b_seconds", 0.01)
        registry.observe(WRITER_WORKER0 + 1, "task_b_seconds", 0.01)
        assert registry.histogram_snapshot("task_b_seconds").count == 2

    def test_empty_histogram_percentile_is_none(self):
        hist = HistogramSnapshot(
            buckets=(0,) * (len(BUCKET_BOUNDS) + 1), total=0.0
        )
        assert hist.count == 0
        assert hist.percentile(50) is None
        assert hist.percentile(99) is None
        # The JSON shape omits percentile keys entirely — the guard that
        # keeps renderings from printing degenerate p50=p99=0 rows.
        assert "p50" not in hist.to_json()

    def test_writers_for_covers_respawn_budget(self):
        assert writers_for(4, 3) >= WRITER_WORKER0 + 4 + 3

    def test_snapshot_shape(self):
        registry = self._registry()
        snapshot = registry.snapshot()
        assert set(snapshot.counters) == set(COUNTER_NAMES)
        assert set(snapshot.gauges) == set(GAUGE_NAMES)
        assert snapshot.monotonic_s > 0


# -- snapshot consistency (the property) --------------------------------------------


def _consistent(snapshot):
    c = snapshot.counters
    return c["committed"] <= c["claimed"] <= c["produced"]


@given(st.lists(st.integers(min_value=0, max_value=3), max_size=120))
@settings(max_examples=60, deadline=None)
def test_snapshot_consistent_under_any_causal_schedule(ops):
    """Any schedule that respects pipeline causality (an item is produced
    before claimed, claimed before executed/committed) keeps every
    snapshot internally consistent."""
    registry = MetricsRegistry.create(multiprocessing.get_context(), 4)
    produced = claimed = executed = committed = 0
    for op in ops:
        if op == 0:
            registry.add(WRITER_PRODUCER, "produced")
            produced += 1
        elif op == 1 and claimed < produced:
            registry.add(WRITER_WORKER0, "claimed")
            claimed += 1
        elif op == 2 and executed < claimed:
            registry.add(WRITER_WORKER0, "executed")
            executed += 1
        elif op == 3 and committed < claimed:
            registry.add(WRITER_COMMITTER, "committed")
            committed += 1
        assert _consistent(registry.snapshot())


def test_snapshot_consistent_under_threaded_writers():
    """Three writer threads race a sampler: the reverse-causal read order
    must keep every snapshot consistent without any locking."""
    registry = MetricsRegistry.create(multiprocessing.get_context(), 4)
    total = 4000
    stop = threading.Event()

    def producer():
        for _ in range(total):
            registry.add(WRITER_PRODUCER, "produced")

    def worker():
        claimed = 0
        while claimed < total and not stop.is_set():
            available = registry.counter_total("produced") - claimed
            if available > 0:
                registry.add(WRITER_WORKER0, "claimed", available)
                claimed += available

    def committer():
        committed = 0
        while committed < total and not stop.is_set():
            available = registry.counter_total("claimed") - committed
            if available > 0:
                registry.add(WRITER_COMMITTER, "committed", available)
                committed += available

    threads = [
        threading.Thread(target=fn) for fn in (producer, worker, committer)
    ]
    for thread in threads:
        thread.start()
    try:
        violations = 0
        for _ in range(400):
            if not _consistent(registry.snapshot()):
                violations += 1
        assert violations == 0
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
    assert registry.counter_total("committed") == total


# -- prometheus exposition ----------------------------------------------------------


def _golden_registry():
    """A deterministic registry for the golden-file exposition test."""
    registry = MetricsRegistry.create(
        multiprocessing.get_context(), writers_for(2, 0)
    )
    registry.add(WRITER_PRODUCER, "produced", 12)
    registry.add(WRITER_WORKER0, "claimed", 8)
    registry.add(WRITER_WORKER0 + 1, "claimed", 4)
    registry.add(WRITER_WORKER0, "executed", 8)
    registry.add(WRITER_WORKER0 + 1, "executed", 3)
    registry.add(WRITER_COMMITTER, "committed", 10)
    registry.add(WRITER_COMMITTER, "conflicts", 2)
    registry.add(WRITER_COMMITTER, "serial_reexec", 2)
    registry.add(WRITER_COMMITTER, "soft_faults", 1)
    registry.add(WRITER_COMMITTER, "chaos_injections", 3)
    registry.set_gauge("watermark", 10)
    registry.set_gauge("window", 16)
    registry.set_gauge("work_occupancy", 3)
    registry.set_gauge("done_occupancy", 1)
    registry.set_gauge("workers_alive", 2)
    registry.set_gauge("iterations", 12)
    for seconds in (2e-6, 3e-6, 0.004, 0.1):
        registry.observe(WRITER_WORKER0, "task_b_seconds", seconds)
    registry.observe(WRITER_COMMITTER, "commit_lag_seconds", 0.02)
    # Overflow sample: beyond the last bucket bound.
    registry.observe(WRITER_COMMITTER, "commit_lag_seconds", 200.0)
    return registry


_GOLDEN_WATCHDOG = {
    "health": "ok",
    "stalls": 1,
    "saturations": 0,
    "storms": 2,
    "aborted": False,
}

# A label value exercising every escape: backslash, quote, newline.
_GOLDEN_LABELS = (
    ("workload", "197.parser"),
    ("run_id", 'a"b\\c\nd'),
)


class TestPrometheusExposition:
    def _render(self):
        return prometheus_exposition(
            _golden_registry().snapshot(),
            labels=_GOLDEN_LABELS,
            watchdog=_GOLDEN_WATCHDOG,
        )

    def test_golden_file(self):
        """The exposition format is a wire contract: pin it byte-for-byte.
        Regenerate with ``python tests/make_golden.py`` after an
        intentional format change."""
        rendered = self._render()
        path = os.path.join(GOLDEN, "metrics_exposition.prom")
        with open(path, "r", encoding="utf-8") as handle:
            assert rendered == handle.read()

    def test_help_and_type_precede_every_family(self):
        lines = self._render().splitlines()
        seen_help = set()
        seen_type = set()
        for line in lines:
            if line.startswith("# HELP "):
                seen_help.add(line.split(" ")[2])
            elif line.startswith("# TYPE "):
                name = line.split(" ")[2]
                assert name in seen_help, f"TYPE before HELP for {name}"
                seen_type.add(name)
            else:
                family = line.split("{")[0].split(" ")[0]
                base = (
                    family.rsplit("_bucket", 1)[0]
                    .rsplit("_sum", 1)[0]
                    .rsplit("_count", 1)[0]
                )
                assert base in seen_type, f"sample before TYPE: {line}"

    def test_label_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        text = self._render()
        assert 'run_id="a\\"b\\\\c\\nd"' in text
        assert "\n\n" not in text  # no raw newline leaked from a label

    def test_histogram_buckets_cumulative_and_terminated(self):
        text = self._render()
        lines = [
            line for line in text.splitlines()
            if line.startswith("repro_task_b_seconds_bucket")
        ]
        values = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert values == sorted(values), "bucket counts must be cumulative"
        assert lines[-1].rsplit(" ", 1) == [
            lines[-1].rsplit(" ", 1)[0], "4"
        ]
        assert 'le="+Inf"' in lines[-1]
        assert "repro_task_b_seconds_count" in text
        assert "repro_task_b_seconds_sum" in text

    def test_watchdog_health_gauge(self):
        text = self._render()
        assert "repro_healthy" in text
        assert "repro_watchdog_stalls_total" in text
        degraded = prometheus_exposition(
            _golden_registry().snapshot(),
            watchdog={"health": "degraded", "stalls": 1},
        )
        assert "repro_healthy 0" in degraded


# -- the live engine run: scrapes, health transition, consistency -------------------


class TestLiveEngineRun:
    def _spec(self, iterations=300, commit=record_commit):
        return PipelineSpec(
            iterations=iterations,
            produce=produce_i,
            work=sleepy_work,
            commit=commit,
        )

    def _run_in_thread(self, engine, spec):
        box = {}

        def run():
            box["result"] = engine.run(spec)

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.monotonic() + 10.0
        while engine.live_server_port is None:
            assert time.monotonic() < deadline, "server never came up"
            assert thread.is_alive(), "engine died before serving"
            time.sleep(0.005)
        return thread, box

    @staticmethod
    def _get(port, path):
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5.0
        ) as response:
            return response.status, response.read().decode("utf-8")

    @staticmethod
    def _parse_prom(text):
        samples = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            key, value = line.rsplit(" ", 1)
            samples[key] = float(value)
        return samples

    def test_mid_run_scrapes_snapshots_and_monotonicity(self):
        engine = ExecutionEngine(
            workers=2, capacity=16,
            live=LiveConfig(interval=0.03, serve=0),
        )
        spec = self._spec()
        thread, box = self._run_in_thread(engine, spec)
        try:
            port = engine.live_server_port
            _, first_text = self._get(port, "/metrics")
            first = self._parse_prom(first_text)
            # Mid-run snapshots must be internally consistent.
            for _ in range(15):
                assert _consistent(engine.live_monitor.peek())
                time.sleep(0.01)
            _, second_text = self._get(port, "/metrics")
            second = self._parse_prom(second_text)
            for key, value in first.items():
                if "_total" in key or "_bucket" in key or "_count" in key:
                    assert second[key] >= value, f"{key} went backwards"
            status, body = self._get(port, "/snapshot")
            snapshot = json.loads(body)
            assert snapshot["progress"]["iterations"] == spec.iterations
            assert "counters" in snapshot["snapshot"]
            status, _ = self._get(port, "/health")
            assert status == 200
        finally:
            thread.join(timeout=60.0)
        result = box["result"]
        sequential, _ = run_sequential(self._spec())
        assert result.output == sequential
        assert result.metrics.watchdog is not None
        assert result.metrics.watchdog["health"] == "ok"
        # The registry agrees with the authoritative metrics at the end.
        final = engine.live_monitor.last_snapshot
        assert final.counters["committed"] == spec.iterations
        assert final.counters["produced"] == spec.iterations

    def test_health_transitions_ok_to_degraded_on_committer_stall(self):
        """An injected committer stall (the commit callback hangs) freezes
        the commit frontier; the watchdog must flip /health from 200 ok to
        503 degraded while the stall lasts."""
        stall_at = 40

        def stalling_commit(i, result, acc):
            acc[i] = result
            if i == stall_at:
                time.sleep(1.2)

        engine = ExecutionEngine(
            workers=2, capacity=16,
            live=LiveConfig(
                interval=0.03, serve=0,
                # Saturation is disabled: a full work channel is ordinary
                # backpressure with slow workers, and this test must see
                # degraded *because of the stall*, not the queue.
                watchdog=WatchdogConfig(
                    stall_seconds=0.3, saturation_samples=10_000
                ),
            ),
        )
        spec = self._spec(iterations=80, commit=stalling_commit)
        thread, box = self._run_in_thread(engine, spec)
        statuses = []
        try:
            port = engine.live_server_port
            deadline = time.monotonic() + 15.0
            while thread.is_alive() and time.monotonic() < deadline:
                try:
                    status, body = self._get(port, "/health")
                except (urllib.error.HTTPError) as error:
                    status, body = error.code, error.read().decode("utf-8")
                except OSError:
                    break  # server already torn down at run end
                statuses.append((status, json.loads(body)["status"]))
                if status == 503:
                    break
                time.sleep(0.02)
        finally:
            thread.join(timeout=60.0)
        assert statuses, "never reached the health endpoint"
        assert statuses[0] == (200, "ok"), "run should start healthy"
        assert (503, "degraded") in statuses, (
            f"no degraded verdict observed: {statuses[-5:]}"
        )
        watchdog = box["result"].metrics.watchdog
        assert watchdog["stalls"] >= 1
        # The stall passed and commits resumed: the run ends healthy.
        assert watchdog["health"] == "ok"
        assert any(e["kind"] == "recovered" for e in watchdog["events"])


# -- watchdog detectors -------------------------------------------------------------


def _snapshot(monotonic_s, **counters):
    base = {name: 0 for name in COUNTER_NAMES}
    base.update(counters)
    gauges = {name: 0 for name in GAUGE_NAMES}
    gauges["work_occupancy"] = counters.get("work_occupancy", 0)
    return RegistrySnapshot(
        counters=base, gauges=gauges, histograms={},
        monotonic_s=monotonic_s, unix_s=0.0,
    )


class TestWatchdog:
    def test_stall_flagged_and_recovered(self):
        watchdog = Watchdog(
            WatchdogConfig(stall_seconds=1.0), capacity=8, iterations=100
        )
        watchdog.observe(_snapshot(0.0, committed=5))
        watchdog.observe(_snapshot(0.5, committed=5))
        assert watchdog.health == HealthState.OK
        watchdog.observe(_snapshot(1.6, committed=5))
        assert watchdog.health == HealthState.DEGRADED
        assert watchdog.stall_events == 1
        watchdog.observe(_snapshot(2.0, committed=6))
        assert watchdog.health == HealthState.OK
        assert watchdog.degraded_ever

    def test_finished_run_is_not_a_stall(self):
        watchdog = Watchdog(
            WatchdogConfig(stall_seconds=1.0), capacity=8, iterations=10
        )
        watchdog.observe(_snapshot(0.0, committed=10))
        watchdog.observe(_snapshot(60.0, committed=10))
        assert watchdog.health == HealthState.OK
        assert watchdog.stall_events == 0

    def test_stall_escalates_to_abort(self):
        aborts = []
        watchdog = Watchdog(
            WatchdogConfig(stall_seconds=0.5, abort_stall_seconds=2.0),
            capacity=8, iterations=100, on_abort=lambda: aborts.append(1),
        )
        watchdog.observe(_snapshot(0.0, committed=3))
        watchdog.observe(_snapshot(1.0, committed=3))
        assert watchdog.stall_events == 1 and not aborts
        watchdog.observe(_snapshot(3.0, committed=3))
        assert aborts == [1]
        assert watchdog.health == HealthState.ABORTED
        # Abort fires exactly once, no matter how long the stall drags on.
        watchdog.observe(_snapshot(9.0, committed=3))
        assert aborts == [1]

    def test_saturation_needs_consecutive_samples(self):
        watchdog = Watchdog(
            WatchdogConfig(saturation_samples=3), capacity=10, iterations=0
        )
        for t in (0.0, 0.1):
            watchdog.observe(_snapshot(t, committed=1, work_occupancy=10))
        assert watchdog.saturation_events == 0
        watchdog.observe(_snapshot(0.2, committed=1, work_occupancy=5))
        watchdog.observe(_snapshot(0.3, committed=1, work_occupancy=10))
        assert watchdog.saturation_events == 0  # run was broken
        for t in (0.4, 0.5):
            watchdog.observe(_snapshot(t, committed=1, work_occupancy=10))
        assert watchdog.saturation_events == 1

    def test_storm_detection_and_recovery(self):
        watchdog = Watchdog(
            WatchdogConfig(storm_rate=0.5, storm_min_commits=4),
            capacity=8, iterations=0,
        )
        watchdog.observe(_snapshot(0.0, committed=0, conflicts=0))
        watchdog.observe(_snapshot(0.1, committed=10, conflicts=6))
        assert watchdog.storm_events == 1
        assert watchdog.health == HealthState.DEGRADED
        watchdog.observe(_snapshot(0.2, committed=20, conflicts=6))
        assert watchdog.health == HealthState.OK

    def test_from_policy_thresholds(self):
        class Policy:
            task_timeout = 1.0
            stall_timeout = 20.0

        config = WatchdogConfig.from_policy(Policy())
        assert config.stall_seconds == pytest.approx(0.5)

        class SlowPolicy:
            task_timeout = 30.0
            stall_timeout = 60.0

        config = WatchdogConfig.from_policy(SlowPolicy())
        assert config.stall_seconds == pytest.approx(15.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(stall_seconds=0)
        with pytest.raises(ValueError):
            WatchdogConfig(saturation_fraction=1.5)
        with pytest.raises(ValueError):
            WatchdogConfig(stall_seconds=5.0, abort_stall_seconds=1.0)


# -- monitor ------------------------------------------------------------------------


class TestLiveMonitor:
    def test_status_line_and_rate(self):
        registry = MetricsRegistry.create(multiprocessing.get_context(), 4)
        monitor = LiveMonitor(
            registry, LiveConfig(interval=0.01),
            capacity=8, iterations=100,
        )
        monitor.start()
        try:
            for i in range(50):
                registry.add(WRITER_COMMITTER, "committed")
                registry.add(WRITER_WORKER0, "claimed")
                registry.add(WRITER_PRODUCER, "produced")
                time.sleep(0.002)
        finally:
            monitor.stop()
        assert monitor.samples >= 2
        line = monitor.status_line(monitor.last_snapshot)
        assert "50/100 committed" in line
        assert "health ok" in line
        assert monitor.items_per_sec > 0

    def test_stop_is_idempotent(self):
        registry = MetricsRegistry.create(multiprocessing.get_context(), 2)
        monitor = LiveMonitor(
            registry, LiveConfig(interval=0.01), capacity=4, iterations=1
        )
        monitor.start()
        monitor.stop()
        monitor.stop()

    def test_watch_stream_receives_lines(self):
        import io

        stream = io.StringIO()
        registry = MetricsRegistry.create(multiprocessing.get_context(), 2)
        monitor = LiveMonitor(
            registry, LiveConfig(interval=0.01, watch=True),
            capacity=4, iterations=10, watch_stream=stream,
        )
        monitor.start()
        time.sleep(0.05)
        monitor.stop()
        assert "live:" in stream.getvalue()


# -- history store ------------------------------------------------------------------


def _metrics(commits=100, wall=2.0, conflicts=5, **overrides):
    metrics = EngineMetrics(
        workers=4, capacity=64, iterations=commits, batch_size=8,
        wall_seconds=wall, commits=commits, conflicts=conflicts,
    )
    for key, value in overrides.items():
        setattr(metrics, key, value)
    metrics.record_latency("task_b", 0.01)
    metrics.record_latency("task_b", 0.02)
    metrics.record_latency("commit_lag", 0.005)
    return metrics


class TestHistory:
    def test_record_shape_and_append_creates_parents(self, tmp_path):
        record = make_record(
            name="197.parser", metrics=_metrics(), seed=7, label="base",
        )
        assert record["schema"] == HISTORY_SCHEMA
        assert record["items_per_sec"] == pytest.approx(50.0)
        assert record["latency"]["task_b"]["p95"] > 0
        path = tmp_path / "deep" / "nested" / "history.jsonl"
        append_record(str(path), record)
        assert load_history(str(path)) == [json.loads(path.read_text())]

    def test_load_skips_corrupt_and_future_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        good = make_record(name="x", metrics=_metrics())
        path.write_text(
            json.dumps(good) + "\n"
            + "{torn-line\n"
            + json.dumps({"schema": HISTORY_SCHEMA + 1, "name": "future"})
            + "\n"
            + json.dumps([1, 2]) + "\n"
            + json.dumps(good) + "\n"
        )
        records = load_history(str(path))
        assert len(records) == 2
        assert all(record["name"] == "x" for record in records)

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == []

    def test_baseline_selection(self, tmp_path):
        records = [
            make_record(name="a", metrics=_metrics(), label="first"),
            make_record(name="b", metrics=_metrics()),
            make_record(name="a", metrics=_metrics()),
            make_record(name="a", metrics=_metrics()),
        ]
        latest = records[-1]
        # Auto: most recent earlier comparable run (same name/workers/batch).
        assert select_baseline(records, latest) is records[2]
        # By label.
        assert select_baseline(records, latest, "first") is records[0]
        # By index.
        assert select_baseline(records, latest, "1") is records[1]
        assert select_baseline(records, latest, "-2") is records[2]
        # Misses.
        assert select_baseline(records, latest, "nope") is None
        assert select_baseline(records, latest, "99") is None
        assert select_baseline([latest], latest) is None

    def test_diff_flags_regressions(self):
        base = make_record(name="w", metrics=_metrics(commits=100, wall=2.0))
        slow = make_record(name="w", metrics=_metrics(commits=100, wall=4.0))
        diff = diff_records(base, slow, tolerance=0.30)
        flagged = {row.metric for row in diff.regressions}
        assert "items_per_sec" in flagged
        assert not diff.ok
        report = format_history_diff(diff)
        assert "REGRESSION" in report
        assert "items_per_sec" in report

    def test_diff_within_tolerance_ok(self):
        base = make_record(name="w", metrics=_metrics(wall=2.0))
        near = make_record(name="w", metrics=_metrics(wall=2.2))
        diff = diff_records(base, near, tolerance=0.30)
        assert diff.ok
        assert "no gated regression" in format_history_diff(diff)

    def test_misspec_rate_gated_by_absolute_margin(self):
        base = make_record(name="w", metrics=_metrics(conflicts=0))
        stormy = make_record(name="w", metrics=_metrics(conflicts=30))
        diff = diff_records(base, stormy)
        assert any(
            row.metric == "misspec_rate" and row.regression
            for row in diff.rows
        )

    def test_missing_latency_series_is_not_a_regression(self):
        base = make_record(name="w", metrics=_metrics())
        bare = EngineMetrics(
            workers=4, capacity=64, iterations=10, batch_size=8,
            wall_seconds=1.0, commits=10,
        )
        current = make_record(name="w", metrics=bare)
        diff = diff_records(base, current)
        assert not any("task_b" in row.metric for row in diff.rows)

    def test_format_list(self):
        records = [make_record(name="197.parser", metrics=_metrics())]
        listing = format_history_list(records)
        assert "197.parser" in listing
        assert format_history_list([]) == "history: no records"


# -- empty-histogram guards (satellite) ---------------------------------------------


class TestEmptyHistogramGuards:
    def test_summary_without_retained_samples(self):
        histogram = LatencyHistogram(count=5, total=1.0, samples=[])
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(0.2)
        assert "p50" not in summary  # unknowable, not zero

    def test_format_line_without_retained_samples(self):
        histogram = LatencyHistogram(
            count=5, total=1.0, samples=[], max_value=0.9
        )
        line = histogram.format_line()
        assert "no retained samples" in line
        assert "p50 0" not in line

    def test_format_summary_skips_empty_series(self):
        metrics = EngineMetrics(workers=1, capacity=4, iterations=0)
        metrics.latency["task_b"] = LatencyHistogram()  # count == 0
        summary = metrics.format_summary()
        assert "latency task_b" not in summary

    def test_format_summary_renders_unretained_series(self):
        metrics = EngineMetrics(workers=1, capacity=4, iterations=5)
        metrics.latency["task_b"] = LatencyHistogram(
            count=5, total=1.0, samples=[], max_value=0.9
        )
        summary = metrics.format_summary()  # must not raise
        assert "no retained samples" in summary
