"""Tests for alias analysis, memory/register/control dependences, value ranges."""

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.analysis.callgraph import CallGraph, compute_side_effects
from repro.analysis.controldep import ControlDependence
from repro.analysis.loopcarried import DependenceKind, classify_loop_dependences
from repro.analysis.memdep import MemoryDependenceAnalysis
from repro.analysis.regdep import register_dependences
from repro.analysis.value_range import ValueRange, ValueRangeAnalysis
from repro.ir.builder import ProgramBuilder
from repro.ir.loops import find_loops
from repro.ir.types import IntType


class TestAliasAnalysis:
    def test_distinct_globals_do_not_alias(self):
        pb = ProgramBuilder()
        a = pb.global_variable("a")
        b = pb.global_variable("b")
        fb = pb.function("main")
        fb.block("entry")
        la = fb.load(a, [a], name="la")
        lb = fb.load(b, [b], name="lb")
        fb.ret()
        program = pb.finish()
        alias = AliasAnalysis(program)
        loads = [i for i in program.function("main").instructions() if i.opcode() == "load"]
        assert alias.alias(loads[0], loads[1]) == AliasResult.NO

    def test_same_global_must_alias(self, counter_program):
        alias = AliasAnalysis(counter_program)
        instructions = list(counter_program.function("main").instructions())
        load = next(i for i in instructions if i.opcode() == "load")
        store = next(i for i in instructions if i.opcode() == "store")
        assert alias.alias(load, store) == AliasResult.MUST

    def test_field_splitting_prevents_alias(self):
        """The gcc case study's bit-flag expansion (Section 4.2.1)."""
        pb = ProgramBuilder()
        public_flag = pb.global_variable("common", field="public_flag")
        static_flag = pb.global_variable("common", field="static_flag")
        fb = pb.function("main")
        fb.block("entry")
        fb.load(public_flag, [public_flag], name="p")
        fb.store(1, static_flag, [static_flag])
        fb.ret()
        program = pb.finish()
        alias = AliasAnalysis(program)
        instructions = list(program.function("main").instructions())
        load = next(i for i in instructions if i.opcode() == "load")
        store = next(i for i in instructions if i.opcode() == "store")
        assert alias.alias(load, store) == AliasResult.NO

    def test_allocation_sites_are_distinct(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        fb.block("entry")
        p = fb.alloc(name="p")
        q = fb.alloc(name="q")
        fb.store(1, p.result, [p.object])
        fb.store(2, q.result, [q.object])
        fb.ret()
        program = pb.finish()
        alias = AliasAnalysis(program)
        stores = [i for i in program.function("main").instructions() if i.opcode() == "store"]
        assert alias.alias(stores[0], stores[1]) == AliasResult.NO

    def test_points_to_through_copy(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        fb.block("entry")
        p = fb.alloc(name="p")
        q = fb.add(p.result, 0, name="q")  # pointer arithmetic copy
        fb.ret()
        program = pb.finish()
        alias = AliasAnalysis(program)
        assert p.object in alias.points_to(q)


class TestMemoryDependence:
    def test_loop_carried_raw_on_counter(self, counter_program, counter_loop):
        analysis = MemoryDependenceAnalysis(
            counter_program, counter_program.function("main"), counter_loop
        )
        kinds = {(d.kind, d.loop_carried) for d in analysis.dependences}
        assert ("raw", True) in kinds

    def test_commutative_calls_have_no_mutual_dependence(self):
        pb = ProgramBuilder()
        seed = pb.global_variable("seed")
        rng = pb.function("rng")
        rng.block("entry")
        s = rng.load(seed, [seed], name="s")
        rng.store(rng.mul(s, 16807), seed, [seed])
        rng.ret(s)
        rng.function.mark_commutative()
        fb = pb.function("main")
        fb.block("entry")
        fb.jump("loop")
        fb.block("loop")
        c1 = fb.call("rng", name="c1")
        c2 = fb.call("rng", name="c2")
        cond = fb.compare("lt", c2.result, 100, name="cond")
        fb.branch(cond, "loop", "exit")
        fb.block("exit")
        fb.ret()
        program = pb.finish()
        program.set_main("main")
        compute_side_effects(program)
        loop = find_loops(program.function("main")).outermost()
        analysis = MemoryDependenceAnalysis(program, program.function("main"), loop)
        call_deps = [
            d for d in analysis.dependences
            if d.source.opcode() == "call" and d.target.opcode() == "call"
        ]
        assert call_deps == []

    def test_without_commutative_calls_do_depend(self):
        pb = ProgramBuilder()
        seed = pb.global_variable("seed")
        rng = pb.function("rng")
        rng.block("entry")
        s = rng.load(seed, [seed], name="s")
        rng.store(rng.mul(s, 16807), seed, [seed])
        rng.ret(s)
        fb = pb.function("main")
        fb.block("entry")
        fb.jump("loop")
        fb.block("loop")
        fb.call("rng", name="c1")
        c2 = fb.call("rng", name="c2")
        cond = fb.compare("lt", c2.result, 100, name="cond")
        fb.branch(cond, "loop", "exit")
        fb.block("exit")
        fb.ret()
        program = pb.finish()
        program.set_main("main")
        compute_side_effects(program)
        loop = find_loops(program.function("main")).outermost()
        analysis = MemoryDependenceAnalysis(program, program.function("main"), loop)
        call_deps = [
            d for d in analysis.dependences
            if d.source.opcode() == "call" and d.target.opcode() == "call"
        ]
        assert call_deps


class TestRegisterDependence:
    def test_def_use_edges(self, counter_program):
        deps = register_dependences(counter_program.function("main"))
        pairs = {(d.source.opcode(), d.target.opcode()) for d in deps}
        assert ("load", "add") in pairs
        assert ("add", "store") in pairs

    def test_loop_carried_through_phi(self, pipeline_program, pipeline_loop):
        deps = register_dependences(pipeline_program.function("main"), pipeline_loop)
        carried = [d for d in deps if d.loop_carried]
        assert carried
        assert all(d.target.opcode() == "phi" for d in carried)


class TestControlDependence:
    def test_loop_body_control_dependent_on_latch_branch(self, counter_program):
        control = ControlDependence(counter_program.function("main"))
        assert "loop" in control.dependents_of("loop")

    def test_diamond_sides_depend_on_entry_branch(self):
        pb = ProgramBuilder()
        g = pb.global_variable("g")
        fb = pb.function("main")
        fb.block("entry")
        cond = fb.compare("lt", fb.load(g, [g], name="x"), 10, name="cond")
        fb.branch(cond, "then", "else")
        fb.block("then")
        fb.jump("join")
        fb.block("else")
        fb.jump("join")
        fb.block("join")
        fb.ret()
        fn = pb.finish().function("main")
        control = ControlDependence(fn)
        assert control.dependents_of("entry") == {"then", "else"}
        assert control.controlling_branches("join") == set()

    def test_ybranch_edges_marked_breakable(self):
        pb = ProgramBuilder()
        g = pb.global_variable("g")
        fb = pb.function("main")
        fb.block("entry")
        cond = fb.compare("lt", fb.load(g, [g], name="x"), 10, name="cond")
        fb.ybranch(cond, "then", "else", probability=0.001)
        fb.block("then")
        fb.jump("join")
        fb.block("else")
        fb.jump("join")
        fb.block("join")
        fb.ret()
        fn = pb.finish().function("main")
        control = ControlDependence(fn)
        edges = [e for e in control.edges() if e.branch_block == "entry"]
        assert edges and all(e.breakable for e in edges)


class TestValueRange:
    def test_constant_folding(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        fb.block("entry")
        x = fb.add(2, 3, name="x")
        y = fb.mul(x, 4, name="y")
        fb.ret(y)
        fn = pb.finish().function("main")
        vra = ValueRangeAnalysis(fn)
        assert vra.constant_value(y) == 20.0

    def test_statically_decided_branch(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        fb.block("entry")
        x = fb.add(2, 3, name="x")
        cond = fb.compare("lt", x, 100, name="cond")
        fb.branch(cond, "a", "b")
        fb.block("a")
        fb.ret(1)
        fb.block("b")
        fb.ret(0)
        fn = pb.finish().function("main")
        vra = ValueRangeAnalysis(fn)
        assert vra.branch_statically_decided(cond) is True

    def test_join_widens_to_interval(self):
        r = ValueRange.constant(1).join(ValueRange.constant(5))
        assert (r.low, r.high) == (1, 5)
        assert not r.is_constant

    def test_disjoint_ranges(self):
        assert ValueRange(0, 1).disjoint(ValueRange(2, 3))
        assert not ValueRange(0, 2).disjoint(ValueRange(2, 3))


class TestCallGraph:
    def test_sccs_detect_recursion(self):
        pb = ProgramBuilder()
        f = pb.function("f")
        f.block("entry")
        f.call("g")
        f.ret()
        g = pb.function("g")
        g.block("entry")
        g.call("f")
        g.ret()
        program = pb.finish()
        graph = CallGraph(program)
        assert graph.is_recursive("f")
        assert graph.is_recursive("g")
        assert {"f", "g"} in graph.sccs()

    def test_side_effect_summaries_propagate(self):
        pb = ProgramBuilder()
        table = pb.global_variable("table")
        leaf = pb.function("leaf")
        leaf.block("entry")
        leaf.store(1, table, [table])
        leaf.ret()
        top = pb.function("top")
        top.block("entry")
        call = top.call("leaf")
        top.ret()
        program = pb.finish()
        summaries = compute_side_effects(program)
        assert table in summaries["top"][1]  # writes propagate up
        assert table in call.writes

    def test_commutative_internal_state_masked(self):
        pb = ProgramBuilder()
        seed = pb.global_variable("seed")
        rng = pb.function("rng")
        rng.block("entry")
        s = rng.load(seed, [seed], name="s")
        rng.store(s, seed, [seed])
        rng.ret(s)
        rng.function.mark_commutative()
        program = pb.finish()
        summaries = compute_side_effects(program)
        reads, writes = summaries["rng"]
        assert seed not in reads and seed not in writes
