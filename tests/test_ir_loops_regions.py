"""Tests for loop discovery, region formation and inlining."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.inline import InliningError, inline_call, specialize_recursion
from repro.ir.loops import find_loops
from repro.ir.region import form_loop_region
from repro.ir.types import IntType


def build_nested_loop_program():
    pb = ProgramBuilder("nested")
    acc = pb.global_variable("acc")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("outer")
    fb.block("outer")
    fb.jump("inner")
    fb.block("inner")
    value = fb.load(acc, [acc], name="value")
    fb.store(fb.add(value, 1), acc, [acc])
    inner_done = fb.compare("lt", value, 10, name="inner_done")
    fb.branch(inner_done, "inner", "outer_latch")
    fb.block("outer_latch")
    outer_done = fb.compare("lt", value, 100, name="outer_done")
    fb.branch(outer_done, "outer", "exit")
    fb.block("exit")
    fb.ret()
    return pb.finish()


class TestLoopDiscovery:
    def test_single_loop(self, counter_program):
        nest = find_loops(counter_program.function("main"))
        assert len(nest) == 1
        loop = nest.outermost()
        assert loop.header.name == "loop"
        assert loop.blocks == {"loop"}

    def test_nested_loops(self):
        program = build_nested_loop_program()
        nest = find_loops(program.function("main"))
        assert len(nest) == 2
        outer = nest.loop_with_header("outer")
        inner = nest.loop_with_header("inner")
        assert inner.parent is outer
        assert inner in outer.children
        assert outer.depth == 0 and inner.depth == 1
        assert inner.blocks < outer.blocks

    def test_innermost_containing(self):
        program = build_nested_loop_program()
        nest = find_loops(program.function("main"))
        assert nest.innermost_containing("inner").header.name == "inner"
        assert nest.innermost_containing("outer_latch").header.name == "outer"
        assert nest.innermost_containing("entry") is None

    def test_exit_edges(self, counter_loop):
        exits = counter_loop.exit_edges()
        assert [(block.name, target) for block, target in exits] == [("loop", "exit")]

    def test_no_loops_in_straightline_code(self):
        pb = ProgramBuilder()
        fb = pb.function("f")
        fb.block("entry")
        fb.ret(0)
        nest = find_loops(pb.finish().function("f"))
        assert len(nest) == 0
        assert nest.outermost() is None


class TestRegionFormation:
    def build_caller_callee(self, commutative=False):
        pb = ProgramBuilder("rc")
        table = pb.global_variable("table")
        helper = pb.function("helper")
        helper.block("entry")
        value = helper.load(table, [table], name="value", cost=3)
        helper.ret(value)
        if commutative:
            helper.function.mark_commutative(group="table")
        fb = pb.function("main")
        fb.block("entry")
        fb.jump("loop")
        fb.block("loop")
        result = fb.call("helper", name="result")
        cond = fb.compare("lt", result.result, 10, name="cond")
        fb.branch(cond, "loop", "exit")
        fb.block("exit")
        fb.ret()
        program = pb.finish()
        program.set_main("main")
        loop = find_loops(program.function("main")).outermost()
        return program, loop

    def test_region_pulls_in_callee(self):
        program, loop = self.build_caller_callee()
        region = form_loop_region(program, loop)
        assert region.functions == {"main", "helper"}
        assert not region.opaque_call_sites()

    def test_commutative_callee_stays_opaque(self):
        program, loop = self.build_caller_callee(commutative=True)
        region = form_loop_region(program, loop)
        assert region.functions == {"main"}
        assert len(region.opaque_call_sites()) == 1

    def test_budget_limits_region(self):
        program, loop = self.build_caller_callee()
        region = form_loop_region(program, loop, max_functions=1)
        assert region.functions == {"main"}

    def test_region_cost_sums_instruction_costs(self):
        program, loop = self.build_caller_callee()
        region = form_loop_region(program, loop)
        assert region.total_cost() >= 3  # the callee's load is inside


class TestInlining:
    def build_inline_candidate(self):
        pb = ProgramBuilder("inl")
        double = pb.function("double", [IntType(64)], ["x"])
        double.block("entry")
        doubled = double.mul(double.param(0), 2, name="doubled")
        double.ret(doubled)
        fb = pb.function("main")
        fb.block("entry")
        call = fb.call("double", [21], name="answer")
        fb.ret(call.result)
        program = pb.finish()
        program.set_main("main")
        return program, call

    def test_inline_replaces_call(self):
        program, call = self.build_inline_candidate()
        main = program.function("main")
        inline_call(main, call)
        main.verify()
        opcodes = [i.opcode() for i in main.instructions()]
        assert "call" not in opcodes
        assert "mul" in opcodes

    def test_inline_forwards_return_value(self):
        program, call = self.build_inline_candidate()
        main = program.function("main")
        inline_call(main, call)
        ret = next(i for i in main.instructions() if i.opcode() == "return")
        assert ret.value is not None
        assert ret.value.defining_instruction.opcode() == "mul"

    def test_inlining_commutative_refused(self):
        program, call = self.build_inline_candidate()
        program.function("double").mark_commutative()
        with pytest.raises(InliningError, match="Commutative"):
            inline_call(program.function("main"), call)

    def test_specialize_recursion_unrolls_one_level(self):
        pb = ProgramBuilder("rec")
        search = pb.function("search", [IntType(64)], ["depth"])
        search.block("entry")
        is_leaf = search.compare("le", search.param(0), 0, name="is_leaf")
        search.branch(is_leaf, "leaf", "recurse")
        search.block("leaf")
        search.ret(1)
        search.block("recurse")
        shallower = search.sub(search.param(0), 1, name="shallower")
        inner = search.call("search", [shallower], name="inner")
        search.ret(inner.result)
        program = pb.finish()

        top = specialize_recursion(program.function("search"), depth=1)
        assert top.name == "search@1"
        callees = [c.callee for c in top.call_sites()]
        assert callees == ["search"]
        program.verify()
