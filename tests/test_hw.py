"""Tests for the hardware model: queues, versioned memory, event kernel."""

import pytest

from repro.hw.events import EventKernel
from repro.hw.machine import MachineConfig
from repro.hw.queues import (
    BoundedQueue,
    QueueEmptyError,
    QueueFullError,
    TimedQueueModel,
)
from repro.hw.versioned_memory import ConflictError, EpochState, VersionedMemory


class TestMachineConfig:
    def test_defaults_match_paper(self):
        machine = MachineConfig()
        assert machine.queue_count == 256
        assert machine.queue_capacity == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(cores=0)
        with pytest.raises(ValueError):
            MachineConfig(queue_capacity=0)

    def test_with_cores_preserves_other_fields(self):
        machine = MachineConfig(communication_latency=3)
        resized = machine.with_cores(8)
        assert resized.cores == 8
        assert resized.communication_latency == 3


class TestBoundedQueue:
    def test_fifo_order(self):
        queue = BoundedQueue(capacity=4)
        for i in range(4):
            queue.produce(i)
        assert [queue.consume() for _ in range(4)] == [0, 1, 2, 3]

    def test_full_raises(self):
        queue = BoundedQueue(capacity=2)
        queue.produce(1)
        queue.produce(2)
        with pytest.raises(QueueFullError):
            queue.produce(3)
        assert queue.full_rejections == 1

    def test_empty_raises(self):
        queue = BoundedQueue(capacity=2)
        with pytest.raises(QueueEmptyError):
            queue.consume()

    def test_try_variants(self):
        queue = BoundedQueue(capacity=1)
        assert queue.try_produce("a")
        assert not queue.try_produce("b")
        assert queue.try_consume() == "a"
        assert queue.try_consume() is None

    def test_max_occupancy_tracked(self):
        queue = BoundedQueue(capacity=8)
        for i in range(5):
            queue.produce(i)
        queue.consume()
        assert queue.max_occupancy == 5


class TestTimedQueueModel:
    def test_produce_unblocked_when_space(self):
        queue = TimedQueueModel(capacity=2)
        assert queue.record_produce(10) == 10

    def test_produce_blocked_by_full_queue(self):
        queue = TimedQueueModel(capacity=2)
        queue.record_produce(0)
        queue.record_produce(1)
        queue.record_consume(5)  # first token consumed at t=5
        # Third produce must wait for the first consume.
        assert queue.record_produce(2) == 5
        assert queue.stall_time == 3

    def test_consume_waits_for_produce(self):
        queue = TimedQueueModel(capacity=2)
        queue.record_produce(10)
        assert queue.record_consume(3) == 10

    def test_deadlock_detection_on_overfull(self):
        queue = TimedQueueModel(capacity=1)
        queue.record_produce(0)
        with pytest.raises(QueueFullError):
            queue.record_produce(1)

    def test_consume_before_produce_rejected(self):
        queue = TimedQueueModel(capacity=1)
        with pytest.raises(QueueEmptyError):
            queue.record_consume(0)


class TestVersionedMemory:
    def test_privatization_isolates_epochs(self):
        memory = VersionedMemory()
        e0 = memory.begin_epoch()
        e1 = memory.begin_epoch()
        memory.write(e1, "x", None, 42)
        # e0 is OLDER than e1: the younger epoch's buffered write must not be
        # visible backwards.
        assert memory.read(e0, "x") is None

    def test_eager_forwarding_to_younger(self):
        memory = VersionedMemory()
        e0 = memory.begin_epoch()
        e1 = memory.begin_epoch()
        memory.write(e0, "x", None, 7)
        assert memory.read(e1, "x") == 7

    def test_forwarding_disabled(self):
        memory = VersionedMemory(eager_forwarding=False)
        e0 = memory.begin_epoch()
        e1 = memory.begin_epoch()
        memory.write(e0, "x", None, 7)
        assert memory.read(e1, "x") is None

    def test_in_order_commit_enforced(self):
        memory = VersionedMemory()
        memory.begin_epoch()
        e1 = memory.begin_epoch()
        with pytest.raises(ConflictError):
            memory.commit(e1)

    def test_stale_read_squashed_on_commit(self):
        memory = VersionedMemory(eager_forwarding=False)
        e0 = memory.begin_epoch()
        e1 = memory.begin_epoch()
        assert memory.read(e1, "x") is None  # speculative read, will be stale
        memory.write(e0, "x", None, 99)
        squashed = memory.commit(e0)
        assert squashed == [e1]
        assert e1.state is EpochState.SQUASHED
        assert memory.conflicts_detected == 1

    def test_forwarded_read_survives_commit(self):
        memory = VersionedMemory()
        e0 = memory.begin_epoch()
        e1 = memory.begin_epoch()
        memory.write(e0, "x", None, 99)
        assert memory.read(e1, "x") == 99  # eager forwarding: correct value
        squashed = memory.commit(e0)
        assert squashed == []

    def test_silent_store_triggers_no_conflict(self):
        memory = VersionedMemory()
        e_init = memory.begin_epoch()
        memory.write(e_init, "x", None, 5)
        memory.commit(e_init)
        e0 = memory.begin_epoch()
        e1 = memory.begin_epoch()
        assert memory.read(e1, "x") == 5
        memory.write(e0, "x", None, 5)  # silent: writes back the same value
        squashed = memory.commit(e0)
        assert squashed == []
        assert memory.silent_stores_suppressed >= 1

    def test_reissue_takes_commit_slot(self):
        memory = VersionedMemory(eager_forwarding=False)
        e0 = memory.begin_epoch()
        e1 = memory.begin_epoch()
        memory.read(e1, "x")
        memory.write(e0, "x", None, 1)
        (squashed,) = memory.commit(e0)
        fresh = memory.reissue(squashed)
        assert memory.read(fresh, "x") == 1
        memory.commit(fresh)
        assert memory.committed_value("x") == 1

    def test_stale_handle_rejected(self):
        memory = VersionedMemory(eager_forwarding=False)
        e0 = memory.begin_epoch()
        e1 = memory.begin_epoch()
        memory.read(e1, "x")
        memory.write(e0, "x", None, 1)
        (squashed,) = memory.commit(e0)
        memory.reissue(squashed)
        with pytest.raises(ConflictError, match="stale"):
            memory.read(squashed, "y")

    def test_architectural_state_only_after_commit(self):
        memory = VersionedMemory()
        e0 = memory.begin_epoch()
        memory.write(e0, "x", None, 1)
        assert memory.committed_value("x") is None
        memory.commit(e0)
        assert memory.committed_value("x") == 1


class TestEventKernel:
    def test_events_fire_in_time_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(5, lambda: fired.append("b"))
        kernel.schedule(1, lambda: fired.append("a"))
        kernel.schedule(9, lambda: fired.append("c"))
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_tie_break_by_priority_then_fifo(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1, lambda: fired.append("low"), priority=5)
        kernel.schedule(1, lambda: fired.append("high"), priority=0)
        kernel.schedule(1, lambda: fired.append("low2"), priority=5)
        kernel.run()
        assert fired == ["high", "low", "low2"]

    def test_scheduling_in_past_rejected(self):
        kernel = EventKernel()
        kernel.schedule(5, lambda: kernel.schedule(1, lambda: None))
        with pytest.raises(ValueError):
            kernel.run()

    def test_cascading_events(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1, lambda: kernel.schedule_after(2, lambda: fired.append(kernel.now)))
        kernel.run()
        assert fired == [3]

    def test_run_until(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1, lambda: fired.append(1))
        kernel.schedule(10, lambda: fired.append(10))
        kernel.run(until=5)
        assert fired == [1]
        assert kernel.pending == 1
