"""Tests for dominators, post-dominators, dataflow, liveness, reaching."""

from repro.analysis.dataflow import DataflowProblem, solve_dataflow
from repro.analysis.dominators import DominatorTree, PostDominatorTree
from repro.analysis.liveness import Liveness
from repro.analysis.reaching import ReachingDefinitions
from repro.ir.builder import ProgramBuilder


def build_diamond():
    """entry -> (then | else) -> join -> exit."""
    pb = ProgramBuilder("diamond")
    g = pb.global_variable("g")
    fb = pb.function("main")
    fb.block("entry")
    cond = fb.compare("lt", fb.load(g, [g], name="x"), 10, name="cond")
    fb.branch(cond, "then", "else")
    fb.block("then")
    fb.store(1, g, [g])
    fb.jump("join")
    fb.block("else")
    fb.store(2, g, [g])
    fb.jump("join")
    fb.block("join")
    fb.jump("exit")
    fb.block("exit")
    fb.ret()
    return pb.finish().function("main")


class TestDominators:
    def test_entry_dominates_everything(self):
        fn = build_diamond()
        dom = DominatorTree(fn)
        for block in fn.blocks:
            assert dom.dominates("entry", block.name)

    def test_branches_do_not_dominate_join(self):
        dom = DominatorTree(build_diamond())
        assert not dom.dominates("then", "join")
        assert not dom.dominates("else", "join")

    def test_immediate_dominator_of_join_is_entry(self):
        dom = DominatorTree(build_diamond())
        assert dom.immediate_dominator("join") == "entry"

    def test_dominator_chain_ends_at_entry(self):
        dom = DominatorTree(build_diamond())
        assert dom.dominator_chain("exit")[-1] == "entry"

    def test_loop_header_dominates_latch(self, counter_program):
        dom = DominatorTree(counter_program.function("main"))
        assert dom.dominates("loop", "loop")
        assert dom.dominates("entry", "exit")


class TestPostDominators:
    def test_exit_post_dominates_everything(self):
        fn = build_diamond()
        post = PostDominatorTree(fn)
        for block in fn.blocks:
            assert post.post_dominates("exit", block.name)

    def test_join_post_dominates_branches(self):
        post = PostDominatorTree(build_diamond())
        assert post.post_dominates("join", "then")
        assert post.post_dominates("join", "else")
        assert post.post_dominates("join", "entry")

    def test_branch_sides_do_not_post_dominate_entry(self):
        post = PostDominatorTree(build_diamond())
        assert not post.post_dominates("then", "entry")


class TestDataflowEngine:
    def test_forward_union_reaches_fixed_point(self):
        fn = build_diamond()

        def transfer(block, fact):
            return fact | {block.name}

        problem = DataflowProblem("forward", "union", transfer, frozenset())
        facts = solve_dataflow(fn, problem)
        assert "entry" in facts["exit"]["in"]
        assert {"then", "else"} <= facts["join"]["in"]

    def test_backward_union(self):
        fn = build_diamond()

        def transfer(block, fact):
            return fact | {block.name}

        problem = DataflowProblem("backward", "union", transfer, frozenset())
        facts = solve_dataflow(fn, problem)
        assert "exit" in facts["entry"]["out"]

    def test_intersection_meet(self):
        fn = build_diamond()

        def transfer(block, fact):
            return fact | {block.name}

        problem = DataflowProblem(
            "forward", "intersection", transfer, frozenset({"seed"})
        )
        facts = solve_dataflow(fn, problem)
        # join's in-set keeps only what BOTH sides provide.
        assert "then" not in facts["join"]["in"]
        assert "entry" in facts["join"]["in"]


class TestLivenessAndReaching:
    def test_register_defined_and_used_in_loop_not_live_in(self, counter_program):
        liveness = Liveness(counter_program.function("main"))
        assert liveness.live_in("loop") == frozenset()

    def test_value_live_across_blocks(self):
        pb = ProgramBuilder()
        g = pb.global_variable("g")
        fb = pb.function("main")
        fb.block("entry")
        x = fb.load(g, [g], name="x")
        fb.jump("next")
        fb.block("next")
        fb.store(x, g, [g])
        fb.ret()
        fn = pb.finish().function("main")
        liveness = Liveness(fn)
        assert x in liveness.live_in("next")
        assert x in liveness.live_out("entry")

    def test_reaching_definitions_flow_through_diamond(self):
        fn = build_diamond()
        reaching = ReachingDefinitions(fn)
        defs_at_join = reaching.reaching_in("join")
        stores = {
            reaching.defining_instruction(d).operands[0].value for d in defs_at_join
        }
        assert stores == {1, 2}

    def test_store_kills_previous_definition(self, counter_program):
        fn = counter_program.function("main")
        reaching = ReachingDefinitions(fn)
        # Only the single loop store defines @counter at loop exit.
        defs_at_exit = reaching.reaching_in("exit")
        assert len(defs_at_exit) == 1
