"""Tests for the Y-branch and Commutative annotations and their registry."""

import pytest

from repro.annotations.commutative import CommutativeFunction, commutative
from repro.annotations.registry import AnnotationRegistry, global_registry
from repro.annotations.ybranch import YBranchPolicy, YBranchSite, ybranch
from repro.profiling.context import activate
from repro.profiling.tracer import Tracer


class TestYBranchSite:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            YBranchSite("bad", 0.0)
        with pytest.raises(ValueError):
            YBranchSite("bad", 1.5)

    def test_sequential_policy_honors_condition(self):
        site = YBranchSite("s", 0.25)
        assert site.decide(True) is True
        assert site.decide(False) is False

    def test_interval_policy_fires_on_schedule(self):
        site = YBranchSite("s", 0.25)  # interval 4
        site.use_interval_policy()
        decisions = [site.decide(False) for _ in range(8)]
        assert decisions == [False, False, False, True] * 2

    def test_interval_policy_still_honors_true_condition(self):
        """Taking the true path is always legal — including when the
        condition itself demands it off-schedule."""
        site = YBranchSite("s", 0.1)
        site.use_interval_policy()
        assert site.decide(True) is True

    def test_interval_computation(self):
        assert YBranchSite("s", 0.00001).interval == 100000  # Figure 1
        assert YBranchSite("s", 1.0).interval == 1

    def test_reset_restarts_schedule(self):
        site = YBranchSite("s", 0.5)
        site.use_interval_policy()
        first = [site.decide(False) for _ in range(4)]
        site.reset()
        second = [site.decide(False) for _ in range(4)]
        assert first == second

    def test_decisions_recorded_in_trace(self):
        site = YBranchSite("traced", 0.5)
        tracer = Tracer()
        with activate(tracer):
            with tracer.task("B", 0):
                tracer.work(1)
                site.decide(True)
        trace = tracer.finish()
        assert trace.branches[0].site == "traced"
        assert trace.branches[0].is_ybranch


class TestCommutativeDecorator:
    def test_passthrough_without_tracer(self):
        @commutative(group="g1")
        def add_one(x):
            return x + 1

        assert add_one(41) == 42
        assert add_one.call_count == 1
        assert isinstance(add_one, CommutativeFunction)

    def test_group_defaults_to_function_name(self):
        @commutative()
        def my_rng():
            return 4

        assert my_rng.group == "my_rng"

    def test_accesses_tagged_under_tracer(self):
        @commutative(group="tagged")
        def touch():
            from repro.profiling.context import current_tracer

            current_tracer().store("state", 0, value=1)

        tracer = Tracer()
        with activate(tracer):
            with tracer.task("B", 0):
                tracer.work(1)
                touch()
        trace = tracer.finish()
        assert trace.accesses[0].commutative_group == "tagged"

    def test_set_rollback(self):
        @commutative(group="alloc2")
        def grab():
            return 1

        @grab.set_rollback
        def release():
            pass

        assert grab.rollback is release

    def test_method_decoration_binds(self):
        class Pool:
            def __init__(self):
                self.taken = 0

            @commutative(group="pool")
            def take(self):
                self.taken += 1
                return self.taken

        pool = Pool()
        assert pool.take() == 1
        assert pool.take() == 2


class TestRegistry:
    def test_rollback_validation(self):
        registry = AnnotationRegistry()

        @commutative(group="no_rollback")
        def orphan():
            pass

        registry.register_commutative(orphan)
        assert registry.validate_rollbacks() == ["no_rollback"]

        orphan.rollback = lambda: None
        assert registry.validate_rollbacks() == []

    def test_engage_and_restore_policies(self):
        registry = AnnotationRegistry()
        site = YBranchSite("swing", 0.5)
        registry.register_ybranch(site)
        registry.engage_parallel_policies()
        assert site.policy is YBranchPolicy.INTERVAL
        registry.restore_sequential_policies()
        assert site.policy is YBranchPolicy.SEQUENTIAL

    def test_global_registry_collects_factory_sites(self):
        site = ybranch("registered_site_test", 0.5)
        assert global_registry().ybranch("registered_site_test") is site

    def test_group_members(self):
        registry = AnnotationRegistry()

        @commutative(group="shared")
        def f():
            pass

        @commutative(group="shared")
        def g():
            pass

        registry.register_commutative(f)
        registry.register_commutative(g)
        assert len(registry.group_members("shared")) == 2
        assert "shared" in registry.commutative_groups()
