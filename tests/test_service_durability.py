"""Tests for the durable job plane (repro.service.durability + wiring).

Three layers:

- unit: the write-ahead journal's crash discipline (torn-tail truncation,
  corrupt-interior skip, seq-gap audit, compaction), the artifact store,
  and journal-replay folding;
- in-process service: restart recovery (terminal reload, queued re-admit,
  idempotent resubmit across restart), bounded retry with checkpoint
  resume, poison-job dead-lettering, deadlines, eager quota release on
  cancel, and the rate-derived ``Retry-After``;
- subprocess: SIGKILL the real server mid-job, restart on the same
  ``--state-dir``, and assert the job resumes from its checkpoint and
  finishes bit-identical to a sequential run.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.exec import RobustnessPolicy
from repro.exec.engine import run_sequential
from repro.resilience import server_kill_plan
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    ArtifactStore,
    JobJournal,
    PipelineService,
    ServiceConfig,
    fold_records,
    retry_delay,
)
from repro.service.durability import JournalError
from repro.service.jobs import JobState, TERMINAL_STATES, build_spec

FAST_POLICY = RobustnessPolicy(
    task_timeout=5.0, stall_timeout=10.0, poll_interval=0.01
)


def wait_terminal(jobs, timeout=90.0):
    jobs = jobs if isinstance(jobs, list) else [jobs]
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(j.state in TERMINAL_STATES for j in jobs):
            return
        time.sleep(0.05)
    states = {j.id: j.state.value for j in jobs}
    raise AssertionError(f"jobs never finished: {states}")


def durable_service(state_dir, **overrides):
    kwargs = dict(
        pool_workers=2, slots=2, capacity=8, batch_size=4,
        policy=FAST_POLICY, state_dir=str(state_dir),
        checkpoint_interval=4,
    )
    kwargs.update(overrides)
    return PipelineService(ServiceConfig(**kwargs)).start(serve_http=False)


class TestJobJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal, records = JobJournal.open(path)
        assert records == []
        journal.append("submitted", "j1", {"tenant": "t"}, fsync=True)
        journal.append("queued", "j1")
        journal.append("completed", "j1", fsync=True)
        journal.close()
        journal2, records = JobJournal.open(path)
        assert [(r["seq"], r["event"]) for r in records] == [
            (0, "submitted"), (1, "queued"), (2, "completed"),
        ]
        assert records[0]["data"] == {"tenant": "t"}
        assert journal2.stats.records == 3
        assert journal2.stats.torn_tail == 0
        # appends continue the sequence, never reuse it
        assert journal2.append("submitted", "j2") == 3
        journal2.close()

    def test_torn_tail_truncated_in_place(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal, _ = JobJournal.open(path)
        journal.append("submitted", "j1")
        journal.append("queued", "j1")
        journal.close()
        intact_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b'{"seq":2,"event":"lea')  # crash mid-record
        journal2, records = JobJournal.open(path)
        assert len(records) == 2
        assert journal2.stats.torn_tail == 1
        # truncated *in place*: the next append starts on a clean line
        assert os.path.getsize(path) == intact_size
        journal2.append("leased", "j1")
        journal2.close()
        _, records = JobJournal.open(path)
        assert [r["event"] for r in records] == [
            "submitted", "queued", "leased",
        ]

    def test_corrupt_interior_line_skipped_and_gap_counted(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal, _ = JobJournal.open(path)
        journal.append("submitted", "j1")
        journal.append("queued", "j1")
        journal.append("completed", "j1")
        journal.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        lines[1] = b"#### not json ####\n"
        with open(path, "wb") as handle:
            handle.writelines(lines)
        journal2, records = JobJournal.open(path)
        assert [r["event"] for r in records] == ["submitted", "completed"]
        assert journal2.stats.corrupt_records == 1
        assert journal2.stats.seq_gaps == 1
        journal2.close()

    def test_unknown_event_rejected(self, tmp_path):
        journal, _ = JobJournal.open(str(tmp_path / "j.jsonl"))
        with pytest.raises(JournalError):
            journal.append("exploded", "j1")
        journal.close()
        with pytest.raises(JournalError):
            journal.append("submitted", "j1")

    def test_compaction_preserves_replay_state(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal, _ = JobJournal.open(path)
        for _ in range(3):
            journal.append("submitted", "j1", {"tenant": "t"})
            journal.append("queued", "j1")
        journal.compact([
            ("submitted", "j1", {"tenant": "t"}),
            ("completed", "j1", {}),
        ])
        journal.append("submitted", "j2", {"tenant": "t"})
        journal.close()
        journal2, records = JobJournal.open(path)
        folded = fold_records(records)
        assert [(j.job_id, j.last_event) for j in folded] == [
            ("j1", "completed"), ("j2", "submitted"),
        ]
        assert journal2.stats.seq_gaps == 0
        journal2.close()


class TestArtifactStore:
    def test_result_roundtrip(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        output = {"sum": 123, "items": [1, 2, 3]}
        store.put_result("j1", output, {"committed": 3})
        assert store.has_result("j1")
        assert store.load_output("j1") == output
        assert store.load_metrics("j1") == {"committed": 3}
        assert not store.has_result("j2")
        assert store.load_metrics("j2") is None

    def test_checkpoint_lifecycle(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        path = store.checkpoint_path("j1")
        assert not store.has_checkpoint("j1")
        with open(path, "wb") as handle:
            handle.write(b"checkpoint")
        assert store.has_checkpoint("j1")
        store.discard_checkpoint("j1")
        assert not store.has_checkpoint("j1")
        store.discard_checkpoint("j1")  # idempotent

    def test_path_traversal_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        for bad in ("", "../escape", "a/b", ".hidden"):
            with pytest.raises(ValueError):
                store.checkpoint_path(bad)

    def test_stats_counts_jobs_and_bytes(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "artifacts"))
        store.put_result("j1", {"x": 1}, {})
        store.put_result("j2", {"x": 2}, {})
        stats = store.stats()
        assert stats["jobs"] == 2 and stats["bytes"] > 0


class TestFoldRecords:
    def test_last_event_wins_in_submission_order(self):
        records = [
            {"seq": 0, "event": "submitted", "job": "a", "data": {"t": 1}},
            {"seq": 1, "event": "submitted", "job": "b", "data": {"t": 2}},
            {"seq": 2, "event": "leased", "job": "b", "data": {"attempt": 1}},
            {"seq": 3, "event": "queued", "job": "a"},
            {"seq": 4, "event": "completed", "job": "b"},
        ]
        folded = fold_records(records)
        assert [j.job_id for j in folded] == ["a", "b"]
        a, b = folded
        assert a.queued and not a.terminal
        assert b.terminal and b.attempts == 1
        assert a.payload == {"t": 1}

    def test_orphaned_records_dropped(self):
        folded = fold_records([
            {"seq": 0, "event": "queued", "job": "ghost"},
            {"seq": 1, "event": "submitted", "job": "real", "data": {}},
        ])
        assert [j.job_id for j in folded] == ["real"]

    def test_interrupted_detection(self):
        folded = fold_records([
            {"seq": 0, "event": "submitted", "job": "a", "data": {}},
            {"seq": 1, "event": "leased", "job": "a",
             "data": {"attempt": 1}},
        ])
        assert folded[0].interrupted


class TestRetryDelay:
    def test_bounded_exponential_with_deterministic_jitter(self):
        d1 = retry_delay("j1", 1, 0.2)
        d2 = retry_delay("j1", 2, 0.2)
        d3 = retry_delay("j1", 1, 0.2)
        assert d1 == d3  # same job + attempt -> same jitter
        assert d2 > d1  # exponential growth
        assert retry_delay("j1", 30, 0.2) <= 30.0 * 1.5  # capped
        assert retry_delay("j2", 1, 0.2) != d1  # jitter decorrelates jobs


class TestRetryAfterFromRate:
    """Satellite: 429 Retry-After derived from the observed dispatch rate."""

    def controller(self):
        return AdmissionController(AdmissionConfig(max_queued=4))

    def test_rate_turns_backlog_into_seconds(self):
        decision = self.controller().admit(
            depth=4, tenant_queued=0, tenant_running=0, dispatch_rate=2.0
        )
        assert decision.status == 429
        assert decision.retry_after == pytest.approx(2.0)  # 4 jobs / 2 per s

    def test_rate_estimate_clamped(self):
        fast = self.controller().admit(
            depth=4, tenant_queued=0, tenant_running=0, dispatch_rate=100.0
        )
        assert fast.retry_after == 1.0
        slow = self.controller().admit(
            depth=4, tenant_queued=0, tenant_running=0, dispatch_rate=0.01
        )
        assert slow.retry_after == 60.0

    def test_no_rate_falls_back_to_backlog_heuristic(self):
        decision = self.controller().admit(
            depth=4, tenant_queued=0, tenant_running=0, dispatch_rate=None
        )
        assert decision.retry_after == 4.0


class TestDurableRestart:
    def test_terminal_jobs_and_idempotency_survive_restart(self, tmp_path):
        svc = durable_service(tmp_path / "state")
        try:
            job, decision = svc.submit(
                "acme", "synthetic", {"iterations": 16, "spin": 100},
                idempotency_key="req-1",
            )
            assert decision.status == 202
            dup, dedup = svc.submit(
                "acme", "synthetic", {"iterations": 16, "spin": 100},
                idempotency_key="req-1",
            )
            assert dedup.deduplicated and dup is job
            wait_terminal(job)
            assert job.state is JobState.DONE
            expected = svc.job_output(job)
        finally:
            svc.drain_and_stop()

        svc2 = durable_service(tmp_path / "state")
        try:
            reloaded = svc2.get_job(job.id)
            assert reloaded is not None
            assert reloaded.state is JobState.DONE
            assert svc2.job_output(reloaded) == expected
            assert svc2.recovery.terminal == 1
            assert svc2.recovery.errors == 0
            # the idempotency key still points at the finished job
            dup, dedup = svc2.submit(
                "acme", "synthetic", {"iterations": 16, "spin": 100},
                idempotency_key="req-1",
            )
            assert dedup.deduplicated and dup.id == job.id
        finally:
            svc2.drain_and_stop()

    def test_bottleneck_verdict_survives_restart(self, tmp_path):
        """A traced job's critical-path analysis is persisted beside its
        trace artifacts and stays retrievable after a restart."""
        from repro.obs.analyze import validate_bottleneck

        svc = durable_service(tmp_path / "state", trace_jobs=True)
        try:
            job, _ = svc.submit(
                "acme", "synthetic", {"iterations": 24, "spin": 200}
            )
            wait_terminal(job)
            assert job.state is JobState.DONE
            # The trace (and the analysis riding on it) merges in the
            # runner thread just after the terminal transition.
            deadline = time.monotonic() + 10.0
            while job.trace is not None and time.monotonic() < deadline:
                time.sleep(0.02)
            original = svc.job_bottleneck_json(job)
            assert original is not None
            assert validate_bottleneck(original) == []
        finally:
            svc.drain_and_stop()

        svc2 = durable_service(tmp_path / "state", trace_jobs=True)
        try:
            reloaded = svc2.get_job(job.id)
            assert reloaded is not None
            # Nothing in memory for a recovered job: this exercises the
            # artifact-store fallback.
            assert reloaded.bottleneck_data is None
            recovered = svc2.job_bottleneck_json(reloaded)
            assert recovered is not None
            assert validate_bottleneck(recovered) == []
            assert recovered["top"] == original["top"]
            assert recovered["iterations"] == 24
        finally:
            svc2.drain_and_stop()

    def test_queued_jobs_requeued_in_order_after_restart(self, tmp_path):
        svc = durable_service(tmp_path / "state", slots=1)
        try:
            running, _ = svc.submit(
                "acme", "synthetic", {"iterations": 64, "spin": 2000}
            )
            # these two never dispatch: one slot, and we drain right away
            q1, _ = svc.submit("acme", "synthetic", {"iterations": 8})
            q2, _ = svc.submit("acme", "synthetic", {"iterations": 8})
            svc.request_drain()  # durable drain keeps queued jobs
            wait_terminal(running)
        finally:
            svc.drain_and_stop()
        assert q1.state is JobState.QUEUED
        assert q2.state is JobState.QUEUED

        svc2 = durable_service(tmp_path / "state", slots=1)
        try:
            assert svc2.recovery.requeued == 2
            r1, r2 = svc2.get_job(q1.id), svc2.get_job(q2.id)
            assert r1.recovered and r2.recovered
            wait_terminal([r1, r2])
            assert r1.state is JobState.DONE and r2.state is JobState.DONE
            # original submission order preserved
            assert r1.started_unix <= r2.started_unix
            tenant = svc2.tenants.get("acme")
            assert tenant.recovered == 2
        finally:
            svc2.drain_and_stop()


class TestRetryDeadlineDeadLetter:
    def test_transient_retry_resumes_and_poison_dead_letters(self, tmp_path):
        svc = durable_service(tmp_path / "state")
        try:
            ref, _ = svc.submit("acme", "synthetic", {"iterations": 48})
            transient, _ = svc.submit("acme", "synthetic", {
                "iterations": 48, "fail_at": 20, "fail_attempts": 1,
                "retry": {"max_attempts": 3, "backoff_base": 0.05},
            })
            poison, _ = svc.submit("evil", "synthetic", {
                "iterations": 48, "fail_at": 5,
                "retry": {"max_attempts": 3, "backoff_base": 0.05},
            })
            wait_terminal([ref, transient, poison])

            assert ref.state is JobState.DONE
            # transient: failed once, resumed from the checkpointed prefix
            assert transient.state is JobState.DONE
            assert transient.attempts == 2
            assert transient.resumed_from > 0
            assert svc.job_output(transient) == svc.job_output(ref)
            # poison: bounded attempts, then dead-lettered (not retried
            # forever, not reported as a plain failure)
            assert poison.state is JobState.DEAD_LETTER
            assert poison.attempts == 3
            assert svc.tenants.get("evil").dead_letter == 1
            assert svc.tenants.get("acme").retries == 1
        finally:
            svc.drain_and_stop()

    def test_deadline_cancels_running_job(self, tmp_path):
        svc = durable_service(tmp_path / "state")
        try:
            job, _ = svc.submit("slow", "synthetic", {
                "iterations": 20000, "spin": 50000, "deadline_s": 1.0,
            })
            wait_terminal(job, timeout=30.0)
            assert job.state is JobState.CANCELLED
            assert job.deadline_fired
            assert svc.tenants.get("slow").deadline_cancelled == 1
        finally:
            svc.drain_and_stop()

    def test_default_max_attempts_config_applies(self, tmp_path):
        svc = durable_service(
            tmp_path / "state", default_max_attempts=2
        )
        try:
            job, _ = svc.submit("acme", "synthetic", {
                "iterations": 32, "fail_at": 4, "fail_attempts": 1,
            })
            wait_terminal(job)
            assert job.state is JobState.DONE
            assert job.attempts == 2
        finally:
            svc.drain_and_stop()


class TestEagerQuotaRelease:
    """Satellite: cancelling a queued job frees the tenant's queued quota
    immediately — the next submit must not 429 against a ghost entry."""

    def test_cancel_then_resubmit_within_quota(self, tmp_path):
        svc = durable_service(
            tmp_path / "state", slots=1, tenant_queued_quota=1,
        )
        try:
            running, _ = svc.submit(
                "acme", "synthetic", {"iterations": 64, "spin": 2000}
            )
            deadline = time.monotonic() + 15
            while running.state is JobState.QUEUED:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            queued, decision = svc.submit(
                "acme", "synthetic", {"iterations": 8}
            )
            assert decision.status == 202
            refused, decision = svc.submit(
                "acme", "synthetic", {"iterations": 8}
            )
            assert refused is None and decision.status == 429
            assert svc.cancel(queued.id) == "cancelled"
            # quota released eagerly: the very next submit is admitted
            replacement, decision = svc.submit(
                "acme", "synthetic", {"iterations": 8}
            )
            assert decision.status == 202, decision.reason
            wait_terminal([running, replacement])
        finally:
            svc.drain_and_stop()


KILL_PARAMS = {"iterations": 400, "spin": 30000}


def _start_server(state_dir, env):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--workers", "2", "--slots", "2",
         "--state-dir", str(state_dir), "--checkpoint-interval", "4",
         "--drain-timeout", "60"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(r"serving on (http://[\d.]+:\d+)", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    raise AssertionError("server banner never appeared")


def _request(method, url, body=None, timeout=15):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read() or b"{}")


class TestKillAndRecover:
    """The acceptance story: SIGKILL the real server mid-job, restart on
    the same ``--state-dir``, and no acknowledged work is lost."""

    def test_sigkill_mid_job_resumes_bit_identical(self, tmp_path):
        expected, _ = run_sequential(build_spec("synthetic", KILL_PARAMS))
        state_dir = tmp_path / "state"
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(
            os.environ,
            PYTHONPATH=os.path.abspath(src), PYTHONUNBUFFERED="1",
        )
        plan = server_kill_plan(1234, kills=1)

        proc, base = _start_server(state_dir, env)
        try:
            status, body = _request(
                "POST", f"{base}/jobs",
                {"tenant": "acme", "workload": "synthetic",
                 "params": KILL_PARAMS, "idempotency_key": "kill-1"},
            )
            assert status == 202, body
            job_id = body["id"]
            # wait until at least one checkpoint is durable, then let the
            # seeded plan decide how much longer the server lives
            checkpoint = state_dir / "artifacts" / job_id / "checkpoint.pkl"
            deadline = time.monotonic() + 30
            while not checkpoint.exists():
                assert time.monotonic() < deadline, "no checkpoint appeared"
                assert proc.poll() is None, "server died on its own"
                time.sleep(0.02)
            time.sleep(min(plan.delays[0], 0.5))
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

        proc, base = _start_server(state_dir, env)
        try:
            # idempotent resubmit after the crash: same job, no duplicate
            status, body = _request(
                "POST", f"{base}/jobs",
                {"tenant": "acme", "workload": "synthetic",
                 "params": KILL_PARAMS, "idempotency_key": "kill-1"},
            )
            assert status == 200 and body["id"] == job_id, body
            assert body.get("deduplicated") is True

            deadline = time.monotonic() + 90
            while True:
                status, body = _request("GET", f"{base}/jobs/{job_id}")
                if body["state"] in ("done", "failed", "cancelled",
                                     "dead_letter"):
                    break
                assert time.monotonic() < deadline, body
                time.sleep(0.1)
            assert body["state"] == "done", body
            assert body.get("recovered") is True
            assert body.get("resumed_from", 0) > 0, body

            status, result = _request("GET", f"{base}/jobs/{job_id}/result")
            assert status == 200
            assert result["output"] == expected

            with urllib.request.urlopen(f"{base}/metrics", timeout=15) as r:
                metrics = r.read().decode()
            assert 'repro_service_recovery_total{outcome="resumed"} 1' \
                in metrics, metrics
            assert "repro_service_durable 1" in metrics
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                proc.communicate(timeout=60)
