"""Tests for the perlbmk and gap interpreter analogs."""

import pytest

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.profiling.tracer import Tracer
from repro.workloads.gap_w import GapWorkload, _Heap, gap_alloc, generate_statements
from repro.workloads.perlbmk_w import (
    ADD,
    LOAD,
    MUL,
    NEG,
    NEXTSTATE,
    PRINT,
    PUSH,
    STORE,
    PerlbmkWorkload,
    generate_program,
)


def reference_execute(program):
    """Direct (non-traced, non-stack) evaluation for cross-checking."""
    variables = {}
    output = []
    modulus = 1 << 31
    for statement in program:
        stack = []
        for opcode, operand in statement:
            if opcode == PUSH:
                stack.append(operand)
            elif opcode == LOAD:
                stack.append(variables.get(operand, 0))
            elif opcode == STORE:
                variables[operand] = stack.pop() % modulus
            elif opcode == ADD:
                b, a = stack.pop(), stack.pop()
                stack.append((a + b) % modulus)
            elif opcode == MUL:
                b, a = stack.pop(), stack.pop()
                stack.append((a * b) % modulus)
            elif opcode == NEG:
                stack.append((-stack.pop()) % modulus)
            elif opcode == PRINT:
                output.append(stack.pop())
    return output


class TestPerlbmk:
    def test_interpreter_matches_reference(self):
        workload = PerlbmkWorkload(statements=100)
        tracer = Tracer()
        from repro.profiling.context import activate

        with activate(tracer):
            result = workload.run(tracer)
        expected = reference_execute(workload.program)
        assert result["printed"] == len(expected)
        digest = sum(i * v for i, v in enumerate(expected)) % (1 << 32)
        assert result["digest"] == digest

    def test_statement_dependences_are_real(self):
        """Consecutive statements truly share data: RAW deps must exist."""
        evaluation = ParallelizationFramework().evaluate(
            PerlbmkWorkload(statements=120)
        )
        raw = [e for e in evaluation.graph.edges if e.location and e.location[0] == "perl.var"]
        assert len(raw) > 50

    def test_low_speedup_signature(self):
        evaluation = ParallelizationFramework().evaluate(PerlbmkWorkload())
        assert evaluation.report.best_speedup < 2.0  # paper: 1.21

    def test_value_sites_predictable(self):
        from repro.profiling.value_profile import ValueProfile

        evaluation = ParallelizationFramework().evaluate(
            PerlbmkWorkload(statements=100)
        )
        profile = ValueProfile(evaluation.parallel_trace)
        assert profile.predictability("PL_temp_ixs") == 1.0

    def test_program_generation_deterministic(self):
        assert generate_program(5, 50) == generate_program(5, 50)


class TestGapHeap:
    def test_allocation_and_value(self):
        heap = _Heap(capacity=100)
        slot, gc = heap.allocate("int", 42, 1, {}, None)
        assert gc == 0
        assert heap.value(slot) == 42

    def test_collection_preserves_live_values(self):
        heap = _Heap(capacity=10)
        roots = {}
        for i in range(8):
            slot, _ = heap.allocate("int", i * 11, 1, roots, None)
            roots[f"v{i}"] = slot
        # Drop half the roots; the next overflow collects the garbage.
        for i in range(0, 8, 2):
            del roots[f"v{i}"]
        heap.allocate("list", [1, 2, 3, 4, 5, 6], 7, roots, None)
        assert heap.collections >= 1
        for i in range(1, 8, 2):
            assert heap.value(roots[f"v{i}"]) == i * 11

    def test_collection_reclaims_space(self):
        heap = _Heap(capacity=10)
        roots = {}
        for i in range(30):
            slot, _ = heap.allocate("int", i, 1, roots, None)
            roots["only"] = slot  # keep just the newest alive
        assert heap.collections >= 2
        # Only the single root survives each collection, so occupancy never
        # exceeds the capacity even after 3x overallocation.
        assert heap.live_cells <= heap.capacity

    def test_gc_writes_visible_to_tracer(self):
        tracer = Tracer()
        heap = _Heap(capacity=4)
        roots = {}
        with tracer.task("B", 0):
            tracer.work(1)
            for i in range(6):
                slot, _ = heap.allocate("int", i, 1, roots, tracer)
                roots[f"v{i}"] = slot
        trace = tracer.finish()
        stores = [a for a in trace.accesses if a.location[0] == "gap.heap"]
        assert len(stores) > 6  # allocations + GC copy writes


class TestGapWorkload:
    def test_deterministic(self):
        fw = ParallelizationFramework()
        first = fw.profile_workload(GapWorkload(), False)[1]
        second = fw.profile_workload(GapWorkload(), False)[1]
        assert first == second

    def test_collections_happen(self):
        output = ParallelizationFramework().profile_workload(GapWorkload(), False)[1]
        assert output["collections"] >= 3

    def test_gc_limits_speedup(self):
        evaluation = ParallelizationFramework().evaluate(GapWorkload())
        assert evaluation.report.best_speedup < 3.5  # paper: 1.94

    def test_commutative_allocator_required(self):
        with_annotation = ParallelizationFramework().evaluate(GapWorkload())
        without = ParallelizationFramework(
            FrameworkConfig(enable_commutative=False)
        ).evaluate(GapWorkload())
        assert without.report.best_speedup <= with_annotation.report.best_speedup

    def test_statement_mix(self):
        statements = generate_statements(254, 1000)
        kinds = [s[0] for s in statements]
        assert all(0 <= k <= 3 for k in kinds)
        # The Last-using statements are the plurality serialization source.
        assert kinds.count(3) > 300
