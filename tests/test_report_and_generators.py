"""Tests for speedup reporting (Table 2 math) and the input generators."""

import math

import pytest

from repro.core.report import (
    SpeedupReport,
    SuiteReport,
    format_speedup_curve,
    moores_law_speedup,
)
from repro.workloads.generators import (
    Xorshift,
    generate_flow_network,
    generate_netlist,
    generate_sentences,
    generate_text,
)


class TestMooresLaw:
    def test_paper_values(self):
        # Table 2's Moore's Speedup column.
        assert moores_law_speedup(32) == pytest.approx(5.38, abs=0.01)
        assert moores_law_speedup(16) == pytest.approx(3.84, abs=0.01)
        assert moores_law_speedup(8) == pytest.approx(2.74, abs=0.01)

    def test_one_thread_needs_nothing(self):
        assert moores_law_speedup(1) == 1.0

    def test_doubling_multiplies_by_1_4(self):
        assert moores_law_speedup(16) / moores_law_speedup(8) == pytest.approx(1.4)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            moores_law_speedup(0)


class TestSpeedupReport:
    def make(self, curve):
        return SpeedupReport(name="test", curve=curve)

    def test_best_threads_is_minimum_at_max(self):
        report = self.make({1: 1.0, 8: 6.0, 16: 6.02, 32: 6.02})
        # 8 threads reaches within 1% of the max: Table 2's "minimum # of
        # threads at which the maximum speedup occurs".
        assert report.best_threads == 8

    def test_ratio(self):
        report = self.make({1: 1.0, 32: 10.76})
        assert report.moores_speedup == pytest.approx(5.38, abs=0.01)
        assert report.ratio == pytest.approx(2.0, abs=0.01)

    def test_row_and_format(self):
        report = self.make({1: 1.0, 4: 3.0})
        name, threads, speedup, moores, ratio = report.row()
        assert (name, threads) == ("test", 4)
        assert "test" in report.format_row()

    def test_curve_rendering(self):
        report = self.make({1: 1.0, 2: 2.0})
        art = format_speedup_curve(report)
        assert "1 |" in art and "2 |" in art


class TestSuiteReport:
    def test_geo_and_arith_means(self):
        suite = SuiteReport()
        suite.add(SpeedupReport("a", {1: 1.0, 4: 4.0}))
        suite.add(SpeedupReport("b", {1: 1.0, 16: 1.0}))
        geo = suite.geo_mean_row()
        arith = suite.arith_mean_row()
        assert geo[2] == pytest.approx(math.sqrt(4.0 * 1.0))
        assert arith[2] == pytest.approx(2.5)

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            SuiteReport().geo_mean_row()

    def test_table_contains_all_rows(self):
        suite = SuiteReport()
        suite.add(SpeedupReport("alpha", {1: 1.0, 2: 1.5}))
        table = suite.format_table()
        assert "alpha" in table
        assert "GeoMean" in table and "ArithMean" in table


class TestXorshift:
    def test_deterministic(self):
        a = Xorshift(7)
        b = Xorshift(7)
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]

    def test_zero_seed_handled(self):
        rng = Xorshift(0)
        assert rng.next() != rng.next()

    def test_below_range(self):
        rng = Xorshift(3)
        values = [rng.below(7) for _ in range(200)]
        assert set(values) <= set(range(7))
        assert len(set(values)) == 7  # all residues hit eventually

    def test_below_invalid(self):
        with pytest.raises(ValueError):
            Xorshift(1).below(0)

    def test_chance_extremes(self):
        rng = Xorshift(5)
        assert not any(rng.chance(0.0) for _ in range(50))
        assert all(rng.chance(1.0) for _ in range(50))


class TestGenerators:
    def test_text_exact_size_and_determinism(self):
        text = generate_text(11, 4096)
        assert len(text) == 4096
        assert text == generate_text(11, 4096)
        assert text != generate_text(12, 4096)

    def test_text_is_compressible_english_like(self):
        text = generate_text(1, 8192)
        words = text.split()
        # Zipf-ish: the most common word covers a sizeable share.
        from collections import Counter

        top_share = Counter(words).most_common(1)[0][1] / len(words)
        assert top_share > 0.05

    def test_sentences_shape(self):
        sentences = generate_sentences(2, 50, 4, 12)
        assert len(sentences) == 50
        assert all(4 <= len(s) <= 12 for s in sentences)
        assert all(isinstance(w, str) for s in sentences for w in s)

    def test_flow_network_balanced_and_feasible(self):
        supplies, arcs = generate_flow_network(3, 24, 4)
        assert sum(supplies) == 0
        # The feasibility chain exists: arcs (i, i+1) with ample capacity.
        chain = {(t, h) for t, h, _, _ in arcs}
        assert all((i, i + 1) in chain for i in range(23))

    def test_netlist_members_valid(self):
        netlist = generate_netlist(4, 50, 30)
        assert len(netlist) == 30
        for net in netlist:
            assert 2 <= len(net) <= 4
            assert len(set(net)) == len(net)
            assert all(0 <= c < 50 for c in net)
