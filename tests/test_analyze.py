"""Critical-path analyzer & what-if causal profiler (PR 10).

The acceptance contract (ISSUE 10):

- per-item causal chains and the critical path reconstruct correctly from
  hand-built traces with known timings, and blame lands in the right
  category (compute per stage, queue wait, serialization, commit lag,
  misspeculation);
- the what-if replay projects virtual speedups that track the §3.1
  analytic bound, and the bottleneck block validates against its schema;
- a stored Chrome trace round-trips back into the analyzer with the same
  verdict as the in-memory merged trace;
- on a seeded chaos run with a deliberately undersized stage B, the
  analyzer names stage-B compute as the top blame category AND its
  "+1 B replica" projection lands within 25% of the *measured* speedup
  from actually rerunning with one more worker;
- degenerate inputs (empty trace, service-only spans, metrics without a
  trace) produce valid reports, never exceptions.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.exec.metrics import EngineMetrics
from repro.obs import (
    BottleneckReport,
    EventKind,
    TraceConfig,
    analyze_trace,
    compute_critical_path,
    estimate_bottleneck,
    extract_chains,
    merged_from_chrome_trace,
    run_analyze,
    to_chrome_trace,
    validate_bottleneck,
)
from repro.obs.analyze import ChainCosts, analytic_wall, replay
from repro.obs.compare import PhaseComparison
from repro.obs.events import Instant, Span
from repro.obs.merge import MergedTrace
from repro.obs.spool import SpoolWriter
from repro.resilience import ChaosConfig, run_chaos

MS = 1_000_000  # ns


# -- hand-built traces with known timings ------------------------------------------


def _b_bound_trace(items=4, b_ms=5, workers=1):
    """Producer instant As, one serial worker with ``b_ms`` tasks, prompt
    commits: compute:B owns the critical path by construction."""
    merged = MergedTrace()
    for i in range(items):
        merged.spans.append(
            Span(kind=EventKind.TASK_A, role="producer", pid=1,
                 start_ns=i * MS, duration_ns=MS // 2, arg=i)
        )
    cursor = MS
    for i in range(items):
        merged.spans.append(
            Span(kind=EventKind.TASK_B, role="worker-0", pid=2,
                 start_ns=cursor, duration_ns=b_ms * MS, arg=i, arg2=0)
        )
        end = cursor + b_ms * MS
        merged.instants.append(
            Instant(kind=EventKind.CLAIM, role="committer", pid=3,
                    ts_ns=cursor, arg=i)  # claim-then-execute
        )
        merged.spans.append(
            Span(kind=EventKind.TASK_C, role="committer", pid=3,
                 start_ns=end + MS // 10, duration_ns=MS // 5, arg=i)
        )
        merged.instants.append(
            Instant(kind=EventKind.COMMIT, role="committer", pid=3,
                    ts_ns=end + MS // 10 + MS // 5, arg=i)
        )
        cursor = end
    merged.spans.sort(key=lambda s: s.start_ns)
    merged.instants.sort(key=lambda s: s.ts_ns)
    return merged


class TestChains:
    def test_chains_reconstruct_stages(self):
        merged = _b_bound_trace()
        chains = extract_chains(merged)
        assert sorted(chains) == [0, 1, 2, 3]
        for i, chain in chains.items():
            assert chain.produce is not None
            assert chain.work is not None
            assert chain.commit_span is not None
            assert chain.commit_ns is not None
            assert chain.claim_ns is not None
            assert chain.work.arg == i

    def test_aborted_b_span_is_wasted_not_committed(self):
        merged = _b_bound_trace()
        merged.spans.append(
            Span(kind=EventKind.TASK_B, role="worker-1", pid=4,
                 start_ns=MS, duration_ns=2 * MS, arg=0, arg2=1,
                 aborted=True)
        )
        chains = extract_chains(merged)
        assert chains[0].work.role == "worker-0"
        assert [s.role for s in chains[0].wasted_work] == ["worker-1"]


class TestCriticalPath:
    def test_path_covers_wall_clock_without_gaps(self):
        merged = _b_bound_trace()
        segments = compute_critical_path(merged)
        assert segments, "B-bound trace must yield a path"
        # Gap-free, monotone cover ending at the last commit.
        for earlier, later in zip(segments, segments[1:]):
            assert earlier.end_ns == later.start_ns
        assert segments[0].start_ns == 0
        last_commit = max(
            i.ts_ns for i in merged.instants if i.kind == EventKind.COMMIT
        )
        assert segments[-1].end_ns == last_commit

    def test_b_bound_blame_names_stage_b(self):
        report = analyze_trace(_b_bound_trace())
        assert report.top == "compute:B"
        assert report.fractions["compute:B"] > 0.8
        # Blame fractions are a partition of the path.
        assert sum(report.fractions.values()) == pytest.approx(1.0)

    def test_queue_wait_reclassifies_worker_starvation(self):
        """A slow producer starves the worker; the worker's recorded
        get-wait span claims that gap for queue_wait."""
        merged = MergedTrace()
        for i in range(3):
            merged.spans.append(
                Span(kind=EventKind.TASK_A, role="producer", pid=1,
                     start_ns=i * 10 * MS, duration_ns=8 * MS, arg=i)
            )
            a_end = i * 10 * MS + 8 * MS
            b_start = a_end + MS
            # The worker's blocking get ends exactly when the item arrives
            # and execution starts.
            merged.spans.append(
                Span(kind=EventKind.QUEUE_GET_WAIT, role="worker-0", pid=2,
                     start_ns=max(0, b_start - 7 * MS), duration_ns=7 * MS,
                     detail=0)
            )
            merged.spans.append(
                Span(kind=EventKind.TASK_B, role="worker-0", pid=2,
                     start_ns=b_start, duration_ns=MS, arg=i, arg2=0)
            )
            b_end = a_end + 2 * MS
            merged.spans.append(
                Span(kind=EventKind.TASK_C, role="committer", pid=3,
                     start_ns=b_end, duration_ns=MS // 2, arg=i)
            )
            merged.instants.append(
                Instant(kind=EventKind.COMMIT, role="committer", pid=3,
                        ts_ns=b_end + MS // 2, arg=i)
            )
        merged.spans.sort(key=lambda s: s.start_ns)
        report = analyze_trace(merged)
        assert report.top == "compute:A"
        assert report.blame_seconds["queue_wait"] > 0

    def test_misspeculation_blame_from_reexec(self):
        merged = _b_bound_trace(items=2, b_ms=2)
        last_commit = max(
            i.ts_ns for i in merged.instants if i.kind == EventKind.COMMIT
        )
        # A serial re-execution dominating the tail of the run.
        merged.spans.append(
            Span(kind=EventKind.SERIAL_REEXEC, role="committer", pid=3,
                 start_ns=last_commit, duration_ns=30 * MS, arg=2)
        )
        merged.spans.append(
            Span(kind=EventKind.TASK_C, role="committer", pid=3,
                 start_ns=last_commit + 30 * MS, duration_ns=MS // 5, arg=2)
        )
        merged.instants.append(
            Instant(kind=EventKind.COMMIT, role="committer", pid=3,
                    ts_ns=last_commit + 30 * MS + MS // 5, arg=2)
        )
        merged.spans.sort(key=lambda s: s.start_ns)
        report = analyze_trace(merged)
        assert report.top == "misspeculation"
        assert report.categories["misspeculation"] > 0.5

    def test_empty_trace_degrades_gracefully(self):
        report = analyze_trace(MergedTrace())
        assert report.top == "other"
        assert report.what_ifs == []
        assert report.notes
        assert validate_bottleneck(report.to_json()) == []

    def test_service_only_trace_degrades_gracefully(self):
        merged = MergedTrace()
        merged.spans.append(
            Span(kind=EventKind.ADMIT, role="service", pid=9,
                 start_ns=0, duration_ns=5 * MS)
        )
        merged.spans.append(
            Span(kind=EventKind.QUEUE_WAIT, role="service", pid=9,
                 start_ns=0, duration_ns=2 * MS)
        )
        report = analyze_trace(merged)
        assert report.iterations == 0
        assert report.what_ifs == []
        assert validate_bottleneck(report.to_json()) == []


# -- the what-if replay ------------------------------------------------------------


def _uniform_costs(n=32, a=0.001, b=0.010, c=0.001):
    return ChainCosts(
        a=[a] * n, b=[b] * n, c=[c] * n, reexec=[0.0] * n, gate=[0.0] * n,
        s_prod=[0.0] * n, s_done=[0.0] * n,
    )


class TestReplay:
    def test_b_bound_wall_matches_serial_sum(self):
        costs = _uniform_costs(n=10, a=0.0, b=0.010, c=0.0)
        assert replay(costs, workers=1) == pytest.approx(0.100, rel=0.01)

    def test_extra_worker_halves_b_bound_wall(self):
        costs = _uniform_costs(n=32)
        one = replay(costs, workers=1)
        two = replay(costs, workers=1, extra_workers=1)
        assert one / two == pytest.approx(2.0, rel=0.15)

    def test_capacity_credit_is_monotone(self):
        # Tightening the work-channel bound can only throttle the
        # producer, never help it; loosening it can only help.
        costs = _uniform_costs(n=16, a=0.005, b=0.010, c=0.0)
        tight = replay(costs, workers=4, capacity=1)
        loose = replay(costs, workers=4, capacity=64)
        assert tight >= loose
        assert replay(
            costs, workers=4, capacity=1, capacity_scale=8.0
        ) <= tight

    def test_serialization_scale_edit_shrinks_serialization_bound_wall(self):
        costs = ChainCosts(
            a=[0.001] * 16, b=[0.001] * 16, c=[0.001] * 16,
            reexec=[0.0] * 16, gate=[0.0] * 16,
            s_prod=[0.010] * 16, s_done=[0.0] * 16,
        )
        base = replay(costs, workers=2)
        batched = replay(costs, workers=2, serialization_scale=0.5)
        assert base / batched > 1.3

    def test_drop_misspeculation_removes_reexec_and_gate(self):
        costs = _uniform_costs(n=8)
        costs.reexec = [0.010] * 8
        costs.gate = [0.005] * 8
        base = replay(costs, workers=2)
        clean = replay(costs, workers=2, drop_misspeculation=True)
        assert clean < base

    def test_analytic_bound_never_exceeds_replay(self):
        """The §3.1 slowest-stage bound is a lower bound on the replayed
        wall: the simulation adds pipeline fill/drain the bound ignores."""
        costs = _uniform_costs(n=24, a=0.002, b=0.008, c=0.001)
        for workers in (1, 2, 4):
            assert analytic_wall(costs, workers) <= replay(
                costs, workers
            ) + 1e-9


class TestBottleneckBlock:
    def test_block_is_schema_valid_and_ranked(self):
        report = analyze_trace(_b_bound_trace(items=6, b_ms=4))
        block = report.to_json()
        assert validate_bottleneck(block) == []
        assert block["recommendation"] == "add_worker"
        speedups = [w["projected_speedup"] for w in block["what_ifs"]]
        assert speedups == sorted(speedups, reverse=True)

    def test_validate_rejects_malformed_blocks(self):
        good = analyze_trace(_b_bound_trace()).to_json()
        assert validate_bottleneck("nope") != []
        assert validate_bottleneck({}) != []
        bad_schema = dict(good, schema=999)
        assert any("schema" in p for p in validate_bottleneck(bad_schema))
        bad_fraction = json.loads(json.dumps(good))
        bad_fraction["fractions"]["compute:B"] = 7.0
        assert validate_bottleneck(bad_fraction) != []
        unranked = json.loads(json.dumps(good))
        unranked["what_ifs"] = list(reversed(unranked["what_ifs"]))
        if len(unranked["what_ifs"]) > 1:
            assert any(
                "ranked" in p for p in validate_bottleneck(unranked)
            )

    def test_crosscheck_agreement_on_clean_pipeline(self):
        """Replay and the analytic model must agree on a clean B-bound
        what-if (the cross-check the CI sanity bound leans on)."""
        report = analyze_trace(_b_bound_trace(items=8, b_ms=5))
        add_worker = next(
            w for w in report.what_ifs if w["name"] == "add_worker"
        )
        assert add_worker["agreement"] == pytest.approx(1.0, abs=0.25)

    def test_crosscheck_with_graph_reuses_compare(self):
        from repro.core.framework import (
            FrameworkConfig, ParallelizationFramework,
        )
        from repro.obs import crosscheck_with_graph
        from repro.workloads.suite import make_workload

        evaluation = ParallelizationFramework(
            FrameworkConfig().with_(thread_counts=(1, 4))
        ).evaluate(make_workload("256.bzip2"))
        report = analyze_trace(_b_bound_trace())
        rows = crosscheck_with_graph(report, evaluation.graph)
        assert rows and all(
            isinstance(row, PhaseComparison) for row in rows
        )


# -- metrics-only estimation -------------------------------------------------------


class TestEstimateBottleneck:
    def test_b_bound_metrics_name_stage_b(self):
        metrics = EngineMetrics(
            workers=2, capacity=8, iterations=50, commits=50,
            wall_seconds=1.0,
        )
        metrics.stage_seconds = {"A": 0.05, "B": 1.8, "C": 0.05}
        block = estimate_bottleneck(metrics)
        assert block["source"] == "metrics"
        assert block["top"] == "compute:B"
        assert validate_bottleneck(block) == []
        assert any(w["name"] == "add_worker" for w in block["what_ifs"])

    def test_zero_commit_run_is_safe(self):
        block = estimate_bottleneck(EngineMetrics())
        assert validate_bottleneck(block) == []
        assert block["what_ifs"] == []

    def test_engine_attaches_estimate_to_json(self):
        metrics = EngineMetrics(
            workers=1, capacity=4, iterations=10, commits=10,
            wall_seconds=0.5,
        )
        metrics.stage_seconds = {"A": 0.01, "B": 0.45, "C": 0.01}
        metrics.bottleneck = estimate_bottleneck(metrics)
        data = metrics.to_json()
        assert data["bottleneck"]["top"] == "compute:B"
        assert "bottleneck" in metrics.format_summary()


# -- Chrome-trace round-trip -------------------------------------------------------


class TestChromeRoundTrip:
    def test_exported_trace_reanalyzes_identically(self, tmp_path):
        config = TraceConfig(spool_dir=str(tmp_path), max_events=256)
        producer = SpoolWriter(config, "producer")
        worker = SpoolWriter(config, "worker-0")
        committer = SpoolWriter(config, "committer")
        base = producer.anchor.perf_ns
        cursor = base + MS
        for i in range(5):
            producer.span(
                EventKind.TASK_A, base + i * MS, base + i * MS + MS // 2,
                arg=i,
            )
            worker.span(
                EventKind.TASK_B, cursor, cursor + 4 * MS, arg=i, arg2=0
            )
            end = cursor + 4 * MS
            committer.record(
                EventKind.CLAIM, cursor, cursor, arg=i, arg2=0
            )
            committer.span(
                EventKind.TASK_C, end + MS // 10, end + MS // 3, arg=i
            )
            committer.record(
                EventKind.COMMIT, end + MS // 3, end + MS // 3, arg=i
            )
            cursor = end
        for writer in (producer, worker, committer):
            writer.close()
        from repro.obs import merge_spool_dir

        merged = merge_spool_dir(str(tmp_path))
        direct = analyze_trace(merged)
        rebuilt = merged_from_chrome_trace(to_chrome_trace(merged))
        roundtrip = analyze_trace(rebuilt)
        assert roundtrip.top == direct.top == "compute:B"
        assert roundtrip.iterations == direct.iterations == 5
        for key in direct.fractions:
            assert roundtrip.fractions[key] == pytest.approx(
                direct.fractions[key], abs=0.02
            )

    def test_run_analyze_cli_on_trace_file(self, tmp_path):
        config = TraceConfig(spool_dir=str(tmp_path / "spools"),
                             max_events=64)
        (tmp_path / "spools").mkdir()
        writer = SpoolWriter(config, "worker-0")
        base = writer.anchor.perf_ns
        committer = SpoolWriter(config, "committer")
        for i in range(3):
            writer.span(
                EventKind.TASK_B, base + i * 5 * MS,
                base + (i * 5 + 4) * MS, arg=i, arg2=0,
            )
            committer.record(
                EventKind.COMMIT, base + (i * 5 + 4) * MS,
                base + (i * 5 + 4) * MS, arg=i,
            )
        writer.close()
        committer.close()
        from repro.obs import merge_spool_dir, write_chrome_trace

        merged = merge_spool_dir(str(tmp_path / "spools"))
        trace_path = str(tmp_path / "trace.json")
        write_chrome_trace(merged, trace_path)
        json_out = str(tmp_path / "bottleneck.json")
        text, code = run_analyze(trace_path, json_out=json_out)
        assert code == 0
        assert "bottleneck: compute:B" in text
        with open(json_out) as handle:
            assert validate_bottleneck(json.load(handle)) == []

    def test_run_analyze_missing_inputs_exit_2(self, tmp_path):
        _, code = run_analyze(str(tmp_path / "nope.json"))
        assert code == 2
        _, code = run_analyze(None)
        assert code == 2
        _, code = run_analyze(
            "job-x", state_dir=str(tmp_path)
        )
        assert code == 2


# -- the acceptance run: undersized stage B under seeded chaos ---------------------


def sleepy_produce(i):
    return i


class SleepyWork:
    """Stage B that *sleeps*: parallelizes on a single-core CI box, so
    adding a replica genuinely speeds the measured run up."""

    def __init__(self, seconds):
        self.seconds = seconds

    def __call__(self, i, value):
        time.sleep(self.seconds)
        return value * 3 + 1


def record_commit(i, result, acc):
    acc.setdefault("out", []).append((i, result))


def take_out(acc):
    return acc.get("out", [])


def sleepy_spec(iterations=48, b_seconds=0.012):
    from repro.exec import PipelineSpec

    return PipelineSpec(
        iterations=iterations,
        produce=sleepy_produce,
        work=SleepyWork(b_seconds),
        commit=record_commit,
        finalize=take_out,
    )


#: Mild chaos: enough injections to exercise the analyzer's robustness
#: categories (the ISSUE asks for a *seeded chaos run*) without the
#: timing noise of crashes/hangs/latencies that would swamp the 25%
#: acceptance band.
MILD_CHAOS = ChaosConfig(
    crashes=0, hangs=0, soft_faults=2, conflicts=2, latencies=0,
    duplicates=1, drops=0, channel_latencies=0, channel_duplicates=0,
    channel_drops=0,
)


@pytest.mark.slow
class TestUndersizedStageB:
    def test_analyzer_names_stage_b_and_projects_within_band(self, tmp_path):
        trace_config = TraceConfig(
            spool_dir=str(tmp_path / "spool"), max_events=4096
        )
        (tmp_path / "spool").mkdir()
        undersized = run_chaos(
            sleepy_spec, seed=1234, workers=1, capacity=8,
            config=MILD_CHAOS, trace=trace_config,
        )
        assert undersized.ok, undersized.violations
        from repro.obs import merge_spool_dir

        merged = merge_spool_dir(str(tmp_path / "spool"))
        report = analyze_trace(
            merged, metrics=undersized.result.metrics.to_json()
        )
        # (a) the analyzer names stage-B compute outright
        assert report.top == "compute:B", report.format_summary()
        assert report.categories["compute"] > 0.5

        add_worker = next(
            w for w in report.what_ifs if w["name"] == "add_worker"
        )
        projected = add_worker["projected_speedup"]

        # (b) rerun with the extra worker for the *measured* speedup
        resized = run_chaos(
            sleepy_spec, seed=1234, workers=2, capacity=8,
            config=MILD_CHAOS,
        )
        assert resized.ok, resized.violations
        measured = (
            undersized.result.metrics.wall_seconds
            / resized.result.metrics.wall_seconds
        )
        assert measured > 1.0, "extra worker must actually help"
        assert projected == pytest.approx(measured, rel=0.25), (
            f"projected {projected:.2f}x vs measured {measured:.2f}x "
            f"(undersized {undersized.result.metrics.wall_seconds:.3f}s, "
            f"resized {resized.result.metrics.wall_seconds:.3f}s)"
        )
