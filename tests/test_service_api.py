"""HTTP-level tests for the job server, including the two acceptance
stories: graceful drain on shutdown, and tenant isolation under a seeded
misspeculation storm (the noisy tenant throttles and degrades; the quiet
tenant's concurrent jobs stay bit-identical with bounded queue wait).
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.exec import RobustnessPolicy
from repro.exec.engine import run_sequential
from repro.service import PipelineService, ServiceConfig
from repro.service.jobs import build_spec

FAST_POLICY = RobustnessPolicy(
    task_timeout=5.0, stall_timeout=10.0, poll_interval=0.01
)


def request(method, url, body=None, timeout=15):
    """(status, parsed json, headers) — errors unwrapped, not raised."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read() or b"{}"), resp.headers
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read() or b"{}"), err.headers


def get_text(url, timeout=15):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode()


def wait_terminal(base, job_id, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body, _ = request("GET", f"{base}/jobs/{job_id}")
        if body.get("state") in ("done", "failed", "cancelled"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished: {body}")


@pytest.fixture(scope="module")
def service():
    svc = PipelineService(
        ServiceConfig(
            pool_workers=2, slots=2, capacity=8, batch_size=4,
            policy=FAST_POLICY, live_interval=0.05,
        )
    ).start()
    yield svc
    svc.stop()


@pytest.fixture(scope="module")
def base(service):
    return f"http://127.0.0.1:{service.port}"


SMALL = {"iterations": 16, "spin": 200}


def submit(base, tenant, params=SMALL, workload="synthetic"):
    status, body, headers = request(
        "POST", f"{base}/jobs",
        {"tenant": tenant, "workload": workload, "params": params},
    )
    return status, body, headers


class TestApi:
    def test_submit_run_result_roundtrip(self, base):
        status, job, _ = submit(base, "acme")
        assert status == 202 and job["state"] == "queued"
        final = wait_terminal(base, job["id"])
        assert final["state"] == "done"
        status, result, _ = request("GET", f"{base}/jobs/{job['id']}/result")
        assert status == 200
        expected, _seconds = run_sequential(build_spec("synthetic", SMALL))
        assert result["output"] == expected
        assert result["metrics"]["commits"] == SMALL["iterations"]

    def test_status_includes_metrics_and_wait(self, base):
        _, job, _ = submit(base, "acme")
        wait_terminal(base, job["id"])
        _, body, _ = request("GET", f"{base}/jobs/{job['id']}")
        assert body["queue_wait_s"] is not None
        assert body["metrics"]["commits"] == SMALL["iterations"]
        assert body["params"] == SMALL

    def test_list_jobs_filters_by_tenant(self, base):
        _, job, _ = submit(base, "list-tenant")
        wait_terminal(base, job["id"])
        _, body, _ = request("GET", f"{base}/jobs?tenant=list-tenant")
        assert [j["tenant"] for j in body["jobs"]] == ["list-tenant"]
        _, everything, _ = request("GET", f"{base}/jobs")
        assert len(everything["jobs"]) > len(body["jobs"])

    def test_validation_errors(self, base):
        status, body, _ = request(
            "POST", f"{base}/jobs", {"workload": "synthetic"}
        )
        assert status == 400 and "tenant" in body["error"]
        status, body, _ = request("POST", f"{base}/jobs", {"tenant": "t"})
        assert status == 400 and "workload" in body["error"]
        status, body, _ = submit(base, "t", workload="no-such")
        assert status == 400
        status, body, _ = submit(base, "t", params={"iterations": -3})
        assert status == 400
        status, body, _ = submit(base, "t", params={"chaos": {"bogus": 1}})
        assert status == 400

    def test_unknown_job_and_routes(self, base):
        status, _, _ = request("GET", f"{base}/jobs/nope")
        assert status == 404
        status, _, _ = request("GET", f"{base}/jobs/nope/result")
        assert status == 404
        status, _, _ = request("POST", f"{base}/jobs/nope/cancel")
        assert status == 404
        status, _, _ = request("GET", f"{base}/bogus")
        assert status == 404

    def test_result_conflict_while_running(self, base):
        _, job, _ = submit(
            base, "slow", params={"iterations": 50_000, "spin": 2000}
        )
        status, body, _ = request("GET", f"{base}/jobs/{job['id']}/result")
        assert status == 409
        status, body, _ = request("POST", f"{base}/jobs/{job['id']}/cancel")
        assert status == 202
        final = wait_terminal(base, job["id"])
        assert final["state"] == "cancelled"
        status, body, _ = request("GET", f"{base}/jobs/{job['id']}/result")
        assert status == 410

    def test_cancel_queued_job(self, base):
        # fill both slots with long jobs from two tenants, then queue one
        blockers = []
        for tenant in ("cq-a", "cq-b"):
            _, job, _ = submit(
                base, tenant, params={"iterations": 50_000, "spin": 2000}
            )
            blockers.append(job["id"])
        _, queued, _ = submit(base, "cq-c")
        status, body, _ = request(
            "POST", f"{base}/jobs/{queued['id']}/cancel"
        )
        assert status == 202
        _, body, _ = request("GET", f"{base}/jobs/{queued['id']}")
        assert body["state"] == "cancelled"
        for job_id in blockers:
            request("POST", f"{base}/jobs/{job_id}/cancel")
            wait_terminal(base, job_id)

    def test_health_and_metrics_endpoints(self, base):
        status, health, _ = request("GET", f"{base}/health")
        assert status == 200
        assert health["status"] == "ok"
        assert "acme" in health["tenants"]
        text = get_text(f"{base}/metrics")
        assert 'repro_service_jobs_total{tenant="acme",event="completed"}' in text
        assert "repro_service_pool_workers_idle" in text
        assert "repro_service_queue_wait_seconds_sum" in text
        _, snapshot, _ = request("GET", f"{base}/snapshot")
        assert snapshot["pool"]["size"] == 2

    def test_worker_pids_stable_across_jobs(self, service, base):
        pids = service.pool.worker_pids()
        for _ in range(3):
            _, job, _ = submit(base, "stable")
            final = wait_terminal(base, job["id"])
            assert final["state"] == "done"
            assert service.pool.worker_pids() == pids


class TestIsolationUnderStorm:
    def test_quiet_tenant_unaffected_by_storm(self, base, service):
        """Satellite 4 / acceptance: tenant A runs seeded misspec storms,
        tenant B's concurrent jobs stay bit-identical with bounded queue
        wait, and /health degrades A only."""
        storm_params = {
            "iterations": 64, "spin": 400,
            "chaos": {"conflicts": 32, "seed": 11},
        }
        quiet_params = {"iterations": 48, "spin": 400}
        expected, _seconds = run_sequential(
            build_spec("synthetic", quiet_params)
        )

        storm_ids, quiet_ids = [], []
        for _ in range(2):
            status, job, _ = submit(base, "storm", params=storm_params)
            assert status == 202
            storm_ids.append(job["id"])
            status, job, _ = submit(base, "quiet", params=quiet_params)
            assert status == 202
            quiet_ids.append(job["id"])

        for job_id in quiet_ids:
            final = wait_terminal(base, job_id)
            assert final["state"] == "done"
            # bounded wait: the fair scheduler interleaves tenants, so a
            # quiet job never sits behind the storm tenant's whole backlog
            assert final["queue_wait_s"] < 30
            _, result, _ = request("GET", f"{base}/jobs/{job_id}/result")
            assert result["output"] == expected
            assert result["metrics"]["conflicts"] == 0
            assert result["metrics"]["serial_reexecutions"] == 0
        for job_id in storm_ids:
            final = wait_terminal(base, job_id)
            assert final["state"] == "done"
            _, result, _ = request("GET", f"{base}/jobs/{job_id}/result")
            # injected conflicts on a non-speculative spec surface as
            # serial re-executions (misspeculation-as-re-execution)
            assert result["metrics"]["serial_reexecutions"] >= 32

        # degradation is tenant-scoped: storm degraded, quiet ok, service ok
        status, health, _ = request("GET", f"{base}/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["tenants"]["storm"]["status"] == "degraded"
        assert health["tenants"]["quiet"]["status"] == "ok"
        assert health["tenants"]["storm"]["storms"] >= 1

        # the storm tenant's persistent throttle carries into its next job
        storm_window = service.tenants.get("storm").throttle.window
        quiet_window = service.tenants.get("quiet").throttle.window
        assert storm_window < quiet_window

        text = get_text(f"{base}/metrics")
        assert 'repro_service_tenant_degraded{tenant="storm"} 1' in text
        assert 'repro_service_tenant_degraded{tenant="quiet"} 0' in text


class TestAdmissionOverHttp:
    @pytest.fixture()
    def tight_service(self):
        svc = PipelineService(
            ServiceConfig(
                pool_workers=1, slots=1, capacity=8, batch_size=4,
                policy=FAST_POLICY, max_queued=2, tenant_queued_quota=1,
                tenant_running_quota=1,
            )
        ).start()
        yield svc
        svc.stop()

    def test_429_on_quota_and_503_on_drain(self, tight_service):
        base = f"http://127.0.0.1:{tight_service.port}"
        # occupy the single slot (wait for dispatch so the queue is empty)
        _, running, _ = submit(
            base, "t1", params={"iterations": 50_000, "spin": 2000}
        )
        deadline = time.monotonic() + 10
        while tight_service.get_job(running["id"]).state.value == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        # one queued job fits the tenant quota...
        status, queued, _ = submit(base, "t1")
        assert status == 202
        # ...the next one exceeds it, with a Retry-After hint
        status, body, headers = submit(base, "t1")
        assert status == 429
        assert "quota" in body["error"]
        assert int(headers["Retry-After"]) >= 1
        # other tenants fill the global bound
        status, _, _ = submit(base, "t2")
        assert status == 202
        status, body, headers = submit(base, "t3")
        assert status == 429 and "queue full" in body["error"]
        # draining flips every submission to 503
        tight_service.request_drain()
        status, body, _ = submit(base, "t-late")
        assert status == 503
        request("POST", f"{base}/jobs/{running['id']}/cancel")


class TestGracefulDrain:
    def test_drain_finishes_running_rejects_new(self):
        """Satellite 3: drain lets running jobs finish, cancels queued
        ones, refuses new submissions, and stops cleanly."""
        svc = PipelineService(
            ServiceConfig(
                pool_workers=2, slots=2, capacity=8, batch_size=4,
                policy=FAST_POLICY,
            )
        ).start()
        try:
            base = f"http://127.0.0.1:{svc.port}"
            running = []
            for tenant in ("d1", "d2"):
                _, job, _ = submit(
                    base, tenant,
                    params={"iterations": 300, "spin": 400},
                )
                running.append(job["id"])
            # a queued job behind d1's running quota
            _, queued, _ = submit(base, "d1")
            time.sleep(0.2)  # let the dispatcher lease both running jobs

            clean = svc.drain_and_stop(timeout=30)
            assert clean

            for job_id in running:
                job = svc.get_job(job_id)
                assert job.state.value == "done", (job_id, job.state)
            assert svc.get_job(queued["id"]).state.value == "cancelled"
            # pool fully torn down
            assert svc.pool.stats()["alive"] == 0
        finally:
            svc.stop()

    def test_drain_timeout_cancels_stragglers(self):
        svc = PipelineService(
            ServiceConfig(
                pool_workers=1, slots=1, capacity=8, batch_size=4,
                policy=FAST_POLICY,
            )
        ).start()
        try:
            base = f"http://127.0.0.1:{svc.port}"
            _, job, _ = submit(
                base, "t", params={"iterations": 100_000, "spin": 3000}
            )
            deadline = time.monotonic() + 10
            while svc.get_job(job["id"]).state.value == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            clean = svc.drain_and_stop(timeout=0.5)
            assert not clean
            assert svc.get_job(job["id"]).state.value == "cancelled"
        finally:
            svc.stop()
