"""Job-plane causal tracing: end-to-end timelines, trace artifacts, and
the post-mortem flight recorder (PR 9).

The expensive fixtures run *one* durable traced server shared by the
whole module — two tenants submit concurrently (one of them with seeded
chaos), and every assertion family (stitching, nesting, schema validity,
metrics consistency, artifacts, report CLI) reads from that single run.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exec.faults import RobustnessPolicy
from repro.obs.events import EventKind, SERVICE_KINDS, TraceConfig
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.jobtrace import (
    FlightRecorder,
    JobTrace,
    TraceContext,
    aggregate_report,
    build_timeline,
    format_report,
    open_job_trace,
    run_report,
)
from repro.obs.merge import merge_spool_dir
from repro.service import PipelineService, ServiceConfig
from repro.service.jobs import JobState

FAST_POLICY = RobustnessPolicy(
    task_timeout=5.0, stall_timeout=10.0, poll_interval=0.01
)

TERMINAL = ("done", "failed", "cancelled", "dead_letter")


def _wait_terminal(service, job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        # A live job.trace after the terminal transition means the trace
        # merge is still in flight in the runner thread — wait it out so
        # tests can fetch artifacts immediately.
        if job.state.value in TERMINAL and job.trace is None:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job.id} stuck in {job.state.value}")


@pytest.fixture(scope="module")
def traced_service(tmp_path_factory):
    state_dir = str(tmp_path_factory.mktemp("trace-state"))
    service = PipelineService(
        ServiceConfig(
            pool_workers=2,
            slots=2,
            capacity=8,
            batch_size=4,
            policy=FAST_POLICY,
            live_interval=0.05,
            state_dir=state_dir,
            trace_jobs=True,
        )
    ).start(serve_http=True)
    yield service
    service.drain_and_stop(10.0)


@pytest.fixture(scope="module")
def traced_jobs(traced_service):
    """Two tenants, submitted concurrently; beta runs under seeded chaos."""
    service = traced_service
    jobs = {}

    def submit(key, tenant, params):
        job, decision = service.submit(tenant, "synthetic", params)
        assert job is not None, decision.reason
        jobs[key] = job

    threads = [
        threading.Thread(
            target=submit,
            args=("alpha", "alpha", {"iterations": 48, "spin": 400}),
        ),
        threading.Thread(
            target=submit,
            args=(
                "beta", "beta",
                {"iterations": 48, "spin": 400,
                 "chaos": {"conflicts": 16, "seed": 11}},
            ),
        ),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for job in jobs.values():
        _wait_terminal(service, job)
    return jobs


def _spans(trace, name):
    return [
        event for event in trace["traceEvents"]
        if event.get("ph") == "X" and event.get("name") == name
    ]


class TestTraceStitching:
    def test_both_tenants_complete(self, traced_jobs):
        for job in traced_jobs.values():
            assert job.state is JobState.DONE, job.error

    def test_chrome_trace_is_schema_valid(self, traced_service, traced_jobs):
        for job in traced_jobs.values():
            trace = traced_service.job_trace_json(job)
            assert trace is not None
            assert validate_chrome_trace(trace) == []

    def test_trace_spans_admission_to_persist(
        self, traced_service, traced_jobs
    ):
        """One trace carries service stages AND engine phases: the full
        admission -> sched pick -> lease -> A/B/C -> persist causal chain."""
        trace = traced_service.job_trace_json(traced_jobs["alpha"])
        names = {
            event["name"] for event in trace["traceEvents"]
            if event.get("ph") == "X"
        }
        for required in (
            "admit", "queue_wait", "sched_pick", "lease_dispatch",
            "artifact_persist", "A", "B", "C",
        ):
            assert required in names, f"missing {required} in {sorted(names)}"

    def test_service_spans_nest_inside_admit(
        self, traced_service, traced_jobs
    ):
        """ADMIT is the job-root span: QUEUE_WAIT, SCHED_PICK, and every
        engine phase fall inside [admit.start, admit.end]."""
        for job in traced_jobs.values():
            trace = traced_service.job_trace_json(job)
            (admit,) = _spans(trace, "admit")
            admit_end = admit["ts"] + admit["dur"]
            for name in ("queue_wait", "sched_pick", "lease_dispatch",
                         "artifact_persist", "A", "B", "C"):
                for span in _spans(trace, name):
                    assert span["ts"] >= admit["ts"] - 1, name
                    assert span["ts"] + span["dur"] <= admit_end + 1, name

    def test_queue_wait_contains_no_engine_work(
        self, traced_service, traced_jobs
    ):
        """Engine phases start only after QUEUE_WAIT ended — the queue
        wait precedes the lease by construction."""
        trace = traced_service.job_trace_json(traced_jobs["alpha"])
        (queue_wait,) = _spans(trace, "queue_wait")
        wait_end = queue_wait["ts"] + queue_wait["dur"]
        engine_starts = [
            span["ts"] for name in ("A", "B", "C")
            for span in _spans(trace, name)
        ]
        assert engine_starts
        assert min(engine_starts) >= wait_end - 1

    def test_traces_are_separate_per_job(self, traced_service, traced_jobs):
        """Concurrent tenants do not bleed into each other's timeline."""
        alpha = traced_service.job_timeline_json(traced_jobs["alpha"])
        beta = traced_service.job_timeline_json(traced_jobs["beta"])
        assert alpha["job"] == traced_jobs["alpha"].id
        assert beta["job"] == traced_jobs["beta"].id
        assert alpha["tenant"] == "alpha"
        assert beta["tenant"] == "beta"
        stages = [p["stage"] for p in alpha["phases"]]
        assert stages.count("admit") == 1
        assert stages.count("queue_wait") == 1

    def test_chaos_job_reports_reexec_series(
        self, traced_service, traced_jobs
    ):
        """Seeded conflicts show up as serial re-executions in the traced
        timeline's engine section."""
        beta = traced_service.job_timeline_json(traced_jobs["beta"])
        assert beta["engine"].get("task_b", {}).get("count", 0) > 0
        metrics = traced_jobs["beta"].metrics
        assert metrics["conflicts"] + metrics["serial_reexecutions"] > 0

    def test_timeline_durations_match_metrics_histograms(
        self, traced_service, traced_jobs
    ):
        """The QUEUE_WAIT span duration is the same measurement the
        per-tenant /metrics histogram observed — sums agree per tenant."""
        text = traced_service.metrics_text()
        for key, job in traced_jobs.items():
            timeline = traced_service.job_timeline_json(job)
            waits = [
                p["duration_s"] for p in timeline["phases"]
                if p["stage"] == "queue_wait"
            ]
            needle = (
                'repro_service_queue_wait_seconds_sum{tenant="%s"}' % key
            )
            (line,) = [l for l in text.splitlines() if l.startswith(needle)]
            scraped = float(line.split()[-1])
            assert scraped == pytest.approx(sum(waits), rel=1e-6, abs=1e-9)

    def test_sched_pick_histogram_counts_dispatches(
        self, traced_service, traced_jobs
    ):
        text = traced_service.metrics_text()
        needle = 'repro_service_sched_pick_seconds_count{tenant="alpha"}'
        (line,) = [l for l in text.splitlines() if l.startswith(needle)]
        assert int(line.split()[-1]) >= 1

    def test_queue_wait_buckets_are_cumulative(self, traced_service):
        text = traced_service.metrics_text()
        buckets = [
            int(line.split()[-1]) for line in text.splitlines()
            if line.startswith(
                'repro_service_queue_wait_seconds_bucket{tenant="alpha"'
            )
        ]
        assert buckets, "histogram buckets missing"
        assert buckets == sorted(buckets), "buckets must be cumulative"


class TestTraceHttp:
    def _get(self, service, path):
        url = f"http://127.0.0.1:{service.port}{path}"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_trace_roundtrip_is_valid(self, traced_service, traced_jobs):
        job = traced_jobs["alpha"]
        status, trace = self._get(traced_service, f"/jobs/{job.id}/trace")
        assert status == 200
        assert validate_chrome_trace(trace) == []

    def test_timeline_roundtrip(self, traced_service, traced_jobs):
        job = traced_jobs["beta"]
        status, timeline = self._get(
            traced_service, f"/jobs/{job.id}/timeline"
        )
        assert status == 200
        assert timeline["job"] == job.id
        assert [p["stage"] for p in timeline["phases"]][0] == "admit"

    def test_bottleneck_roundtrip_is_schema_valid(
        self, traced_service, traced_jobs
    ):
        from repro.obs.analyze import validate_bottleneck

        job = traced_jobs["alpha"]
        status, analysis = self._get(
            traced_service, f"/jobs/{job.id}/bottleneck"
        )
        assert status == 200
        assert validate_bottleneck(analysis) == []
        assert analysis["source"] == "trace"
        assert analysis["iterations"] == 48
        # The verdict is also persisted beside the trace artifacts.
        path = os.path.join(
            traced_service.config.state_dir, "artifacts", job.id,
            "bottleneck.json",
        )
        assert os.path.exists(path)
        with open(path) as handle:
            assert json.load(handle)["top"] == analysis["top"]

    def test_unknown_job_404(self, traced_service, traced_jobs):
        status, body = self._get(traced_service, "/jobs/zzz/trace")
        assert status == 404
        status, body = self._get(traced_service, "/jobs/zzz/bottleneck")
        assert status == 404

    def test_untraced_job_404(self, traced_service):
        """A job that opted out of tracing has no trace artifact."""
        # trace_jobs=True traces everything in this fixture, so exercise
        # the 404 through a job whose artifacts were never written:
        status, body = self._get(traced_service, "/jobs/nope/timeline")
        assert status == 404


class TestPostmortem:
    def test_dead_letter_leaves_retrievable_bundle(self, traced_service):
        """A poison job's retries exhaust -> dead-letter -> a post-mortem
        bundle lands in the artifact store and is retrievable over HTTP."""
        service = traced_service
        job, decision = service.submit(
            "gamma", "synthetic",
            {"iterations": 24, "spin": 200, "fail_at": 5,
             "retry": {"max_attempts": 2, "backoff_base": 0.05}},
        )
        assert job is not None, decision.reason
        _wait_terminal(service, job)
        assert job.state is JobState.DEAD_LETTER
        # The bundle is snapshotted just after the trace merge, in the
        # runner thread — give it a beat to land.
        deadline = time.monotonic() + 5.0
        bundle = service.job_postmortem_json(job)
        while bundle is None and time.monotonic() < deadline:
            time.sleep(0.02)
            bundle = service.job_postmortem_json(job)
        assert bundle is not None
        assert bundle["reason"] == "dead_letter"
        assert bundle["job"]["id"] == job.id
        assert bundle["throttle"]["window"] >= 1
        events = {e["event"] for e in bundle["flight_recorder"]}
        assert "admitted" in events
        assert "retry_scheduled" in events
        tail_events = {r["event"] for r in bundle["journal_tail"]}
        assert "dead_letter" in tail_events
        # retrievable over HTTP too
        url = (
            f"http://127.0.0.1:{service.port}/jobs/{job.id}/postmortem"
        )
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == 200
            assert json.loads(response.read())["reason"] == "dead_letter"

    def test_retry_backoff_span_in_timeline(self, traced_service):
        jobs = [
            job for job in traced_service.list_jobs("gamma")
            if job.state is JobState.DEAD_LETTER
        ]
        assert jobs
        timeline = traced_service.job_timeline_json(jobs[0])
        stages = [p["stage"] for p in timeline["phases"]]
        assert "retry_backoff" in stages
        assert stages.count("queue_wait") == 2  # one per attempt

    def test_postmortem_counter_on_metrics(self, traced_service):
        text = traced_service.metrics_text()
        needle = 'repro_service_postmortem_total{tenant="gamma"}'
        (line,) = [l for l in text.splitlines() if l.startswith(needle)]
        assert int(line.split()[-1]) >= 1

    def test_postmortem_retention_lru(self, tmp_path):
        """Per-tenant bundles are capped LRU-by-mtime at write time."""
        from repro.service.durability import ArtifactStore

        store = ArtifactStore(str(tmp_path / "artifacts"))
        for index in range(6):
            store.put_postmortem(
                "acme", f"j{index:05d}-a1-failed",
                {"reason": "failed", "index": index}, keep=3,
            )
            time.sleep(0.01)  # distinct mtimes at fs granularity
        kept = store.list_postmortems("acme")
        assert len(kept) == 3
        survivors = {os.path.basename(p) for p in kept}
        assert survivors == {
            "j00005-a1-failed.json", "j00004-a1-failed.json",
            "j00003-a1-failed.json",
        }

    def test_postmortem_tenant_name_is_sanitized(self, tmp_path):
        from repro.service.durability import ArtifactStore

        store = ArtifactStore(str(tmp_path / "artifacts"))
        path = store.put_postmortem(
            "../../evil", "j00001-a1-failed", {"reason": "failed"}
        )
        assert os.path.realpath(path).startswith(
            os.path.realpath(str(tmp_path / "artifacts"))
        )


class TestObsReport:
    def test_report_aggregates_stored_traces(self, traced_service, traced_jobs):
        text, code = run_report(traced_service.config.state_dir)
        assert code == 0
        assert "tenant alpha:" in text
        assert "queue_wait" in text
        assert "task_b" in text

    def test_report_tenant_filter(self, traced_service, traced_jobs):
        text, code = run_report(
            traced_service.config.state_dir, tenant="beta"
        )
        assert code == 0
        assert "tenant beta:" in text
        assert "tenant alpha:" not in text

    def test_report_missing_dir(self, tmp_path):
        text, code = run_report(str(tmp_path / "nope"))
        assert code == 2

    def test_report_empty_dir(self, tmp_path):
        text, code = run_report(str(tmp_path))
        assert code == 1

    def test_cli_entry_point(self, traced_service, traced_jobs, capsys):
        from repro.__main__ import main

        code = main(["obs", "report", traced_service.config.state_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs with trace artifacts:" in out

    def test_corrupt_timeline_warns_but_keeps_other_jobs(self, tmp_path):
        """One damaged job's artifacts must not take down the report —
        skip it loudly, aggregate the rest, exit 0."""
        good = tmp_path / "j-good"
        good.mkdir()
        (good / "timeline.json").write_text(json.dumps({
            "job": "j-good", "tenant": "acme", "attempts": 1,
            "phases": [
                {"stage": "admit", "start_s": 0.0, "duration_s": 0.001},
            ],
        }))
        bad = tmp_path / "j-bad"
        bad.mkdir()
        (bad / "timeline.json").write_text("{not json")
        text, code = run_report(str(tmp_path))
        assert code == 0
        assert "tenant acme:" in text
        assert "warning: job j-bad: unreadable timeline.json" in text

    def test_corrupt_trace_falls_back_to_timeline(self, tmp_path):
        job_dir = tmp_path / "j-halftraced"
        job_dir.mkdir()
        (job_dir / "timeline.json").write_text(json.dumps({
            "job": "j-halftraced", "tenant": "acme", "attempts": 1,
            "phases": [
                {"stage": "admit", "start_s": 0.0, "duration_s": 0.001},
            ],
        }))
        (job_dir / "trace.json").write_text("\x00garbage")
        text, code = run_report(str(tmp_path))
        assert code == 0
        assert "tenant acme:" in text
        assert "falling back to timeline summaries" in text

    def test_all_jobs_corrupt_is_nonzero(self, tmp_path):
        for name in ("j-1", "j-2"):
            job_dir = tmp_path / name
            job_dir.mkdir()
            (job_dir / "timeline.json").write_text("{not json")
        text, code = run_report(str(tmp_path))
        assert code == 1
        assert text.count("warning:") == 2


class TestJobTraceUnit:
    def test_cross_thread_marks(self, tmp_path):
        trace = open_job_trace("j1", "t", str(tmp_path / "spool"))
        assert trace.enabled
        trace.begin("admit")
        done = threading.Event()

        def closer():
            time.sleep(0.01)
            duration = trace.end("admit", EventKind.ADMIT, arg=1)
            assert duration > 0.0
            done.set()

        thread = threading.Thread(target=closer)
        thread.start()
        thread.join()
        assert done.is_set()
        trace.close()
        merged = merge_spool_dir(str(tmp_path / "spool"))
        assert [span.kind for span in merged.spans] == [EventKind.ADMIT]

    def test_end_without_begin_is_zero(self, tmp_path):
        trace = open_job_trace("j1", "t", str(tmp_path / "spool"))
        assert trace.end("never", EventKind.QUEUE_WAIT) == 0.0
        trace.close()

    def test_disabled_trace_is_noop(self):
        trace = JobTrace(
            TraceContext("j1", "t", config=TraceConfig(
                spool_dir="/nonexistent/x", enabled=False,
            ))
        )
        assert not trace.enabled
        trace.begin("admit")
        assert trace.end("admit", EventKind.ADMIT) == 0.0
        trace.close()

    def test_service_spans_reach_chrome_export(self, tmp_path):
        trace = open_job_trace("j1", "t", str(tmp_path / "spool"))
        t0 = 1_000_000
        for offset, kind in enumerate(sorted(SERVICE_KINDS)):
            trace.span(kind, t0 + offset * 10, t0 + offset * 10 + 5)
        trace.close()
        merged = merge_spool_dir(str(tmp_path / "spool"))
        chrome = to_chrome_trace(merged)
        assert validate_chrome_trace(chrome) == []
        names = {
            event["name"] for event in chrome["traceEvents"]
            if event.get("ph") == "X"
        }
        assert names == {
            "admit", "queue_wait", "sched_pick", "lease_dispatch",
            "artifact_persist", "retry_backoff",
        }

    def test_build_timeline_excludes_service_from_engine(self, tmp_path):
        trace = open_job_trace("j1", "t", str(tmp_path / "spool"))
        trace.span(EventKind.ADMIT, 1000, 2000, arg=1)
        trace.close()
        merged = merge_spool_dir(str(tmp_path / "spool"))
        timeline = build_timeline(merged, "j1", "t", attempts=1)
        assert [p["stage"] for p in timeline["phases"]] == ["admit"]
        assert "admit" not in timeline["engine"]

    def test_flight_recorder_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.note("event", f"j{index}", "t", index=index)
        snapshot = recorder.snapshot()
        assert len(snapshot) == 4
        assert [e["seq"] for e in snapshot] == [7, 8, 9, 10]
        assert recorder.events_noted == 10

    def test_flight_recorder_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_aggregate_report_handles_missing_trace(self):
        timeline = {
            "tenant": "t",
            "phases": [{"stage": "queue_wait", "duration_s": 0.5}],
            "engine": {"task_b": {"mean": 0.001}},
        }
        aggregate = aggregate_report([("j1", timeline, None)])
        assert aggregate["jobs"] == 1
        stages = aggregate["tenants"]["t"]
        assert stages["queue_wait"].count == 1
        assert stages["task_b"].count == 1
        assert "tenant t:" in format_report(aggregate)


class TestUntracedPath:
    def test_untraced_service_has_no_artifacts(self):
        """Default config: no trace flag, no params.trace — the lease must
        carry trace=None to the pool and no artifacts appear."""
        service = PipelineService(
            ServiceConfig(
                pool_workers=2, slots=1, capacity=8, batch_size=4,
                policy=FAST_POLICY, live_interval=0.05,
            )
        ).start(serve_http=False)
        try:
            job, decision = service.submit(
                "acme", "synthetic", {"iterations": 24, "spin": 200}
            )
            assert job is not None, decision.reason
            _wait_terminal(service, job)
            assert job.state is JobState.DONE, job.error
            assert job.trace is None
            assert service.job_trace_json(job) is None
            assert service.job_timeline_json(job) is None
        finally:
            service.drain_and_stop(10.0)

    def test_params_trace_opts_in_per_job(self):
        """params.trace traces one job on an otherwise untraced in-memory
        server (ephemeral spool dir, merged trace kept in memory)."""
        service = PipelineService(
            ServiceConfig(
                pool_workers=2, slots=1, capacity=8, batch_size=4,
                policy=FAST_POLICY, live_interval=0.05,
            )
        ).start(serve_http=False)
        try:
            job, decision = service.submit(
                "acme", "synthetic",
                {"iterations": 24, "spin": 200, "trace": True},
            )
            assert job is not None, decision.reason
            _wait_terminal(service, job)
            assert job.state is JobState.DONE, job.error
            trace = service.job_trace_json(job)
            assert trace is not None
            assert validate_chrome_trace(trace) == []
            # the ephemeral spool dir is cleaned up after the merge
            assert not os.path.exists(job.trace_dir)
        finally:
            service.drain_and_stop(10.0)

    def test_trace_param_must_be_boolean(self):
        service = PipelineService(
            ServiceConfig(
                pool_workers=2, slots=1, capacity=8, batch_size=4,
                policy=FAST_POLICY, live_interval=0.05,
            )
        )
        with pytest.raises(ValueError):
            service.submit("acme", "synthetic", {"trace": "yes"})
