"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.core.gantt import render_gantt
from repro.core.simulator import PipelineSimulator
from repro.core.tasks import Phase, Task, TaskGraph
from repro.hw.machine import MachineConfig


def simulate(iterations=10, cores=4):
    tasks = []
    index = 0
    for i in range(iterations):
        for phase, cost in (("A", 2), ("B", 20), ("C", 2)):
            tasks.append(Task(index, Phase(phase), i, cost))
            index += 1
    graph = TaskGraph(tasks)
    return graph, PipelineSimulator(MachineConfig(cores=cores)).simulate(graph)


class TestGantt:
    def test_all_cores_rendered(self):
        graph, result = simulate(cores=4)
        art = render_gantt(graph, result)
        for core in range(4):
            assert f"core   {core}" in art

    def test_phase_glyphs_on_right_rows(self):
        graph, result = simulate(cores=4)
        lines = render_gantt(graph, result).splitlines()
        a_row = next(l for l in lines if "(A)" in l)
        c_row = next(l for l in lines if "(C)" in l)
        assert "A" in a_row and "B" not in a_row
        assert "C" in c_row and "A" not in c_row

    def test_shared_core_labelled(self):
        graph, result = simulate(cores=2)
        art = render_gantt(graph, result)
        assert "(A+C)" in art

    def test_core_eliding(self):
        graph, result = simulate(iterations=40, cores=32)
        art = render_gantt(graph, result, max_cores=8)
        assert "elided" in art
        assert art.count("core ") == 8

    def test_empty_schedule(self):
        graph = TaskGraph([])
        result = PipelineSimulator(MachineConfig(cores=4)).simulate(graph)
        assert render_gantt(graph, result) == "(empty schedule)"

    def test_width_respected(self):
        graph, result = simulate()
        lines = render_gantt(graph, result, width=40).splitlines()
        for line in lines[1:]:
            bar = line.split("|")[1]
            assert len(bar) <= 41
