"""Tests for execution-based IR profiling (the IR route's profiling pass)."""

import pytest

from repro.core.framework import ParallelizationFramework
from repro.core.simulator import PipelineSimulator
from repro.hw.machine import MachineConfig
from repro.ir.builder import ProgramBuilder
from repro.ir.loops import find_loops
from repro.ir.profile_collector import collect_profiles
from repro.ir.types import IntType


def build_rare_conflict_loop(period=32, trip_count=640):
    """Per iteration: heavy pure compute; every ``period`` iterations a
    store+load pair touches a shared side table.  The loop-carried table
    dependence occurs on 1/period of iterations — an alias-speculation
    candidate only a profile can justify."""
    pb = ProgramBuilder("rare")
    table = pb.global_variable("side_table")
    out = pb.global_variable("out")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    i = fb.phi(IntType(64), [(0, "entry")], name="i")
    heavy = fb.mul(i, i, name="heavy", cost=60)
    rare = fb.binop("mod", i, period, name="rare")
    is_rare = fb.compare("eq", rare, 0, name="is_rare")
    fb.branch(is_rare, "touch", "skip")
    fb.block("touch")
    old = fb.load(table, [table], name="old", cost=2)
    fb.store(fb.add(old, heavy, name="bump"), table, [table], cost=2)
    fb.jump("skip")
    fb.block("skip")
    acc = fb.load(out, [out], name="acc", cost=1)
    fb.store(fb.add(acc, heavy, name="acc2"), out, [out], cost=1)
    next_i = fb.add(i, 1, name="next_i")
    phi = fb.function.block("loop").phis()[0]
    phi.operands.append(next_i)
    phi.incoming_blocks.append("skip")  # the latch block
    fb.branch(fb.compare("lt", next_i, trip_count, name="cond"), "loop", "exit")
    fb.block("exit")
    fb.ret(0)
    program = pb.finish()
    return program, find_loops(program.function("main")).outermost()


class TestCollectProfiles:
    def test_iteration_count(self):
        program, loop = build_rare_conflict_loop(trip_count=100)
        profiles = collect_profiles(program, loop)
        assert profiles.iterations == 100

    def test_branch_bias_observed(self):
        program, loop = build_rare_conflict_loop(period=32, trip_count=320)
        profiles = collect_profiles(program, loop)
        summary = profiles.branch_profile.summary("loop")
        # The is_rare branch (block "loop" terminator... block name is the
        # site): the rare branch block is "loop"; it is taken 1/32.
        assert summary.executions == 320
        assert summary.taken == 10

    def test_conflict_rate_matches_period(self):
        program, loop = build_rare_conflict_loop(period=32, trip_count=640)
        profiles = collect_profiles(program, loop)
        table_rates = [
            rate for (src, dst), rate in profiles.memory_conflict_rates.items()
        ]
        assert table_rates
        # The side-table RAW occurs on ~1/32 of iterations.
        assert any(abs(rate - 1 / 32) < 0.01 for rate in table_rates)

    def test_value_observations_scoped_to_loop(self):
        program, loop = build_rare_conflict_loop(trip_count=50)
        profiles = collect_profiles(program, loop)
        assert profiles.value_profile.predictability("heavy") < 0.5  # varies
        # The mod result is 0 only rarely; "is_rare" is highly predictable.
        assert profiles.value_profile.predictability("is_rare") > 0.9


class TestProfileGuidedPartitioning:
    def test_unprofiled_partition_cannot_speculate_table(self):
        program, loop = build_rare_conflict_loop()
        partition = ParallelizationFramework().parallelize_loop(program, loop)
        # Without a profile the carried table dependence stays; the heavy
        # mul still lands in a parallel stage but the touch block's accesses
        # serialize inside sequential stages.
        speedup = PipelineSimulator(MachineConfig(cores=16)).simulate(
            partition.task_graph(128)
        ).speedup
        assert speedup > 1.0  # it parallelizes *something*...

    def test_profiled_partition_speculates_and_wins(self):
        program, loop = build_rare_conflict_loop()
        framework = ParallelizationFramework()

        blind = framework.parallelize_loop(program, loop)
        program2, loop2 = build_rare_conflict_loop()
        guided = framework.parallelize_loop(
            program2, loop2, profile_arguments=[]
        )
        assert len(guided.decisions) > len(blind.decisions)
        assert guided.parallel_fraction >= blind.parallel_fraction

        blind_speedup = PipelineSimulator(MachineConfig(cores=16)).simulate(
            blind.task_graph(128)
        ).speedup
        guided_speedup = PipelineSimulator(MachineConfig(cores=16)).simulate(
            guided.task_graph(128)
        ).speedup
        assert guided_speedup >= blind_speedup

    def test_profiled_run_returns_program_result(self):
        program, loop = build_rare_conflict_loop(trip_count=10)
        profiles = collect_profiles(program, loop)
        assert profiles.return_value == 0
