"""Tests for repro.obs: the structured tracing layer.

The acceptance contract (ISSUE 4):

- percentile math is exact on known data and monotone/bounded under
  property-based inputs, with deterministic reservoir degradation;
- the merger recovers out-of-order records, truncated spools, torn slots,
  and crashed-worker begin markers (aborted spans) — loudly, never
  silently;
- a real 2-worker engine run round-trips through the Chrome trace-event
  export and back through :func:`load_and_validate` with span counts that
  match the committed work;
- a committer-side crash still leaves a merged post-mortem trace (the
  emergency-halt path closes the committer spool before re-raising);
- the predicted-vs-measured report renders for the bzip2 and parser
  analogs with a per-phase (A/B/C) relative error.
"""

import json
import os
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.exec import ExecutionEngine, PipelineSpec, run_sequential
from repro.obs import (
    EventKind,
    LatencyHistogram,
    TraceConfig,
    analyze_trace,
    format_report,
    load_and_validate,
    merge_spool_dir,
    merge_spools,
    open_tracer,
    percentile,
    read_spool,
    to_chrome_trace,
    validate_bottleneck,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.compare import compare_phases
from repro.obs.export import COMMITTED_ORDER_PID
from repro.obs.spool import HEADER_SIZE, RECORD_SIZE, SpoolWriter
from repro.resilience import ChaosConfig, run_chaos
from repro.workloads.suite import make_workload


# -- module-level stage functions (picklable across processes) ---------------------


def produce_five(i):
    return i * 5


def affine_work(i, value):
    return (value * 3 + i) % 997


def append_commit(i, result, acc):
    acc.setdefault("out", []).append((i, result))


def take_out(acc):
    return acc.get("out", [])


class CrashingCommit:
    def __init__(self, at):
        self.at = at

    def __call__(self, i, result, acc):
        if i == self.at:
            raise RuntimeError(f"injected engine crash at commit {i}")
        append_commit(i, result, acc)


def obs_spec(iterations=40, commit=append_commit):
    return PipelineSpec(
        iterations=iterations,
        produce=produce_five,
        work=affine_work,
        commit=commit,
        finalize=take_out,
    )


# -- percentile math ---------------------------------------------------------------


class TestPercentile:
    def test_exact_linear_interpolation(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == 2.5
        assert percentile(samples, 25) == 1.75
        # Order must not matter.
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.5

    def test_exact_odd_count_median_is_middle_element(self):
        assert percentile([5.0, 1.0, 9.0], 50) == 5.0

    def test_single_sample_and_errors(self):
        assert percentile([7.5], 99) == 7.5
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1, max_size=60,
        ),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    )
    @settings(deadline=None, max_examples=120)
    def test_bounded_and_monotone_in_q(self, samples, q1, q2):
        low, high = sorted((q1, q2))
        value_low = percentile(samples, low)
        value_high = percentile(samples, high)
        assert min(samples) <= value_low <= max(samples)
        assert value_low <= value_high

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e3, allow_nan=False),
            min_size=1, max_size=200,
        )
    )
    @settings(deadline=None, max_examples=60)
    def test_histogram_matches_free_function_while_exact(self, values):
        histogram = LatencyHistogram()
        histogram.extend(values)
        assert histogram.exact
        for q in (50, 90, 95, 99):
            assert histogram.percentile(q) == percentile(values, q)


class TestLatencyHistogram:
    def test_summary_shape(self):
        histogram = LatencyHistogram()
        histogram.extend([0.001, 0.002, 0.003, 0.010])
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["min"] == 0.001
        assert summary["max"] == 0.010
        assert summary["exact"] is True
        for key in ("p50", "p90", "p95", "p99"):
            assert key in summary
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_empty_summary_and_format(self):
        histogram = LatencyHistogram()
        assert histogram.summary() == {"count": 0}
        assert histogram.format_line() == "no samples"

    def test_reservoir_bounds_memory_and_stays_deterministic(self):
        first = LatencyHistogram(max_samples=64)
        second = LatencyHistogram(max_samples=64)
        stream = [((i * 37) % 1000) / 1000.0 for i in range(1000)]
        first.extend(stream)
        second.extend(stream)
        assert first.count == 1000
        assert len(first.samples) == 64
        assert not first.exact
        assert first.min_value == min(stream)
        assert first.max_value == max(stream)
        # Seeded reservoir: identical runs summarize identically.
        assert first.summary() == second.summary()


# -- spool files -------------------------------------------------------------------


def spool_config(tmp_path, max_events=64):
    return TraceConfig(spool_dir=str(tmp_path), max_events=max_events)


class TestSpool:
    def test_roundtrip_preserves_records_in_seq_order(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path), "worker-0")
        writer.span(EventKind.TASK_B, 1000, 2000, arg=7, arg2=0)
        writer.instant(EventKind.COMMIT, arg=7)
        writer.record(EventKind.QUEUE_GET_WAIT, 100, 400, detail=1)
        writer.close()
        data = read_spool(writer.path)
        assert data.role == "worker-0"
        assert data.pid == os.getpid()
        assert [record.seq for record in data.records] == [0, 1, 2]
        assert data.records[0].kind == EventKind.TASK_B
        assert data.records[0].t0_ns == 1000
        assert data.records[0].t1_ns == 2000
        assert data.records[0].arg == 7
        assert data.records[2].detail == 1
        assert data.dropped_events == 0
        assert data.corrupt_slots == 0
        assert not data.truncated

    def test_ring_overwrites_oldest_and_counts_drops(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path, max_events=16), "producer")
        for i in range(40):
            writer.span(EventKind.TASK_A, i * 10, i * 10 + 5, arg=i)
        writer.close()
        data = read_spool(writer.path)
        assert [record.seq for record in data.records] == list(range(24, 40))
        assert data.dropped_events == 24
        assert writer.dropped_events == 24
        assert os.path.getsize(writer.path) == HEADER_SIZE + 16 * RECORD_SIZE

    def test_truncated_tail_is_flagged_and_rest_recovered(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path), "worker-1")
        for i in range(5):
            writer.instant(EventKind.CLAIM, arg=i)
        writer.close()
        with open(writer.path, "ab") as handle:
            handle.write(b"\x07" * (RECORD_SIZE // 2))  # crash mid-write
        data = read_spool(writer.path)
        assert data.truncated
        assert len(data.records) == 5

    def test_torn_slot_is_counted_not_propagated(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path), "worker-2")
        for i in range(6):
            writer.instant(EventKind.COMMIT, arg=i)
        writer.close()
        with open(writer.path, "r+b") as handle:
            handle.seek(HEADER_SIZE + 2 * RECORD_SIZE)
            handle.write(struct.pack("<H", 0xDEAD))  # wrong slot magic
        data = read_spool(writer.path)
        assert data.corrupt_slots == 1
        assert [record.arg for record in data.records] == [0, 1, 3, 4, 5]

    def test_open_tracer_disabled_and_unwritable(self, tmp_path):
        assert open_tracer(None, "producer") is None
        disabled = TraceConfig(spool_dir=str(tmp_path), enabled=False)
        assert open_tracer(disabled, "producer") is None
        missing = TraceConfig(spool_dir=str(tmp_path / "does" / "not" / "exist"))
        assert open_tracer(missing, "producer") is None

    def test_config_rejects_tiny_ring(self, tmp_path):
        with pytest.raises(ValueError):
            TraceConfig(spool_dir=str(tmp_path), max_events=4)


# -- merging -----------------------------------------------------------------------


class TestMerge:
    def test_out_of_order_records_merge_sorted(self, tmp_path):
        late = SpoolWriter(spool_config(tmp_path), "worker-0")
        base = late.anchor.perf_ns
        # Written newest-first: the merger must repair ordering.
        late.span(EventKind.TASK_B, base + 20_000_000, base + 21_000_000, arg=3)
        late.span(EventKind.TASK_B, base + 10_000_000, base + 11_000_000, arg=1)
        late.close()
        early = SpoolWriter(spool_config(tmp_path), "producer")
        early.span(
            EventKind.TASK_A,
            early.anchor.perf_ns + 1_000_000,
            early.anchor.perf_ns + 1_100_000,
            arg=0,
        )
        early.close()
        merged = merge_spool_dir(str(tmp_path))
        starts = [span.start_ns for span in merged.spans]
        assert starts == sorted(starts)
        assert [span.arg for span in merged.spans] == [0, 1, 3]
        assert merged.aborted_spans == 0

    def test_unmatched_begin_becomes_aborted_span(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path), "worker-0")
        base = writer.anchor.perf_ns
        writer.record(EventKind.TASK_B_BEGIN, base, base, arg=5, arg2=0)
        # The process kept living a little, then died without a TASK_B.
        writer.record(EventKind.CLAIM, base + 2_000_000, base + 2_000_000, arg=6)
        writer.close()
        merged = merge_spool_dir(str(tmp_path))
        assert merged.aborted_spans == 1
        [aborted] = [span for span in merged.spans if span.aborted]
        assert aborted.kind == EventKind.TASK_B
        assert aborted.arg == 5
        # Closed at the spool's last known timestamp, not zero-length.
        assert aborted.duration_ns == 2_000_000

    def test_matched_begin_is_not_aborted(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path), "worker-0")
        base = writer.anchor.perf_ns
        writer.record(EventKind.TASK_B_BEGIN, base, base, arg=5)
        writer.span(EventKind.TASK_B, base, base + 1_000, arg=5)
        writer.close()
        merged = merge_spool_dir(str(tmp_path))
        assert merged.aborted_spans == 0
        assert merged.span_count == 1

    def test_truncated_spool_still_merges(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path), "committer")
        for i in range(4):
            writer.instant(EventKind.COMMIT, arg=i)
        writer.close()
        with open(writer.path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        merged = merge_spool_dir(str(tmp_path))
        assert merged.truncated_spools == 1
        assert len(merged.instants_of(EventKind.COMMIT)) == 4

    def test_unreadable_spool_is_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "garbage.spool"
        bad.write_bytes(b"not a spool at all")
        good = SpoolWriter(spool_config(tmp_path), "producer")
        good.instant(EventKind.COMMIT, arg=0)
        good.close()
        merged = merge_spools([str(bad), good.path])
        assert len(merged.unreadable_spools) == 1
        assert len(merged.spools) == 1

    def test_commit_lag_histogram_from_claim_commit_pairs(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path), "committer")
        base = writer.anchor.perf_ns
        for i in range(3):
            writer.record(EventKind.CLAIM, base + i * 1_000, base + i * 1_000, arg=i)
            writer.record(
                EventKind.COMMIT,
                base + i * 1_000 + 2_000_000,
                base + i * 1_000 + 2_000_000,
                arg=i,
            )
        writer.close()
        merged = merge_spool_dir(str(tmp_path))
        lag = merged.histograms["commit_lag"]
        assert lag.count == 3
        assert lag.percentile(50) == pytest.approx(0.002)


class TestMergeEdgeCases:
    """Degenerate spool directories the merger (and the analyzer riding on
    it) must survive: nothing recorded at all, a single-process run where
    every stage shares one spool, and service-only spools with no engine
    spans underneath."""

    def test_empty_spool_dir_merges_to_empty_trace(self, tmp_path):
        merged = merge_spool_dir(str(tmp_path))
        assert merged.spans == []
        assert merged.instants == []
        assert merged.duration_ns() == 0
        assert merged.unreadable_spools == []
        # Summary and analysis both degrade gracefully, never crash.
        assert "spans" in merged.format_summary()
        report = analyze_trace(merged)
        assert report.iterations == 0
        assert report.what_ifs == []
        assert validate_bottleneck(report.to_json()) == []

    def test_single_process_spool_covers_all_stages(self, tmp_path):
        # A degenerate single-process run: producer, worker, and committer
        # all share one spool (e.g. workers=0 fallback or in-process mode).
        writer = SpoolWriter(spool_config(tmp_path), "engine")
        base = writer.anchor.perf_ns
        ms = 1_000_000
        for i in range(3):
            t = base + i * 10 * ms
            writer.span(EventKind.TASK_A, t, t + ms, arg=i)
            writer.record(EventKind.CLAIM, t + ms, t + ms, arg=i, arg2=0)
            writer.span(EventKind.TASK_B, t + ms, t + 7 * ms, arg=i, arg2=0)
            writer.span(EventKind.TASK_C, t + 7 * ms, t + 8 * ms, arg=i)
            writer.record(EventKind.COMMIT, t + 8 * ms, t + 8 * ms, arg=i)
        writer.close()
        merged = merge_spool_dir(str(tmp_path))
        assert len(merged.spools) == 1
        assert len(merged.spans_of(EventKind.TASK_B)) == 3
        assert len(merged.instants_of(EventKind.COMMIT)) == 3
        # Histograms still build from the claim/commit pairs in one spool.
        assert merged.histograms["commit_lag"].count == 3
        report = analyze_trace(merged)
        assert report.iterations == 3
        assert validate_bottleneck(report.to_json()) == []

    def test_service_only_spans_merge_without_engine_series(self, tmp_path):
        writer = SpoolWriter(spool_config(tmp_path), "service")
        base = writer.anchor.perf_ns
        ms = 1_000_000
        writer.span(EventKind.ADMIT, base, base + ms, arg=1)
        writer.span(EventKind.QUEUE_WAIT, base + ms, base + 3 * ms, arg=1)
        writer.span(EventKind.SCHED_PICK, base + 3 * ms, base + 3 * ms + 100, arg=1)
        writer.close()
        merged = merge_spool_dir(str(tmp_path))
        assert merged.span_count == 3
        assert merged.spans_of(EventKind.TASK_B) == []
        assert merged.instants_of(EventKind.COMMIT) == []
        # No committed engine work: the analyzer reports an empty-but-valid
        # verdict instead of inventing a critical path.
        report = analyze_trace(merged)
        assert report.iterations == 0
        assert report.what_ifs == []
        assert validate_bottleneck(report.to_json()) == []


# -- engine round-trip through Perfetto-loadable export ----------------------------


class TestEngineTraceRoundTrip:
    def test_two_worker_run_round_trips(self, tmp_path):
        spool_dir = tmp_path / "spools"
        spool_dir.mkdir()
        sequential_output, _ = run_sequential(obs_spec())
        engine = ExecutionEngine(
            workers=2,
            capacity=8,
            trace=TraceConfig(spool_dir=str(spool_dir)),
        )
        result = engine.run(obs_spec())
        assert result.output == sequential_output
        assert result.metrics.commits == 40

        merged = merge_spool_dir(str(spool_dir))
        roles = set(merged.roles())
        assert {"producer", "committer", "worker-0", "worker-1"} <= roles
        # Span accounting matches the committed work.
        commits = merged.instants_of(EventKind.COMMIT)
        assert len(commits) == result.metrics.commits
        task_b = [
            span for span in merged.spans_of(EventKind.TASK_B)
            if not span.aborted
        ]
        assert len(task_b) == 40
        assert len(merged.spans_of(EventKind.TASK_A)) == 40
        assert len(merged.spans_of(EventKind.TASK_C)) == 40
        assert merged.histograms["task_b"].count == 40

        # Perfetto round-trip: written file loads and validates.
        path = str(tmp_path / "trace.json")
        write_chrome_trace(merged, path)
        trace = load_and_validate(path)
        events = trace["traceEvents"]
        by_phase = {}
        for event in events:
            by_phase.setdefault(event["ph"], []).append(event)
        # One process_name metadata record per traced process.
        names = {
            event["args"]["name"]
            for event in by_phase["M"]
            if event["name"] == "process_name"
        }
        assert {"producer", "committer", "worker-0", "worker-1"} <= names
        committed_track = [
            event for event in by_phase.get("X", [])
            if event["pid"] == COMMITTED_ORDER_PID
        ]
        assert len(committed_track) == result.metrics.commits
        assert trace["otherData"]["aborted_spans"] == merged.aborted_spans

    def test_live_latency_histograms_and_summary_lines(self):
        engine = ExecutionEngine(workers=2, capacity=8)
        result = engine.run(obs_spec())
        data = result.metrics.to_json()
        for series in ("task_a", "task_b", "task_c"):
            summary = data["latency_histograms"][series]
            assert summary["count"] == 40
            assert summary["p50"] <= summary["p95"] <= summary["p99"]
        summary_text = result.metrics.format_summary()
        assert "latency task_b" in summary_text
        assert "p95" in summary_text

    def test_committer_crash_leaves_postmortem_trace(self, tmp_path):
        """The emergency-halt path: a commit callback raising must reap the
        children and still close the committer spool for post-mortem."""
        spool_dir = tmp_path / "spools"
        spool_dir.mkdir()
        engine = ExecutionEngine(
            workers=2,
            capacity=8,
            trace=TraceConfig(spool_dir=str(spool_dir)),
        )
        with pytest.raises(RuntimeError, match="injected engine crash"):
            engine.run(obs_spec(commit=CrashingCommit(9)))
        merged = merge_spool_dir(str(spool_dir))
        assert "committer" in merged.roles()
        # Exactly the commits before the crash made it onto the timeline.
        assert len(merged.instants_of(EventKind.COMMIT)) == 9
        assert validate_chrome_trace(to_chrome_trace(merged)) == []

    def test_chaos_run_trace_survives_crashes(self, tmp_path):
        """Tracing's hardest customer: seeded chaos with worker crashes must
        still merge into a valid, loss-accounted timeline."""
        spool_dir = tmp_path / "spools"
        spool_dir.mkdir()
        report = run_chaos(
            obs_spec,
            1337,
            workers=3,
            capacity=8,
            config=ChaosConfig(latency_seconds=0.01),
            trace=TraceConfig(spool_dir=str(spool_dir)),
        )
        report.raise_on_violation()
        assert report.output_identical
        merged = merge_spool_dir(str(spool_dir))
        assert merged.robustness_events > 0
        assert len(merged.instants_of(EventKind.CHAOS)) > 0
        assert (
            len(merged.instants_of(EventKind.COMMIT))
            == report.result.metrics.commits
        )
        path = str(tmp_path / "chaos-trace.json")
        write_chrome_trace(merged, path)
        load_and_validate(path)


# -- predicted vs measured ---------------------------------------------------------


class TestCompareReport:
    @pytest.mark.parametrize("name", ["256.bzip2", "197.parser"])
    def test_report_renders_with_per_phase_error(self, name):
        config = FrameworkConfig().with_(thread_counts=(1, 4))
        evaluation = ParallelizationFramework(config).evaluate(
            make_workload(name)
        )
        graph = evaluation.graph
        simulation = evaluation.simulations[4]
        # Measured stage shares distorted from the prediction: the report
        # must surface a finite per-phase relative error, not explode.
        from repro.obs.compare import predicted_phase_units

        units = predicted_phase_units(graph)
        stage_seconds = {
            "A": units["A"] * 1.1e-6,
            "B": units["B"] * 0.9e-6,
            "C": units["C"] * 1.0e-6,
        }
        report = format_report(
            name, graph, simulation, stage_seconds, measured_speedup=1.8
        )
        assert f"predicted vs measured: {name}" in report
        assert "per-phase busy-time shares" in report
        assert "rel.error" in report
        assert "mean per-phase relative error" in report
        assert "speedup: predicted" in report
        for phase in ("A", "B", "C"):
            rows = [row for row in compare_phases(graph, stage_seconds)
                    if row.phase == phase]
            assert rows and rows[0].relative_error is not None

    def test_phase_shares_sum_to_one(self):
        config = FrameworkConfig().with_(thread_counts=(1, 4))
        evaluation = ParallelizationFramework(config).evaluate(
            make_workload("256.bzip2")
        )
        rows = compare_phases(
            evaluation.graph, {"A": 0.5, "B": 2.0, "C": 0.5}
        )
        assert sum(row.predicted_share for row in rows) == pytest.approx(1.0)
        assert sum(row.measured_share for row in rows) == pytest.approx(1.0)
