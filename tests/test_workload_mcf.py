"""Tests for the network-simplex solver and the mcf workload."""

import networkx as nx
import pytest

from repro.core.framework import ParallelizationFramework
from repro.workloads.generators import generate_flow_network
from repro.workloads.mcf_solver import LOWER, TREE, UPPER, NetworkSimplex
from repro.workloads.mcf_w import McfWorkload


def networkx_optimum(supplies, arcs):
    graph = nx.MultiDiGraph()
    for node, supply in enumerate(supplies):
        graph.add_node(node, demand=-supply)
    for tail, head, capacity, cost in arcs:
        graph.add_edge(tail, head, capacity=capacity, weight=cost)
    return nx.min_cost_flow_cost(graph)


class TestNetworkSimplex:
    def test_trivial_chain(self):
        solver = NetworkSimplex([5, 0, -5], [(0, 1, 10, 1), (1, 2, 10, 1)])
        assert solver.solve() == 10
        assert solver.artificial_flow() == 0
        assert solver.is_optimal()

    def test_prefers_cheap_route(self):
        arcs = [(0, 1, 10, 100), (0, 2, 10, 1), (2, 1, 10, 1)]
        solver = NetworkSimplex([4, -4, 0], arcs)
        assert solver.solve() == 8  # via node 2, not the direct expensive arc

    def test_capacity_forces_split(self):
        arcs = [(0, 1, 3, 1), (0, 1, 10, 5)]
        solver = NetworkSimplex([6, -6], arcs)
        assert solver.solve() == 3 * 1 + 3 * 5

    @pytest.mark.parametrize("seed,nodes", [(1, 12), (2, 20), (3, 40), (4, 60), (5, 100)])
    def test_matches_networkx(self, seed, nodes):
        supplies, arcs = generate_flow_network(seed, nodes, 4)
        solver = NetworkSimplex(supplies, arcs)
        assert solver.solve() == networkx_optimum(supplies, arcs)
        assert solver.artificial_flow() == 0

    def test_flow_conservation(self):
        supplies, arcs = generate_flow_network(7, 30, 4)
        solver = NetworkSimplex(supplies, arcs)
        solver.solve()
        balance = list(supplies)
        for arc in range(solver.real_arc_count):
            balance[solver.tail[arc]] -= solver.flow[arc]
            balance[solver.head[arc]] += solver.flow[arc]
        assert all(b == 0 for b in balance)

    def test_capacities_respected(self):
        supplies, arcs = generate_flow_network(8, 30, 4)
        solver = NetworkSimplex(supplies, arcs)
        solver.solve()
        for arc in range(solver.real_arc_count):
            assert 0 <= solver.flow[arc] <= solver.capacity[arc]

    def test_tree_arcs_have_zero_reduced_cost(self):
        supplies, arcs = generate_flow_network(9, 20, 4)
        solver = NetworkSimplex(supplies, arcs)
        solver.solve()
        for arc in range(len(solver.flow)):
            if solver.state[arc] == TREE:
                assert solver.reduced_cost(arc) == 0

    def test_optimality_conditions(self):
        """Complementary slackness at the optimum."""
        supplies, arcs = generate_flow_network(10, 25, 4)
        solver = NetworkSimplex(supplies, arcs)
        solver.solve()
        for arc in range(solver.real_arc_count):
            rc = solver.reduced_cost(arc)
            if solver.state[arc] == LOWER:
                assert rc >= 0
            elif solver.state[arc] == UPPER:
                assert rc <= 0

    def test_unbalanced_supplies_rejected(self):
        with pytest.raises(ValueError, match="sum to zero"):
            NetworkSimplex([1, 0], [(0, 1, 5, 1)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            NetworkSimplex([0, 0], [(1, 1, 5, 1)])

    def test_scan_chunk_finds_entering(self):
        supplies, arcs = generate_flow_network(11, 15, 3)
        solver = NetworkSimplex(supplies, arcs)
        best, violation, work = solver.scan_chunk(0, solver.real_arc_count)
        assert best is not None  # big-cost artificials make real arcs attractive
        assert violation > 0
        assert work == solver.real_arc_count


class TestMcfWorkload:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return ParallelizationFramework().evaluate(
            McfWorkload(nodes=60, arcs_per_node=6, max_rounds=120)
        )

    def test_reaches_true_optimum(self, evaluation):
        output = ParallelizationFramework().profile_workload(
            McfWorkload(nodes=60, arcs_per_node=6, max_rounds=120), False
        )[1]
        assert output["optimal"]
        assert output["artificial_flow"] == 0
        supplies, arcs = generate_flow_network(181, 60, 6)
        assert output["objective"] == networkx_optimum(supplies, arcs)

    def test_limited_scalability(self, evaluation):
        """mcf's signature: a low plateau (paper: 2.84x)."""
        assert 1.5 < evaluation.report.best_speedup < 6.0

    def test_pivot_synchronization_present(self, evaluation):
        assert ("simplex", "entering_choice") in (
            evaluation.plan.speculated | evaluation.plan.synchronized
        )
