"""Tests for the mini-C compiler front end (the gcc workload's substrate)."""

import pytest

from repro.ir.interp import Interpreter
from repro.workloads.gcc_compiler import (
    Lowerer,
    Parser,
    compile_function,
    generate_assembly,
    generate_source,
    tokenize,
)


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("func f(a) { x = a + 12; }")
        kinds = [k for k, _ in tokens]
        assert kinds[0] == "kw"
        assert ("name", "x") in tokens
        assert ("int", "12") in tokens
        assert ("sym", ";") in tokens

    def test_keywords_vs_names(self):
        tokens = tokenize("while whilex")
        assert tokens[0] == ("kw", "while")
        assert tokens[1] == ("name", "whilex")

    def test_unknown_character_rejected(self):
        with pytest.raises(SyntaxError):
            tokenize("x = 1 $ 2;")


class TestParser:
    def parse_one(self, source):
        return Parser(tokenize(source)).parse_unit()[0]

    def test_function_shape(self):
        ast = self.parse_one("func f(a, b) { return a + b; }")
        assert ast[0] == "function"
        assert ast[1] == "f"
        assert ast[2] == ["a", "b"]
        assert ast[3][0][0] == "return"

    def test_precedence_mul_over_add(self):
        ast = self.parse_one("func f(a) { x = a + 2 * 3; return x; }")
        assign = ast[3][0]
        _, _, expr = assign
        assert expr[0] == "bin" and expr[1] == "add"
        assert expr[3] == ("bin", "mul", ("const", 2), ("const", 3))

    def test_parentheses_override(self):
        ast = self.parse_one("func f(a) { x = (a + 2) * 3; return x; }")
        expr = ast[3][0][2]
        assert expr[1] == "mul"

    def test_if_else(self):
        ast = self.parse_one(
            "func f(a) { if (a > 3) { x = 1; } else { x = 2; } return x; }"
        )
        statement = ast[3][0]
        assert statement[0] == "if"
        assert statement[2] and statement[3]  # both branches present

    def test_missing_semicolon_rejected(self):
        with pytest.raises(SyntaxError):
            self.parse_one("func f(a) { x = 1 }")


class TestLoweringAndCodegen:
    def run_source(self, source, name, args):
        ast = next(a for a in Parser(tokenize(source)).parse_unit() if a[1] == name)
        function = Lowerer().lower(ast)
        return Interpreter(max_steps=1_000_000).run_function(function, list(args))

    def test_arithmetic(self):
        src = "func f(a, b) { x = a * 3 + b; return x; }"
        assert self.run_source(src, "f", (4, 5)) == 17

    def test_while_loop(self):
        src = (
            "func f(a, b) { t = 0; while (a > 0) { t = t + b; a = a - 1; } "
            "return t; }"
        )
        assert self.run_source(src, "f", (5, 7)) == 35

    def test_if_else_paths(self):
        src = "func f(a, b) { if (a > b) { r = a; } else { r = b; } return r; }"
        assert self.run_source(src, "f", (3, 9)) == 9
        assert self.run_source(src, "f", (10, 9)) == 10

    def test_comparison_result(self):
        src = "func f(a, b) { return a < b; }"
        assert self.run_source(src, "f", (1, 2)) == 1
        assert self.run_source(src, "f", (2, 1)) == 0

    def test_generated_functions_all_compile_and_run(self):
        unit = Parser(tokenize(generate_source(99, 8))).parse_unit()
        for ast in unit:
            assembly, stats, work = compile_function(ast, 0)
            assert assembly[1].endswith(":")
            assert stats["size_after"] <= stats["size_before"]
            assert work > 0

    def test_label_numbering_is_function_local(self):
        """The paper's label_num fix: labels are (function, number) pairs."""
        src = "func f(a) { return a; } func g(a) { return a; }"
        unit = Parser(tokenize(src)).parse_unit()
        asm_f, _ = generate_assembly(Lowerer().lower(unit[0]), 0)
        asm_g, _ = generate_assembly(Lowerer().lower(unit[1]), 1)
        labels_f = [l for l in asm_f if l.startswith(".L")]
        labels_g = [l for l in asm_g if l.startswith(".L")]
        assert labels_f and labels_g
        assert all(l.startswith(".L0_") for l in labels_f)
        assert all(l.startswith(".L1_") for l in labels_g)

    def test_source_generator_deterministic_and_skewed(self):
        src = generate_source(7, 30)
        assert src == generate_source(7, 30)
        sizes = [len(f.splitlines()) for f in src.split("\n\n")]
        assert max(sizes) > 3 * min(sizes)  # the heavy tail gcc's profile shows
