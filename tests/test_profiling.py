"""Tests for the tracer and the profile condensers."""

import pytest

from repro.profiling.branch_profile import BranchProfile
from repro.profiling.context import activate, current_tracer
from repro.profiling.loop_profile import LoopProfile
from repro.profiling.memory_profile import MemoryProfile
from repro.profiling.tracer import Tracer
from repro.profiling.value_profile import ValueProfile


def trace_simple(iterations=4):
    tracer = Tracer()
    for i in range(iterations):
        with tracer.task("A", i):
            tracer.work(2)
            tracer.store("block", i, value=i)
        with tracer.task("B", i):
            tracer.load("block", i)
            tracer.work(10)
            tracer.store("out", i, value=i)
        with tracer.task("C", i):
            tracer.load("out", i)
            tracer.work(1)
    return tracer.finish()


class TestTracer:
    def test_task_costs_accumulate(self):
        trace = trace_simple()
        assert trace.total_cost == 4 * 13
        assert trace.tasks_in_phase("B")[0].cost == 10

    def test_tasks_cannot_nest(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="nest"):
            with tracer.task("A", 0):
                with tracer.task("B", 0):
                    pass

    def test_invalid_phase_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.task("D", 0):
                pass

    def test_work_outside_task_rejected(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            tracer.work(1)

    def test_finish_with_open_task_rejected(self):
        tracer = Tracer()
        manager = tracer.task("A", 0)
        manager.__enter__()
        with pytest.raises(RuntimeError, match="still open"):
            tracer.finish()

    def test_commutative_sections_accumulate_cost(self):
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(5)
            with tracer.commutative("alloc"):
                tracer.work(3)
        trace = tracer.finish()
        assert trace.section_costs == {(0, "alloc"): 3}
        assert trace.tasks[0].cost == 8

    def test_context_activation(self):
        tracer = Tracer()
        assert current_tracer() is None
        with activate(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is None


class TestMemoryProfile:
    def test_raw_dependence_detected(self):
        trace = trace_simple()
        profile = MemoryProfile(trace)
        kinds = {d.kind for d in profile.dependences}
        assert "raw" in kinds

    def test_same_iteration_dependences_not_cross(self):
        trace = trace_simple()
        profile = MemoryProfile(trace)
        # block/out locations are iteration-private here.
        assert profile.cross_iteration_dependences() == []

    def test_cross_iteration_raw(self):
        tracer = Tracer()
        for i in range(3):
            with tracer.task("B", i):
                tracer.load("shared", 0)
                tracer.work(1)
                tracer.store("shared", 0, value=i)
        profile = MemoryProfile(tracer.finish())
        cross = profile.cross_iteration_raw()
        assert {(d.source_index, d.target_index) for d in cross} == {(0, 1), (1, 2)}

    def test_silent_store_not_a_raw_source(self):
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(1)
            tracer.store("flag", 0, value=7)
        with tracer.task("B", 1):
            tracer.work(1)
            tracer.store("flag", 0, value=7)  # silent: same value
        with tracer.task("B", 2):
            tracer.work(1)
            tracer.load("flag", 0)
        profile = MemoryProfile(tracer.finish())
        raw = [d for d in profile.dependences if d.kind == "raw"]
        assert {(d.source_index, d.target_index) for d in raw} == {(0, 2)}

    def test_commutative_accesses_create_no_dependences(self):
        tracer = Tracer()
        for i in range(3):
            with tracer.task("B", i):
                tracer.work(1)
                with tracer.commutative("rng"):
                    tracer.load("seed", 0)
                    tracer.store("seed", 0, value=i)
        profile = MemoryProfile(tracer.finish())
        assert profile.dependences == []
        assert profile.commutative_sections["rng"] == [0, 1, 2]

    def test_commutative_ablation_restores_dependences(self):
        tracer = Tracer()
        for i in range(3):
            with tracer.task("B", i):
                tracer.work(1)
                with tracer.commutative("rng"):
                    tracer.load("seed", 0)
                    tracer.store("seed", 0, value=i)
        profile = MemoryProfile(tracer.finish(), honor_commutative=False)
        assert profile.dependences

    def test_location_accessors_ordered(self):
        tracer = Tracer()
        for i in range(3):
            with tracer.task("B", i):
                tracer.work(1)
                tracer.load("shared", "k")
        profile = MemoryProfile(tracer.finish())
        assert profile.location_accessors[("shared", "k")] == [0, 1, 2]

    def test_waw_and_war(self):
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(1)
            tracer.store("x", 0, value=1)
        with tracer.task("B", 1):
            tracer.work(1)
            tracer.load("x", 0)
        with tracer.task("B", 2):
            tracer.work(1)
            tracer.store("x", 0, value=2)
        profile = MemoryProfile(tracer.finish())
        kinds = {(d.kind, d.source_index, d.target_index) for d in profile.dependences}
        assert ("waw", 0, 2) in kinds
        assert ("war", 1, 2) in kinds


class TestValueAndBranchProfiles:
    def test_value_predictability(self):
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(1)
            for i in range(99):
                tracer.value("PL_stack_sp", 0xBEEF)
            tracer.value("PL_stack_sp", 0xDEAD)
        profile = ValueProfile(tracer.finish())
        assert profile.predictability("PL_stack_sp") == 0.99
        assert profile.predicted_value("PL_stack_sp") == 0xBEEF
        assert profile.speculation_candidates(threshold=0.95)

    def test_unknown_site_has_zero_predictability(self):
        profile = ValueProfile(trace_simple())
        assert profile.predictability("nope") == 0.0
        assert profile.predicted_value("nope") is None

    def test_branch_bias(self):
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(1)
            for i in range(100):
                tracer.branch("next_time_check", taken=(i == 0))
        profile = BranchProfile(tracer.finish())
        summary = profile.summary("next_time_check")
        assert summary.bias == 0.99
        assert summary.executions == 100
        assert profile.speculation_candidates(threshold=0.99)

    def test_ybranch_flag_propagates(self):
        tracer = Tracer()
        with tracer.task("A", 0):
            tracer.work(1)
            tracer.branch("gzip.block", taken=True, is_ybranch=True)
        profile = BranchProfile(tracer.finish())
        assert profile.summary("gzip.block").is_ybranch


class TestLoopProfile:
    def test_phase_stats(self):
        profile = LoopProfile(trace_simple(iterations=10))
        stats = profile.phase_stats("B")
        assert stats.task_count == 10
        assert stats.total_cost == 100
        assert stats.mean_cost == 10
        assert stats.coefficient_of_variation == 0.0

    def test_parallel_fraction(self):
        profile = LoopProfile(trace_simple())
        assert profile.parallel_fraction() == pytest.approx(10 / 13)

    def test_pipeline_bound(self):
        profile = LoopProfile(trace_simple(iterations=10))
        # total = 130; serial bottleneck = max(sum A, sum C) = 20
        assert profile.pipeline_bound() == pytest.approx(130 / 20)

    def test_empty_phase(self):
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(1)
        profile = LoopProfile(tracer.finish())
        assert profile.phase_stats("A").task_count == 0
        assert profile.phase_stats("A").mean_cost == 0
