"""Integration tests: the full framework pipeline on both front doors."""

import pytest

from repro.core.framework import (
    DEFAULT_THREAD_COUNTS,
    FrameworkConfig,
    ParallelizationFramework,
)
from repro.core.simulator import PipelineSimulator
from repro.hw.machine import MachineConfig
from repro.ir.loops import find_loops
from repro.profiling.tracer import Tracer
from repro.tls.scheduler import simulate_tls
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.suite import SUITE, make_workload, suite_names


class ToyWorkload(Workload):
    """A controllable pipeline: mostly parallel B with one hot location."""

    info = WorkloadInfo("toy", ("loop",), "100%", 0, 0, ("DSWP",))

    def __init__(self, iterations=60, conflict_every=10):
        self.iterations = iterations
        self.conflict_every = conflict_every

    def run(self, tracer):
        total = 0
        for i in range(self.iterations):
            with tracer.task("A", i):
                tracer.work(2)
                tracer.store("input", i, value=i)
            with tracer.task("B", i):
                tracer.load("input", i)
                tracer.work(60)
                if self.conflict_every and i % self.conflict_every == 0:
                    tracer.load("hot", 0)
                    tracer.store("hot", 0, value=i)
                tracer.store("result", i, value=i * 2)
            with tracer.task("C", i):
                tracer.load("result", i)
                total += i * 2
                tracer.work(2)
        return total


class TestTraceRoute:
    def test_evaluation_structure(self):
        evaluation = ParallelizationFramework().evaluate(ToyWorkload())
        assert set(evaluation.report.curve) == set(DEFAULT_THREAD_COUNTS)
        assert evaluation.report.curve[1] == pytest.approx(1.0)
        assert evaluation.output_comparison.equivalent

    def test_speculation_chosen_for_rare_conflict(self):
        evaluation = ParallelizationFramework().evaluate(ToyWorkload())
        assert ("hot", 0) in evaluation.plan.speculated

    def test_speedup_monotone_enough(self):
        evaluation = ParallelizationFramework().evaluate(ToyWorkload())
        curve = evaluation.report.curve
        assert curve[8] > curve[2]
        assert curve[32] >= curve[8] * 0.9

    def test_speculation_ablation_not_faster(self):
        base = ParallelizationFramework().evaluate(ToyWorkload())
        no_spec = ParallelizationFramework(
            FrameworkConfig(enable_speculation=False)
        ).evaluate(ToyWorkload())
        assert no_spec.report.best_speedup <= base.report.best_speedup + 1e-9

    def test_iteration_private_locations_free(self):
        evaluation = ParallelizationFramework().evaluate(
            ToyWorkload(conflict_every=0)
        )
        assert evaluation.misspeculation.rate == 0.0
        assert evaluation.report.best_speedup > 10

    def test_sequential_baseline_cost(self):
        evaluation = ParallelizationFramework().evaluate(ToyWorkload(iterations=10))
        assert evaluation.sequential_cost == 10 * 64


class TestSuite:
    def test_all_eleven_present(self):
        assert len(SUITE) == 11
        assert sorted(suite_names()) == suite_names()

    def test_factories_produce_fresh_instances(self):
        first = make_workload("256.bzip2")
        second = make_workload("256.bzip2")
        assert first is not second

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            make_workload("999.nope")

    @pytest.mark.parametrize("name", ["256.bzip2", "300.twolf", "253.perlbmk"])
    def test_workload_evaluations_deterministic(self, name):
        first = ParallelizationFramework().evaluate(make_workload(name))
        second = ParallelizationFramework().evaluate(make_workload(name))
        assert first.report.curve == second.report.curve

    def test_table1_metadata_complete(self):
        for name in suite_names():
            info = make_workload(name).info
            assert info.name == name
            assert info.loops
            assert info.techniques
            # Note: Table 1's crafty row has All=0 but Model=9, so the two
            # columns are independent counts, not a superset relation.
            assert info.lines_changed_all >= 0
            assert info.lines_changed_model >= 0


class TestIrRoute:
    def test_partition_and_simulate(self, pipeline_program, pipeline_loop):
        framework = ParallelizationFramework()
        partition = framework.parallelize_loop(pipeline_program, pipeline_loop)
        graph = partition.task_graph(128)
        result = framework.simulate_graph(graph, 16)
        assert result.speedup > 5

    def test_tls_and_dswp_agree_on_shape(self, pipeline_program, pipeline_loop):
        """Section 3.2: TLS-style plans give 'similar parallelizations'."""
        framework = ParallelizationFramework()
        partition = framework.parallelize_loop(pipeline_program, pipeline_loop)
        graph = partition.task_graph(128)
        dswp = framework.simulate_graph(graph, 16)
        tls = simulate_tls(graph, MachineConfig(cores=16))
        assert tls.speedup > 5
        assert 0.4 < dswp.speedup / tls.speedup < 2.5


class TestPolicies:
    def test_ybranch_policy_restored_after_evaluation(self):
        from repro.annotations.registry import global_registry
        from repro.annotations.ybranch import YBranchPolicy
        from repro.workloads.gzip_w import GzipWorkload

        workload = GzipWorkload(size=32 * 1024, block_interval=4096)
        ParallelizationFramework().evaluate(workload)
        assert workload.ybranch.policy is YBranchPolicy.SEQUENTIAL

    def test_profile_workload_runs_outside_parallel_policy(self):
        workload = ToyWorkload(iterations=5)
        trace, output = ParallelizationFramework().profile_workload(workload, False)
        assert output == sum(i * 2 for i in range(5))
        assert trace.iteration_count == 5
