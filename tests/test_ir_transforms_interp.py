"""Tests for the IR interpreter and the optimization passes."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.interp import Interpreter, InterpreterError, run_program
from repro.ir.transforms import (
    common_subexpression_elimination,
    constant_fold,
    eliminate_dead_code,
    run_pass_pipeline,
    simplify_branches,
)
from repro.ir.types import IntType
from repro.workloads.gcc_compiler import Lowerer, Parser, generate_source, tokenize


def build_abs_function():
    pb = ProgramBuilder()
    fb = pb.function("abs", [IntType(64)], ["x"])
    fb.block("entry")
    negative = fb.compare("lt", fb.param(0), 0, name="negative")
    fb.branch(negative, "flip", "keep")
    fb.block("flip")
    flipped = fb.unop("neg", fb.param(0), name="flipped")
    fb.ret(flipped)
    fb.block("keep")
    fb.ret(fb.param(0))
    return pb.finish()


class TestInterpreter:
    def test_branches_and_arithmetic(self):
        program = build_abs_function()
        assert run_program(program, [-7], function="abs") == 7
        assert run_program(program, [9], function="abs") == 9

    def test_memory_roundtrip(self, counter_program):
        result = run_program(counter_program, [])
        # Loop increments @counter from 0 until it reaches 100.
        interp = Interpreter(counter_program)
        interp.run_function(counter_program.function("main"), [])
        assert interp.memory[("counter", None)] == 100

    def test_loop_with_phi(self, pipeline_program):
        interp = Interpreter(pipeline_program, max_steps=100_000)
        interp.run_function(pipeline_program.function("main"), [])
        # sum of squares of @data (always 0 here) — just check termination
        assert interp.steps > 1000

    def test_call_dispatch(self):
        pb = ProgramBuilder()
        double = pb.function("double", [IntType(64)], ["x"])
        double.block("entry")
        double.ret(double.mul(double.param(0), 2))
        fb = pb.function("main")
        fb.block("entry")
        call = fb.call("double", [21])
        fb.ret(call.result)
        program = pb.finish()
        program.set_main("main")
        assert run_program(program) == 42

    def test_step_budget(self):
        pb = ProgramBuilder()
        fb = pb.function("spin")
        fb.block("entry")
        fb.jump("entry2")
        fb.block("entry2")
        fb.jump("entry")
        program = pb.finish()
        with pytest.raises(InterpreterError, match="budget"):
            Interpreter(program, max_steps=100).run_function(
                program.function("spin"), []
            )

    def test_wrong_arity_rejected(self):
        program = build_abs_function()
        with pytest.raises(InterpreterError, match="arguments"):
            run_program(program, [1, 2], function="abs")

    def test_ybranch_sequential_vs_forced(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [IntType(64)], ["x"])
        fb.block("entry")
        cond = fb.compare("gt", fb.param(0), 100, name="cond")
        fb.ybranch(cond, "big", "small", probability=0.5)
        fb.block("big")
        fb.ret(1)
        fb.block("small")
        fb.ret(0)
        program = pb.finish()
        assert run_program(program, [5], function="f") == 0
        forced = Interpreter(program, ybranch_forced_true=lambda yb, n: True)
        assert forced.run_function(program.function("f"), [5]) == 1


class TestPasses:
    def test_constant_fold_chain(self):
        pb = ProgramBuilder()
        fb = pb.function("f")
        fb.block("entry")
        a = fb.add(2, 3)
        b = fb.mul(a, 4)
        fb.ret(b)
        program = pb.finish()
        function = program.function("f")
        assert constant_fold(function) == 2
        ret = next(i for i in function.instructions() if i.opcode() == "return")
        assert ret.value.value == 20

    def test_dce_removes_unused(self):
        pb = ProgramBuilder()
        g = pb.global_variable("g")
        fb = pb.function("f")
        fb.block("entry")
        fb.add(1, 2)            # dead
        kept = fb.load(g, [g])  # dead load, also removable
        fb.ret(0)
        function = pb.finish().function("f")
        removed = eliminate_dead_code(function)
        assert removed == 2
        assert [i.opcode() for i in function.instructions()] == ["return"]

    def test_dce_keeps_stores(self):
        pb = ProgramBuilder()
        g = pb.global_variable("g")
        fb = pb.function("f")
        fb.block("entry")
        fb.store(1, g, [g])
        fb.ret(0)
        function = pb.finish().function("f")
        assert eliminate_dead_code(function) == 0

    def test_cse_merges_duplicates(self):
        pb = ProgramBuilder()
        fb = pb.function("f", [IntType(64)], ["x"])
        fb.block("entry")
        a = fb.mul(fb.param(0), 3)
        b = fb.mul(fb.param(0), 3)
        c = fb.add(a, b)
        fb.ret(c)
        function = pb.finish().function("f")
        assert common_subexpression_elimination(function) == 1

    def test_branch_simplification(self):
        pb = ProgramBuilder()
        fb = pb.function("f")
        fb.block("entry")
        cond = fb.compare("lt", 1, 2)
        fb.branch(cond, "a", "b")
        fb.block("a")
        fb.ret(1)
        fb.block("b")
        fb.ret(0)
        function = pb.finish().function("f")
        constant_fold(function)
        assert simplify_branches(function) == 1
        assert function.block("entry").terminator.opcode() == "jump"

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_pipeline_preserves_semantics(self, seed):
        """The gcc analog's core guarantee: optimized == unoptimized."""
        unit = Parser(tokenize(generate_source(seed, 5))).parse_unit()
        for ast in unit:
            reference = Lowerer().lower(ast)
            optimized = Lowerer().lower(ast)
            run_pass_pipeline(optimized)
            for args in ((0, 0), (3, 4), (25, 13)):
                expected = Interpreter(max_steps=3_000_000).run_function(
                    reference, list(args)
                )
                actual = Interpreter(max_steps=3_000_000).run_function(
                    optimized, list(args)
                )
                assert expected == actual

    def test_pipeline_shrinks_code(self):
        unit = Parser(tokenize(generate_source(3, 8))).parse_unit()
        shrunk = 0
        for ast in unit:
            function = Lowerer().lower(ast)
            before = sum(1 for _ in function.instructions())
            run_pass_pipeline(function)
            after = sum(1 for _ in function.instructions())
            assert after <= before
            shrunk += before - after
        assert shrunk > 0
