"""Tests for DSWP inter-stage communication estimation (queue sizing)."""

import pytest

from repro.core.framework import ParallelizationFramework
from repro.dswp.partition import partition_loop
from repro.hw.machine import MachineConfig


class TestCommunicationSummary:
    def test_pipeline_loop_traffic(self, pipeline_program, pipeline_loop):
        partition = partition_loop(pipeline_program, pipeline_loop)
        summary = partition.communication_summary()
        # Something must flow A->B (the induction state feeds the body) and
        # B->C (the computed value feeds the accumulator).
        assert any(pair[1] == "B" for pair in summary)
        assert any(pair == ("B", "C") for pair in summary)
        assert all(count >= 1 for count in summary.values())

    def test_traffic_only_forward(self, pipeline_program, pipeline_loop):
        partition = partition_loop(pipeline_program, pipeline_loop)
        order = {"A": 0, "B": 1, "C": 2}
        for source_phase, target_phase in partition.communication_summary():
            # Loop-carried edges may point backward (next iteration), but
            # phases must still exist in the plan.
            assert source_phase in order and target_phase in order

    def test_queues_scale_with_replication(self, pipeline_program, pipeline_loop):
        partition = partition_loop(pipeline_program, pipeline_loop)
        narrow = partition.queues_required(replication_width=1)
        wide = partition.queues_required(replication_width=30)
        assert wide > narrow
        # The default machine's 256 queues accommodate full 30-wide
        # replication for this loop — the paper's configuration is ample.
        assert wide <= MachineConfig().queue_count

    def test_whole_program_example_fits_queue_budget(self):
        from repro.testing import build_caller_callee_loop

        program, loop = build_caller_callee_loop()
        partition = ParallelizationFramework().parallelize_loop(
            program, loop, inline_calls=True
        )
        assert partition.queues_required(30) <= 256
