"""Tests for SSA construction (mem2reg) and loop-invariant code motion."""

import pytest

from repro.analysis.dominators import DominatorTree
from repro.ir.builder import ProgramBuilder
from repro.ir.interp import Interpreter
from repro.ir.loops import find_loops
from repro.ir.ssa import (
    hoist_loop_invariants,
    promotable_objects,
    promote_memory_to_registers,
)
from repro.ir.types import IntType
from repro.ir.values import MemoryObject
from repro.workloads.gcc_compiler import Lowerer, Parser, generate_source, tokenize


def lower(source, name=None):
    unit = Parser(tokenize(source)).parse_unit()
    ast = unit[0] if name is None else next(a for a in unit if a[1] == name)
    return Lowerer().lower(ast)


class TestDominanceFrontier:
    def test_diamond_frontier_is_join(self):
        pb = ProgramBuilder()
        g = pb.global_variable("g")
        fb = pb.function("main")
        fb.block("entry")
        fb.branch(fb.compare("lt", fb.load(g, [g]), 1), "then", "else")
        fb.block("then")
        fb.jump("join")
        fb.block("else")
        fb.jump("join")
        fb.block("join")
        fb.ret()
        fn = pb.finish().function("main")
        frontier = DominatorTree(fn).frontier()
        assert frontier["then"] == ["join"]
        assert frontier["else"] == ["join"]
        assert frontier["join"] == []

    def test_loop_header_in_own_frontier(self, counter_program):
        fn = counter_program.function("main")
        frontier = DominatorTree(fn).frontier()
        assert "loop" in frontier["loop"]

    def test_dominator_children(self, counter_program):
        fn = counter_program.function("main")
        dom = DominatorTree(fn)
        assert dom.children("entry") == ["loop"]
        assert dom.children("loop") == ["exit"]


class TestPromotability:
    def test_direct_local_promotable(self):
        function = lower("func f(a) { x = a + 1; return x; }")
        names = {obj.name for obj in promotable_objects(function)}
        assert "f.x" in names
        assert "f.a" in names

    def test_escaping_address_not_promotable(self):
        pb = ProgramBuilder()
        slot = MemoryObject("slot")
        escape = pb.global_variable("escape")
        fb = pb.function("main")
        fb.block("entry")
        fb.store(1, slot, [slot])
        fb.store(slot, escape, [escape])  # address escapes
        fb.ret()
        function = pb.finish().function("main")
        assert promotable_objects(function) == []


class TestMem2Reg:
    def test_removes_all_local_memory_traffic(self):
        function = lower("func f(a, b) { x = a + b; y = x * 2; return y; }")
        promoted = promote_memory_to_registers(function)
        assert promoted >= 3  # a, b, x (y too)
        opcodes = [i.opcode() for i in function.instructions()]
        assert "load" not in opcodes
        assert "store" not in opcodes

    def test_straightline_semantics_preserved(self):
        source = "func f(a, b) { x = a * 3 + b; return x; }"
        reference = lower(source)
        promoted = lower(source)
        promote_memory_to_registers(promoted)
        for args in ((0, 0), (4, 5), (100, 1)):
            expected = Interpreter().run_function(reference, list(args))
            actual = Interpreter().run_function(promoted, list(args))
            assert expected == actual

    def test_diamond_gets_phi(self):
        source = (
            "func f(a, b) { if (a > b) { r = a; } else { r = b; } return r; }"
        )
        function = lower(source)
        promote_memory_to_registers(function)
        phis = [i for i in function.instructions() if i.opcode() == "phi"]
        assert phis
        for args in ((3, 9), (9, 3), (5, 5)):
            assert Interpreter().run_function(lower(source), list(args)) == \
                Interpreter(max_steps=100000).run_function(function, list(args))

    def test_loop_gets_phi_and_preserves_semantics(self):
        source = (
            "func f(a, b) { t = 0; while (a > 0) { t = t + b; a = a - 1; } "
            "return t; }"
        )
        function = lower(source)
        promote_memory_to_registers(function)
        header_phis = [i for i in function.instructions() if i.opcode() == "phi"]
        assert header_phis
        for args in ((0, 5), (3, 7), (10, 2)):
            expected = Interpreter(max_steps=100000).run_function(lower(source), list(args))
            actual = Interpreter(max_steps=100000).run_function(function, list(args))
            assert expected == actual

    @pytest.mark.parametrize("seed", [2, 11, 41])
    def test_generated_functions_preserved(self, seed):
        unit = Parser(tokenize(generate_source(seed, 4))).parse_unit()
        for ast in unit:
            reference = Lowerer().lower(ast)
            promoted = Lowerer().lower(ast)
            promote_memory_to_registers(promoted)
            promoted.verify()
            for args in ((1, 2), (6, 3)):
                expected = Interpreter(max_steps=3_000_000).run_function(
                    reference, list(args)
                )
                actual = Interpreter(max_steps=3_000_000).run_function(
                    promoted, list(args)
                )
                assert expected == actual

    def test_promotion_enables_more_parallelism(self):
        """mem2reg turns false memory deps into scalar dataflow: the PDG
        should lose memory edges for promoted locals."""
        from repro.ir.program import Program
        from repro.pdg.builder import build_loop_pdg

        source = (
            "func f(a, b) { t = 0; while (a > 0) { t = t + b; a = a - 1; } "
            "return t; }"
        )
        baseline_fn = lower(source)
        baseline_prog = Program("base")
        baseline_prog.add_function(baseline_fn)
        baseline_loop = find_loops(baseline_fn).outermost()
        baseline_pdg = build_loop_pdg(baseline_prog, baseline_loop)
        baseline_mem = len([e for e in baseline_pdg.edges if e.kind == "memory"])

        promoted_fn = lower(source)
        promote_memory_to_registers(promoted_fn)
        promoted_prog = Program("ssa")
        promoted_prog.add_function(promoted_fn)
        promoted_loop = find_loops(promoted_fn).outermost()
        promoted_pdg = build_loop_pdg(promoted_prog, promoted_loop)
        promoted_mem = len([e for e in promoted_pdg.edges if e.kind == "memory"])

        assert promoted_mem < baseline_mem


class TestFullCompilePipeline:
    @pytest.mark.parametrize("seed", [2, 11, 41])
    def test_mem2reg_plus_passes_preserve_semantics(self, seed):
        """The gcc workload's actual compile path: mem2reg then the scalar
        pass pipeline, validated against unoptimized execution."""
        from repro.ir.transforms import run_pass_pipeline

        unit = Parser(tokenize(generate_source(seed, 4))).parse_unit()
        for ast in unit:
            reference = Lowerer().lower(ast)
            optimized = Lowerer().lower(ast)
            promote_memory_to_registers(optimized)
            run_pass_pipeline(optimized)
            optimized.verify()
            for args in ((1, 2), (6, 3)):
                expected = Interpreter(max_steps=3_000_000).run_function(
                    reference, list(args)
                )
                actual = Interpreter(max_steps=3_000_000).run_function(
                    optimized, list(args)
                )
                assert expected == actual

    def test_mem2reg_makes_passes_stronger(self):
        """Promoted locals let constant folding reach through variables."""
        from repro.ir.transforms import run_pass_pipeline

        source = "func f(a, b) { x = 2; y = x * 3; z = y + 4; return z; }"
        plain = lower(source)
        run_pass_pipeline(plain)
        plain_size = sum(1 for _ in plain.instructions())

        promoted = lower(source)
        promote_memory_to_registers(promoted)
        run_pass_pipeline(promoted)
        promoted_size = sum(1 for _ in promoted.instructions())
        assert promoted_size < plain_size
        # Through SSA the whole chain folds to the constant 10.
        ret = next(i for i in promoted.instructions() if i.opcode() == "return")
        from repro.ir.values import Constant

        assert isinstance(ret.value, Constant) and ret.value.value == 10


class TestLoopInvariantCodeMotion:
    def build_loop_with_invariant(self):
        pb = ProgramBuilder()
        g = pb.global_variable("g")
        fb = pb.function("main", [IntType(64)], ["n"])
        fb.block("entry")
        fb.jump("loop")
        fb.block("loop")
        invariant = fb.mul(fb.param(0), 7, name="invariant", cost=10)
        value = fb.load(g, [g], name="value")
        fb.store(fb.add(value, invariant), g, [g])
        cond = fb.compare("lt", value, 100, name="cond")
        fb.branch(cond, "loop", "exit")
        fb.block("exit")
        fb.ret()
        program = pb.finish()
        return program.function("main")

    def test_invariant_hoisted_to_preheader(self):
        function = self.build_loop_with_invariant()
        loop = find_loops(function).outermost()
        hoisted = hoist_loop_invariants(function, loop)
        assert hoisted == 1
        function.verify()
        preheader = function.block("loop.preheader")
        assert any(i.opcode() == "mul" for i in preheader.instructions)
        loop_after = find_loops(function).loop_with_header("loop")
        assert all(i.opcode() != "mul" for i in loop_after.instructions())

    def test_licm_preserves_semantics(self):
        reference = self.build_loop_with_invariant()
        transformed = self.build_loop_with_invariant()
        loop = find_loops(transformed).outermost()
        hoist_loop_invariants(transformed, loop)
        for n in (1, 3, 12):
            memory_a = {}
            memory_b = {}
            Interpreter(memory=memory_a, max_steps=100000).run_function(reference, [n])
            Interpreter(memory=memory_b, max_steps=100000).run_function(transformed, [n])
            assert memory_a == memory_b

    def test_variant_computation_not_hoisted(self, counter_program):
        function = counter_program.function("main")
        loop = find_loops(function).outermost()
        # The add depends on the in-loop load: nothing is invariant.
        assert hoist_loop_invariants(function, loop) == 0
