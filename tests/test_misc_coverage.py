"""Coverage for the smaller public APIs not exercised elsewhere."""

import pytest

from repro.core.framework import FrameworkConfig
from repro.hw.events import EventKernel
from repro.ir.builder import ProgramBuilder
from repro.ir.printer import format_program
from repro.ir.region import form_loop_region
from repro.profiling.memory_profile import MemoryProfile
from repro.profiling.tracer import Tracer
from repro.speculation.base import SpeculationDecision, SpeculationKind
from repro.speculation.misspec import analyze_misspeculation
from repro.speculation.manager import plan_from_profile


class TestFrameworkConfig:
    def test_with_overrides(self):
        config = FrameworkConfig()
        tweaked = config.with_(enable_speculation=False, thread_counts=(1, 4))
        assert not tweaked.enable_speculation
        assert tweaked.thread_counts == (1, 4)
        assert config.enable_speculation  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            FrameworkConfig().enable_speculation = False


class TestSpeculationDecisionFormatting:
    def test_str_with_rate(self):
        decision = SpeculationDecision(
            SpeculationKind.ALIAS, target="('net', 3)", expected_rate=0.02
        )
        text = str(decision)
        assert "alias" in text
        assert "2.00%" in text

    def test_str_without_rate(self):
        decision = SpeculationDecision(SpeculationKind.CONTROL, target="branch x")
        assert "misspec" not in str(decision)


class TestPrinterEdgeCases:
    def test_program_with_external_and_commutative(self):
        pb = ProgramBuilder("printer")
        pb.global_variable("g")
        external = pb.external_function("read")
        rng = pb.function("rng")
        rng.block("entry")
        rng.ret(0)
        rng.function.mark_commutative(group="rng", rollback="unrng")
        text = format_program(pb.program)
        assert "; program printer" in text
        assert "external" in text
        assert "commutative(rng)" in text
        assert "rollback=unrng" in text


class TestRegionQueries:
    def test_contains_and_cost(self, counter_program, counter_loop):
        region = form_loop_region(counter_program, counter_loop)
        instruction = next(iter(counter_loop.instructions()))
        assert region.contains(instruction)
        outside = next(
            i for i in counter_program.function("main").instructions()
            if i.block.name == "exit"
        )
        assert not region.contains(outside)
        assert region.total_cost() > 0
        assert "Region" in repr(region)


class TestEventKernelStep:
    def test_step_until_empty(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(3, lambda: fired.append(3))
        kernel.schedule(1, lambda: fired.append(1))
        assert kernel.step()
        assert kernel.step()
        assert not kernel.step()
        assert fired == [1, 3]
        assert kernel.events_processed == 2


class TestTraceResultQueries:
    def make_trace(self):
        tracer = Tracer()
        with tracer.task("A", 0):
            tracer.work(1)
        with tracer.task("B", 0):
            tracer.work(5)
            tracer.load("x", 0)
            tracer.store("x", 0, value=1)
        return tracer.finish()

    def test_task_by_key(self):
        trace = self.make_trace()
        assert trace.task_by_key("B", 0).cost == 5
        with pytest.raises(KeyError):
            trace.task_by_key("C", 9)

    def test_dependence_counts(self):
        trace = self.make_trace()
        profile = MemoryProfile(trace)
        counts = profile.dependence_count_by_location()
        assert all(count >= 1 for count in counts.values())
        assert profile.locations() == set(counts)


class TestMisspecWindowedErrors:
    def test_zero_window_rejected(self):
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(1)
        profile = MemoryProfile(tracer.finish())
        report = analyze_misspeculation(profile, plan_from_profile(profile))
        with pytest.raises(ValueError):
            report.windowed_rates(0)

    def test_windowed_rates_partition_iterations(self):
        tracer = Tracer()
        for i in range(10):
            with tracer.task("B", i):
                tracer.work(1)
                tracer.load("hot", 0)
                tracer.store("hot", 0, value=i)
        profile = MemoryProfile(tracer.finish())
        plan = plan_from_profile(profile, forced_speculated=[("hot", 0)])
        report = analyze_misspeculation(profile, plan)
        rates = report.windowed_rates(4)
        assert len(rates) == 3  # windows of 4, 4, 2
        assert all(0.0 <= r <= 1.0 for r in rates)


class TestMultiStageLatency:
    def test_latency_slows_chain(self):
        from repro.dswp.multistage import MultiStageSimulator, partition_loop_multistage
        from repro.hw.machine import MachineConfig
        from repro.testing import build_two_hump_loop

        program, loop = build_two_hump_loop()
        partition = partition_loop_multistage(program, loop)
        fast = MultiStageSimulator(MachineConfig(cores=16)).simulate(partition, 64)
        slow = MultiStageSimulator(
            MachineConfig(cores=16, communication_latency=25)
        ).simulate(partition, 64)
        assert slow.makespan > fast.makespan
