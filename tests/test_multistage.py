"""Tests for the generalized multi-stage PS-DSWP extension."""

import pytest

from repro.core.simulator import PipelineSimulator
from repro.dswp.multistage import (
    MultiStageSimulator,
    partition_loop_multistage,
)
from repro.dswp.partition import StageKind, partition_loop
from repro.hw.machine import MachineConfig
from repro.testing import build_two_hump_loop
from repro.ir.builder import ProgramBuilder
from repro.ir.loops import find_loops
from repro.ir.types import IntType


class TestMultiStagePartition:
    def test_two_parallel_stages_found(self):
        program, loop = build_two_hump_loop()
        partition = partition_loop_multistage(program, loop)
        parallel = [s for s in partition.stages if s.kind is StageKind.PARALLEL]
        heavy = [s for s in parallel if s.cost >= 100]
        assert len(heavy) >= 2

    def test_stage_phases_alternate(self):
        program, loop = build_two_hump_loop()
        partition = partition_loop_multistage(program, loop)
        for first, second in zip(partition.stages, partition.stages[1:]):
            assert first.kind is not second.kind  # merged runs alternate

    def test_three_phase_leaves_one_hump_sequential(self):
        program, loop = build_two_hump_loop()
        classic = partition_loop(program, loop)
        assert classic.parallel_stage is not None
        # The classic plan's parallel stage cannot cover both humps.
        assert classic.parallel_stage.cost < 205


class TestCoreAllocation:
    def test_waterfilling_prefers_heavier_stage(self):
        program, loop = build_two_hump_loop()
        partition = partition_loop_multistage(program, loop)
        simulator = MultiStageSimulator(MachineConfig(cores=16))
        allocation = simulator.allocate_cores(partition.stages)
        assert sum(allocation) <= 16
        for index, stage in enumerate(partition.stages):
            if stage.kind is StageKind.SEQUENTIAL:
                assert allocation[index] == 1
            else:
                assert allocation[index] >= 1
        parallel_shares = [
            allocation[i]
            for i, s in enumerate(partition.stages)
            if s.kind is StageKind.PARALLEL and s.cost >= 100
        ]
        assert all(share >= 5 for share in parallel_shares)


class TestMultiStageSimulation:
    def test_beats_three_phase_on_two_humps(self):
        program, loop = build_two_hump_loop()
        iterations = 256

        classic = partition_loop(program, loop)
        classic_result = PipelineSimulator(MachineConfig(cores=32)).simulate(
            classic.task_graph(iterations)
        )

        multi = partition_loop_multistage(program, loop)
        multi_result = MultiStageSimulator(MachineConfig(cores=32)).simulate(
            multi, iterations
        )
        assert multi_result.speedup > classic_result.speedup * 1.3

    def test_reduces_to_three_phase_shape(self, pipeline_program, pipeline_loop):
        """On a plain A/B/C loop both planners agree within noise."""
        iterations = 256
        classic = partition_loop(pipeline_program, pipeline_loop)
        classic_result = PipelineSimulator(MachineConfig(cores=16)).simulate(
            classic.task_graph(iterations)
        )
        multi = partition_loop_multistage(pipeline_program, pipeline_loop)
        multi_result = MultiStageSimulator(MachineConfig(cores=16)).simulate(
            multi, iterations
        )
        ratio = multi_result.speedup / classic_result.speedup
        assert 0.6 < ratio < 1.7

    def test_too_few_cores_degenerates_to_sequential(self):
        program, loop = build_two_hump_loop()
        multi = partition_loop_multistage(program, loop)
        result = MultiStageSimulator(MachineConfig(cores=2)).simulate(multi, 32)
        assert result.speedup == pytest.approx(1.0)

    def test_makespan_at_least_bottleneck(self):
        program, loop = build_two_hump_loop()
        multi = partition_loop_multistage(program, loop)
        iterations = 128
        result = MultiStageSimulator(MachineConfig(cores=8)).simulate(multi, iterations)
        allocation = result.core_allocation
        for index, stage in enumerate(multi.stages):
            # No stage can finish its per-iteration work faster than
            # cost * iterations / cores_assigned.
            assert result.makespan >= stage.cost * iterations / max(allocation[index], 1) - 1
