"""Smoke tests: every example script runs to completion and says what it
promises.  Examples are the public API's front porch; they must not rot."""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "speculation plan" in output
    assert "speedup vs. threads" in output
    assert "best speedup" in output


def test_ybranch_compression():
    output = run_example("ybranch_compression.py")
    assert "compression loss" in output
    assert "Y-branch disabled" in output
    assert "bit-identical = True" in output


def test_commutative_rng():
    output = run_example("commutative_rng.py")
    assert "with @commutative" in output
    assert "300.twolf" in output


def test_compile_and_partition():
    output = run_example("compile_and_partition.py")
    assert "PS-DSWP partition" in output
    assert "parallel fraction" in output
    assert "32 cores" in output


def test_multistage_pipeline():
    output = run_example("multistage_pipeline.py")
    assert "multi-stage partition" in output
    assert "speedup comparison" in output


@pytest.mark.slow
def test_suite_report():
    output = run_example("suite_report.py", timeout=600)
    assert "GeoMean" in output
    assert "164.gzip" in output
