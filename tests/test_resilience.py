"""Tests for repro.resilience: checkpoint/resume, adaptive speculation
throttling, the seeded chaos harness, and cross-layer invariant checking.

The acceptance contract (ISSUE 2): a chaos run with >= 20 randomized
injected faults completes bit-identical to the sequential oracle with zero
invariant violations, and a run killed mid-stream resumes from its last
checkpoint re-executing only the uncommitted suffix — asserted via commit
counters.  Chaos seeds honour ``CHAOS_SEED`` so CI can sweep a seed matrix.
"""

import os

import pytest

from repro.exec import (
    ChannelChaos,
    ExecutionEngine,
    FaultPlan,
    PipelineSpec,
    ProcessChannel,
    RobustnessPolicy,
    run_sequential,
)
from repro.hw import EpochState, VersionedMemory
from repro.resilience import (
    ChaosConfig,
    ChaosReport,
    Checkpoint,
    CheckpointConfig,
    CheckpointError,
    CheckpointManager,
    InvariantError,
    InvariantKind,
    SpeculationThrottle,
    ThrottleConfig,
    chaos_plan,
    check_checkpoints,
    check_run,
    run_chaos,
    spec_fingerprint,
)

#: CI's chaos job sweeps this through a fixed seed matrix.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1337"))


@pytest.fixture(autouse=True, scope="module")
def _no_shm_orphans():
    """Chaos runs kill processes on purpose; none of that may leak a
    shared-memory segment.  Fails the module loudly if one survives."""
    from repro.exec.transport import assert_no_orphans

    yield
    assert_no_orphans(timeout=10.0)

FAST_POLICY = RobustnessPolicy(
    task_timeout=5.0, stall_timeout=10.0, poll_interval=0.01
)


# -- module-level stage functions (picklable across processes) ---------------------


def produce_triple(i):
    return i * 3


def square_work(i, value):
    return (value * value + i) % 1009


def slow_first_work(i, value):
    if i == 0:
        import time

        time.sleep(0.2)  # hold the commit frontier so pending fills up
    return square_work(i, value)


def running_sum_work(i, value, ctx):
    total = ctx.read("acc", "total") or 0
    ctx.write("acc", "total", total + value)
    return total + value


def append_commit(i, result, acc):
    acc.setdefault("out", []).append((i, result))


def take_out(acc):
    return acc.get("out", [])


class CrashingCommit:
    """An engine-level crash: the committer itself dies at iteration ``at``."""

    def __init__(self, at):
        self.at = at

    def __call__(self, i, result, acc):
        if i == self.at:
            raise RuntimeError(f"injected engine crash at commit {i}")
        append_commit(i, result, acc)


def arithmetic_spec(iterations=50, commit=append_commit):
    return PipelineSpec(
        iterations=iterations,
        produce=produce_triple,
        work=square_work,
        commit=commit,
        finalize=take_out,
    )


def speculative_spec(iterations=32):
    return PipelineSpec(
        iterations=iterations,
        produce=produce_triple,
        work=running_sum_work,
        commit=append_commit,
        finalize=take_out,
        shared_state={("acc", "total"): 0},
        speculative=True,
    )


# -- checkpoint/resume -------------------------------------------------------------


class TestCheckpointing:
    def test_checkpoints_taken_at_interval(self):
        engine = ExecutionEngine(
            workers=2, capacity=4, checkpoints=CheckpointConfig(interval=10)
        )
        result = engine.run(arithmetic_spec(50))
        assert result.metrics.checkpoints_taken >= 4
        assert [c.index for c in result.checkpoints] == sorted(
            c.index for c in result.checkpoints
        )
        covers = [c.next_commit for c in result.checkpoints]
        assert covers == sorted(covers)
        assert check_checkpoints(result.checkpoints) == []

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            checkpoints=CheckpointConfig(interval=10, path=path),
        )
        engine.run(arithmetic_spec(50))
        checkpoint = Checkpoint.load(path)
        assert checkpoint.next_commit >= 40
        assert checkpoint.fingerprint == spec_fingerprint(arithmetic_spec(50))

    def test_resume_reexecutes_only_the_suffix(self, tmp_path):
        """ISSUE acceptance: resume re-executes only iterations after the
        last committed checkpoint, asserted via commit counters."""
        expected, _ = run_sequential(arithmetic_spec(50))
        path = str(tmp_path / "crash.ckpt")
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            checkpoints=CheckpointConfig(interval=5, path=path),
        )
        with pytest.raises(RuntimeError, match="injected engine crash"):
            engine.run(arithmetic_spec(50, commit=CrashingCommit(31)))

        checkpoint = Checkpoint.load(path)
        assert 0 < checkpoint.next_commit <= 31

        resumed = ExecutionEngine(
            workers=2,
            capacity=4,
            checkpoints=CheckpointConfig(interval=5, path=path),
        )
        result = resumed.run(arithmetic_spec(50), resume_from=path)
        assert result.output == expected
        assert result.metrics.resumed_from == checkpoint.next_commit
        assert result.metrics.commits == 50 - checkpoint.next_commit
        # Indices keep climbing across the resumed segment.
        assert all(
            c.index > checkpoint.index for c in result.checkpoints
        )
        assert check_run(result, sequential_output=expected) == []

    def test_resume_speculative_state_restored(self, tmp_path):
        expected, _ = run_sequential(speculative_spec(32))
        path = str(tmp_path / "spec.ckpt")
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            checkpoints=CheckpointConfig(interval=4, path=path),
        )
        engine.run(speculative_spec(32))
        checkpoint = Checkpoint.load(path)
        result = ExecutionEngine(workers=2, capacity=4).run(
            speculative_spec(32), resume_from=checkpoint
        )
        assert result.output == expected
        assert result.metrics.commits == 32 - checkpoint.next_commit
        assert result.state[("acc", "total")] == sum(
            produce_triple(i) for i in range(32)
        )

    def test_resume_from_complete_checkpoint_is_a_noop_run(self):
        engine = ExecutionEngine(
            workers=2, capacity=4, checkpoints=CheckpointConfig(interval=1)
        )
        first = engine.run(arithmetic_spec(12))
        final = first.checkpoints[-1]
        assert final.next_commit == 12
        result = ExecutionEngine(workers=2).run(
            arithmetic_spec(12), resume_from=final
        )
        assert result.output == first.output
        assert result.metrics.commits == 0

    def test_fingerprint_mismatch_refuses_resume(self):
        engine = ExecutionEngine(
            workers=2, capacity=4, checkpoints=CheckpointConfig(interval=5)
        )
        result = engine.run(arithmetic_spec(20))
        checkpoint = result.checkpoints[-1]
        with pytest.raises(CheckpointError, match="fingerprint"):
            ExecutionEngine(workers=2).run(
                arithmetic_spec(21), resume_from=checkpoint
            )

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            Checkpoint.load(str(path))

    def test_manager_rejects_regression(self):
        manager = CheckpointManager(CheckpointConfig(interval=1), "fp")
        from repro.exec import CommittedStore, EngineMetrics

        store = CommittedStore()
        manager.take(10, store, {}, EngineMetrics())
        with pytest.raises(CheckpointError, match="regression"):
            manager.take(9, store, {}, EngineMetrics())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CheckpointConfig(interval=0)
        with pytest.raises(ValueError):
            CheckpointConfig(keep=0)


# -- adaptive speculation throttling -----------------------------------------------


class TestThrottle:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ThrottleConfig(observation=0)
        with pytest.raises(ValueError):
            ThrottleConfig(backoff=1.5)
        with pytest.raises(ValueError):
            ThrottleConfig(min_window=0)
        with pytest.raises(ValueError):
            ThrottleConfig(low_watermark=0.9, high_watermark=0.5)

    def test_exponential_backoff_to_serial_floor(self):
        throttle = SpeculationThrottle(
            ThrottleConfig(observation=4), max_window=16
        )
        windows = []
        for _ in range(10 * 4):
            changed = throttle.record(misspeculated=True)
            if changed is not None:
                windows.append(changed)
        assert windows == [8, 4, 2, 1]  # multiplicative halving, floor 1
        assert throttle.min_window_seen == 1
        assert throttle.shrinks == 4

    def test_probes_back_up_when_storm_passes(self):
        throttle = SpeculationThrottle(
            ThrottleConfig(observation=4, probe_step=1), max_window=8
        )
        for _ in range(8):
            throttle.record(True)  # storm: 8 -> 4 -> 2
        assert throttle.window == 2
        grown = []
        for _ in range(6 * 4):
            changed = throttle.record(False)
            if changed is not None:
                grown.append(changed)
        assert grown == [3, 4, 5, 6, 7, 8]  # additive probing, capped at max
        assert throttle.window == 8
        assert throttle.grows == 6

    def test_disabled_controller_never_moves(self):
        throttle = SpeculationThrottle(
            ThrottleConfig(enabled=False, observation=1), max_window=4
        )
        assert throttle.record(True) is None
        assert throttle.window == 4

    def test_engine_throttles_under_conflict_storm(self):
        """The live engine backs off to (near-)serial execution under a
        loop-carried RAW dependence and still commits bit-identically."""
        expected, _ = run_sequential(speculative_spec(48))
        engine = ExecutionEngine(
            workers=3, capacity=8, throttle=ThrottleConfig(observation=4)
        )
        result = engine.run(speculative_spec(48))
        assert result.output == expected
        assert result.metrics.throttle_shrinks >= 1
        assert result.metrics.min_window == 1
        assert result.metrics.final_window >= 1

    def test_clean_pipeline_never_shrinks(self):
        engine = ExecutionEngine(workers=2, capacity=4)
        result = engine.run(arithmetic_spec(40))
        assert result.metrics.throttle_shrinks == 0
        assert result.metrics.min_window == result.metrics.final_window


# -- the seeded chaos harness ------------------------------------------------------


class TestChaosHarness:
    def test_plan_reproducible_from_seed(self):
        first = chaos_plan(80, CHAOS_SEED)
        second = chaos_plan(80, CHAOS_SEED)
        assert first == second
        assert first != chaos_plan(80, CHAOS_SEED + 1)

    def test_plan_disjoint_and_counted(self):
        plan = chaos_plan(80, CHAOS_SEED)
        categories = [
            plan.crash_iterations,
            plan.hang_iterations,
            plan.error_iterations,
            plan.conflict_iterations,
            plan.latency_iterations,
            plan.duplicate_result_iterations,
            plan.drop_result_iterations,
        ]
        total = sum(len(category) for category in categories)
        union = set().union(*categories)
        assert len(union) == total  # disjoint sampling
        assert plan.injected_fault_count == total

    def test_config_fits_small_runs(self):
        config = ChaosConfig().fitted(10)
        assert config.worker_total <= 5
        plan = chaos_plan(10, CHAOS_SEED)
        assert plan.injected_fault_count >= 1

    def test_chaos_run_acceptance(self):
        """ISSUE acceptance: >= 20 randomized injections, bit-identical
        output, zero invariant violations."""
        report = run_chaos(lambda: arithmetic_spec(80), CHAOS_SEED)
        assert report.injected_faults + report.channel_injections >= 20
        assert report.output_identical
        assert report.ok, report.format_summary()
        report.raise_on_violation()  # must not raise
        assert isinstance(report, ChaosReport)
        data = report.to_json()
        assert data["seed"] == CHAOS_SEED
        assert data["violations"] == []

    def test_chaos_run_speculative(self):
        report = run_chaos(
            lambda: speculative_spec(48),
            CHAOS_SEED + 7,
            config=ChaosConfig(crashes=1, hangs=1, drops=1),
        )
        assert report.ok, report.format_summary()
        assert report.output_identical

    def test_chaos_with_channel_drop_degrades_but_stays_exact(self):
        """A lost work item can only be healed by degradation — which must
        still produce the exact sequential output."""
        config = ChaosConfig(
            crashes=0, hangs=0, drops=0, channel_drops=1,
            channel_latencies=0, channel_duplicates=0,
        )
        policy = RobustnessPolicy(
            task_timeout=2.0, stall_timeout=1.0, poll_interval=0.01,
            max_respawns=8,
        )
        report = run_chaos(
            lambda: arithmetic_spec(40), CHAOS_SEED, config=config,
            policy=policy,
        )
        assert report.output_identical
        assert report.ok, report.format_summary()

    def test_chaos_killed_and_resumed_mid_stream(self, tmp_path):
        """ISSUE acceptance: a chaos run killed mid-stream resumes from its
        checkpoint, re-executing only the uncommitted suffix."""
        expected, _ = run_sequential(arithmetic_spec(60))
        path = str(tmp_path / "chaos.ckpt")
        plan = chaos_plan(60, CHAOS_SEED, ChaosConfig(crashes=1, hangs=1))
        engine = ExecutionEngine(
            workers=3,
            capacity=8,
            policy=RobustnessPolicy(
                task_timeout=1.0, stall_timeout=20.0, max_respawns=8,
                poll_interval=0.01,
            ),
            fault_plan=plan,
            checkpoints=CheckpointConfig(interval=5, path=path),
        )
        with pytest.raises(RuntimeError, match="injected engine crash"):
            engine.run(arithmetic_spec(60, commit=CrashingCommit(41)))

        checkpoint = Checkpoint.load(path)
        resumed = ExecutionEngine(
            workers=3,
            capacity=8,
            policy=FAST_POLICY,
            fault_plan=plan,
            checkpoints=CheckpointConfig(interval=5, path=path),
        )
        result = resumed.run(arithmetic_spec(60), resume_from=path)
        assert result.output == expected
        assert result.metrics.commits == 60 - checkpoint.next_commit
        assert check_run(result, sequential_output=expected) == []

    def test_worker_side_duplicates_and_drops_direct(self):
        """Duplicated results dedup; dropped results recover via timeout."""
        expected, _ = run_sequential(arithmetic_spec(30))
        plan = FaultPlan(
            duplicate_result_iterations={3, 9},
            drop_result_iterations={15},
        )
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=plan,
            policy=RobustnessPolicy(
                task_timeout=0.5, stall_timeout=15.0, poll_interval=0.01,
            ),
        )
        result = engine.run(arithmetic_spec(30))
        assert result.output == expected
        assert result.metrics.duplicates_dropped >= 1
        assert result.metrics.commits == 30

    def test_forced_conflict_on_speculative_spec(self):
        expected, _ = run_sequential(arithmetic_spec(20))
        plan = FaultPlan(conflict_iterations={4, 11})
        result = ExecutionEngine(
            workers=2, capacity=4, fault_plan=plan, policy=FAST_POLICY
        ).run(arithmetic_spec(20))
        # Non-speculative spec: forced conflicts degenerate to soft faults.
        assert result.output == expected
        assert result.metrics.soft_faults == 2

        expected_spec, _ = run_sequential(speculative_spec(20))
        result = ExecutionEngine(
            workers=2, capacity=4, fault_plan=plan, policy=FAST_POLICY
        ).run(speculative_spec(20))
        assert result.output == expected_spec
        assert result.metrics.commits == 20


class TestChannelChaos:
    def test_latency_duplicate_drop(self):
        chaos = ChannelChaos(
            latency_by_index={0: 0.01},
            duplicate_indices=frozenset({1}),
            drop_indices=frozenset({2}),
        )
        channel = ProcessChannel(capacity=8, name="t", chaos=chaos)
        channel.put("a")  # delayed
        channel.put("b")  # duplicated
        channel.put("c")  # dropped
        channel.put("d")
        got = [channel.get(timeout=1) for _ in range(4)]
        assert got == ["a", "b", "b", "d"]
        assert chaos.injection_count == 3

    def test_chaosless_channel_unchanged(self):
        channel = ProcessChannel(capacity=2, name="t")
        channel.put(1)
        assert channel.get(timeout=1) == 1


# -- cross-layer invariant checking ------------------------------------------------


class TestInvariants:
    def _clean_result(self):
        engine = ExecutionEngine(workers=2, capacity=4)
        return engine.run(arithmetic_spec(20))

    def test_clean_run_has_no_violations(self):
        result = self._clean_result()
        expected, _ = run_sequential(arithmetic_spec(20))
        assert check_run(result, sequential_output=expected) == []

    def test_exactly_once_violation_detected(self):
        result = self._clean_result()
        result.metrics.commits = 19  # doctor a lost commit
        kinds = {v.kind for v in check_run(result)}
        assert InvariantKind.EXACTLY_ONCE_COMMIT in kinds

    def test_in_order_violation_detected(self):
        result = self._clean_result()
        result.metrics.in_order_commits -= 1
        kinds = {v.kind for v in check_run(result)}
        assert InvariantKind.IN_ORDER_COMMIT in kinds

    def test_output_divergence_detected(self):
        result = self._clean_result()
        violations = check_run(result, sequential_output=["wrong"])
        kinds = {v.kind for v in violations}
        assert InvariantKind.OUTPUT_DIVERGENCE in kinds

    def test_queue_occupancy_violation_detected(self):
        result = self._clean_result()
        result.metrics.channel_stats["work"]["max_occupancy"] = 999
        kinds = {v.kind for v in check_run(result)}
        assert InvariantKind.QUEUE_OCCUPANCY in kinds

    def test_metric_consistency_violation_detected(self):
        result = self._clean_result()
        result.metrics.conflicts = 5
        result.metrics.serial_reexecutions = 0
        kinds = {v.kind for v in check_run(result)}
        assert InvariantKind.METRIC_CONSISTENCY in kinds

    def test_checkpoint_monotonicity_violation_detected(self):
        class Stub:
            def __init__(self, index, next_commit):
                self.index = index
                self.next_commit = next_commit

        violations = check_checkpoints([Stub(0, 10), Stub(0, 5)])
        kinds = {v.kind for v in violations}
        assert kinds == {InvariantKind.CHECKPOINT_MONOTONICITY}
        assert len(violations) == 2

    def test_invariant_error_is_taxonomized(self):
        result = self._clean_result()
        result.metrics.commits = 0
        result.metrics.in_order_commits = 5
        with pytest.raises(InvariantError) as excinfo:
            from repro.resilience import assert_run

            assert_run(result)
        message = str(excinfo.value)
        assert "exactly-once-commit" in message
        assert "in-order-commit" in message
        assert len(excinfo.value.violations) >= 2


# -- cross-layer: forced conflicts in the versioned-memory subsystem ---------------


class TestVersionedMemoryInjection:
    def test_injected_squash_preserves_sequential_equivalence(self):
        memory = VersionedMemory()
        # Force-squash every even-numbered younger epoch once.
        squashed_once = set()

        def injector(committer, younger):
            if younger.number % 2 == 0 and younger.number not in squashed_once:
                squashed_once.add(younger.number)
                return True
            return False

        memory.conflict_injector = injector
        epochs = [memory.begin_epoch() for _ in range(6)]
        for number, epoch in enumerate(epochs):
            memory.write(epoch, "x", number, number * 10)

        for number in range(6):
            epoch = memory._epochs[number]
            if epoch.state is EpochState.SQUASHED:
                epoch = memory.reissue(epoch)
                memory.write(epoch, "x", number, number * 10)
            memory.commit(epoch)

        assert memory.injected_conflicts >= 2
        for number in range(6):
            assert memory.committed_value("x", number) == number * 10

    def test_injector_squashes_are_reported_to_caller(self):
        memory = VersionedMemory()
        memory.conflict_injector = lambda committer, younger: True
        first = memory.begin_epoch()
        second = memory.begin_epoch()
        memory.write(first, "x", None, 1)
        squashed = memory.commit(first)
        assert second in squashed
        assert second.state is EpochState.SQUASHED


# -- RobustnessPolicy edge cases (satellite) ---------------------------------------


class TestRobustnessPolicyEdges:
    def test_zero_respawn_budget_still_exact(self):
        """Budget 0: dead workers stay dead; the survivor (or degradation)
        still produces the exact output."""
        expected, _ = run_sequential(arithmetic_spec(24))
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=FaultPlan(crash_iterations={5}),
            policy=RobustnessPolicy(
                task_timeout=5.0, stall_timeout=10.0, max_respawns=0,
                poll_interval=0.01,
            ),
        )
        result = engine.run(arithmetic_spec(24))
        assert result.output == expected
        assert result.metrics.respawns == 0
        assert result.metrics.worker_crashes == 1
        assert result.metrics.commits == 24

    def test_nonpositive_timeouts_rejected(self):
        with pytest.raises(ValueError):
            RobustnessPolicy(task_timeout=0.0)
        with pytest.raises(ValueError):
            RobustnessPolicy(task_timeout=-1.0)
        with pytest.raises(ValueError):
            RobustnessPolicy(stall_timeout=0.0)
        with pytest.raises(ValueError):
            RobustnessPolicy(max_respawns=-1)

    def test_hang_seconds_clamped_to_task_timeout(self):
        policy = RobustnessPolicy(
            task_timeout=0.3, stall_timeout=10.0, poll_interval=0.01
        )
        plan = FaultPlan(hang_iterations={3}, hang_seconds=60.0)
        clamped = plan.clamped_to(policy)
        assert clamped.hang_seconds <= policy.task_timeout + 1.0 + 1e-9
        # The engine applies the clamp at construction.
        engine = ExecutionEngine(
            workers=2, capacity=4, fault_plan=plan, policy=policy
        )
        assert engine.fault_plan.hang_seconds == clamped.hang_seconds
        # A short plan is left alone.
        short = FaultPlan(hang_iterations={3}, hang_seconds=0.1)
        assert short.clamped_to(policy) is short

    def test_degradation_with_partially_drained_reorder_buffer(self):
        """Producer death while completed results sit in the reorder buffer
        behind a slow head-of-line commit: pending results are reused and
        the output stays exact."""
        expected, _ = run_sequential(
            PipelineSpec(
                iterations=30,
                produce=produce_triple,
                work=slow_first_work,
                commit=append_commit,
                finalize=take_out,
            )
        )
        engine = ExecutionEngine(
            workers=3,
            capacity=8,
            fault_plan=FaultPlan(producer_crash_at=9),
            policy=RobustnessPolicy(
                task_timeout=5.0, stall_timeout=5.0, poll_interval=0.01
            ),
        )
        result = engine.run(
            PipelineSpec(
                iterations=30,
                produce=produce_triple,
                work=slow_first_work,
                commit=append_commit,
                finalize=take_out,
            )
        )
        assert result.output == expected
        assert result.metrics.producer_crashed
        assert result.metrics.degraded_to_sequential
        assert result.metrics.commits == 30
        assert result.metrics.in_order_commits == 30

    def test_resume_after_degrade(self, tmp_path):
        """A degraded run keeps checkpointing; its checkpoints remain valid
        resume points for a fresh engine."""
        expected, _ = run_sequential(arithmetic_spec(30))
        path = str(tmp_path / "degrade.ckpt")
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=FaultPlan(producer_crash_at=9),
            policy=FAST_POLICY,
            checkpoints=CheckpointConfig(interval=5, path=path),
        )
        degraded = engine.run(arithmetic_spec(30))
        assert degraded.metrics.degraded_to_sequential
        assert degraded.output == expected
        assert degraded.metrics.checkpoints_taken >= 1

        checkpoint = Checkpoint.load(path)
        result = ExecutionEngine(workers=2, capacity=4).run(
            arithmetic_spec(30), resume_from=checkpoint
        )
        assert result.output == expected
        assert result.metrics.commits == 30 - checkpoint.next_commit
        assert result.metrics.resumed_from == checkpoint.next_commit


# -- CLI surface -------------------------------------------------------------------


class TestResilienceCLI:
    def test_exec_seeded_fault_injection_prints_seed(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                ["exec", "256.bzip2", "--workers", "2",
                 "--inject-faults", "--seed", "11"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "fault injection seed: 11" in output
        assert "bit-identical to sequential execution" in output

    def test_exec_chaos_subcommand(self, capsys, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "chaos.json"
        code = main(
            ["exec", "256.bzip2", "--workers", "2", "--chaos", "8",
             "--seed", str(CHAOS_SEED), "--json", str(path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert f"chaos seed: {CHAOS_SEED}" in output
        assert "OK" in output
        import json

        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert data["seed"] == CHAOS_SEED

    def test_exec_checkpoint_and_resume_flags(self, capsys, tmp_path):
        from repro.__main__ import main

        path = tmp_path / "cli.ckpt"
        assert (
            main(
                ["exec", "256.bzip2", "--workers", "2",
                 "--checkpoint", str(path), "--checkpoint-interval", "2"]
            )
            == 0
        )
        assert path.exists()
        capsys.readouterr()
        assert (
            main(
                ["exec", "256.bzip2", "--workers", "2",
                 "--resume", str(path)]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "bit-identical to sequential execution" in output
        assert "resumed from iteration" in output
