"""Tests for the real multiprocess pipeline execution engine (repro.exec).

The engine's contract mirrors the paper's runtime guarantees: outputs are
bit-identical to sequential execution for any worker count and channel
capacity, every iteration commits exactly once and in order no matter what
the worker processes do (crash, hang, raise), and detected read-write
conflicts roll back and re-execute serially.
"""

import multiprocessing
import time

import pytest

from repro.exec import (
    CommittedStore,
    ExecutionEngine,
    FaultPlan,
    PipelineSpec,
    ProcessChannel,
    RobustnessPolicy,
    WriteBuffer,
    run_sequential,
    spec_from_task_graph,
)
from repro.profiling.tracer import Tracer
from repro.workloads.bzip2_w import Bzip2Workload
from repro.workloads.parser_w import ParserWorkload

# Small analog instances keep each engine run well under a second while
# still spanning multiple blocks/sentences.
BZIP2_ARGS = dict(block_size=1024, blocks=5)
PARSER_ARGS = dict(sentence_count=60, command_every=20)

#: A fast-failing policy so fault tests never wait on production defaults.
FAST_POLICY = RobustnessPolicy(
    task_timeout=5.0, stall_timeout=10.0, poll_interval=0.01
)


# -- module-level stage functions (picklable across processes) ---------------------


def produce_triple(i):
    return i * 3


def square_work(i, value):
    return (value * value + i) % 1009


def append_commit(i, result, acc):
    acc.setdefault("out", []).append((i, result))


def take_out(acc):
    return acc.get("out", [])


def running_sum_work(i, value, ctx):
    """Speculative B stage with a genuine loop-carried dependence."""
    total = ctx.read("acc", "total") or 0
    ctx.write("acc", "total", total + value)
    return total + value


def slow_even_work(i, value):
    if i % 4 == 0:
        time.sleep(0.002)  # let later iterations overtake
    return value + 1


def arithmetic_spec(iterations=40):
    return PipelineSpec(
        iterations=iterations,
        produce=produce_triple,
        work=square_work,
        commit=append_commit,
        finalize=take_out,
    )


# -- determinism: engine output == sequential output -------------------------------


class TestBitIdenticalOutputs:
    """ISSUE acceptance: bit-identical outputs across >=3 worker counts and
    >=2 channel capacities for the bzip2 and parser analogs."""

    @pytest.fixture(scope="class")
    def bzip2_reference(self):
        return Bzip2Workload(**BZIP2_ARGS).run(Tracer())

    @pytest.fixture(scope="class")
    def parser_reference(self):
        return ParserWorkload(**PARSER_ARGS).run(Tracer())

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("capacity", [2, 8])
    def test_bzip2_identical(self, workers, capacity, bzip2_reference):
        engine = ExecutionEngine(workers=workers, capacity=capacity)
        result = engine.run(Bzip2Workload(**BZIP2_ARGS).exec_spec())
        assert result.output == bzip2_reference
        assert result.metrics.commits == result.metrics.iterations
        assert not result.metrics.degraded_to_sequential

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("capacity", [2, 8])
    def test_parser_identical(self, workers, capacity, parser_reference):
        engine = ExecutionEngine(workers=workers, capacity=capacity)
        result = engine.run(ParserWorkload(**PARSER_ARGS).exec_spec())
        assert result.output == parser_reference
        assert result.metrics.commits == result.metrics.iterations

    def test_sequential_reference_matches_traced_run(self, bzip2_reference):
        output, seconds = run_sequential(Bzip2Workload(**BZIP2_ARGS).exec_spec())
        assert output == bzip2_reference
        assert seconds > 0

    def test_commit_order_despite_reordering(self):
        spec = PipelineSpec(
            iterations=60,
            produce=produce_triple,
            work=slow_even_work,
            commit=append_commit,
            finalize=take_out,
        )
        result = ExecutionEngine(workers=4, capacity=8).run(spec)
        assert [i for i, _ in result.output] == list(range(60))


# -- fault tolerance ---------------------------------------------------------------


class TestFaultTolerance:
    def test_killed_worker_task_retried_and_committed_exactly_once(self):
        """ISSUE acceptance: a killed worker's task is retried and committed
        exactly once."""
        expected, _ = run_sequential(arithmetic_spec())
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=FaultPlan(crash_iterations={7}),
            policy=FAST_POLICY,
        )
        result = engine.run(arithmetic_spec())
        assert result.output == expected
        metrics = result.metrics
        assert metrics.worker_crashes == 1
        assert metrics.retries >= 1
        assert metrics.serial_reexecutions >= 1
        # Exactly-once: every iteration committed once, in order.
        assert metrics.commits == metrics.iterations
        assert [i for i, _ in result.output] == list(range(40))
        # The replacement worker joined the pipeline.
        assert metrics.respawns == 1

    def test_soft_fault_retried(self):
        expected, _ = run_sequential(arithmetic_spec())
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=FaultPlan(error_iterations={3, 11}),
            policy=FAST_POLICY,
        )
        result = engine.run(arithmetic_spec())
        assert result.output == expected
        assert result.metrics.soft_faults == 2
        assert result.metrics.serial_reexecutions == 2
        assert result.metrics.worker_crashes == 0  # the worker survived

    def test_hung_worker_killed_and_task_retried(self):
        expected, _ = run_sequential(arithmetic_spec(20))
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=FaultPlan(hang_iterations={5}, hang_seconds=60.0),
            policy=RobustnessPolicy(
                task_timeout=0.3, stall_timeout=15.0, poll_interval=0.01
            ),
        )
        started = time.monotonic()
        result = engine.run(arithmetic_spec(20))
        elapsed = time.monotonic() - started
        assert result.output == expected
        assert result.metrics.worker_timeouts == 1
        assert elapsed < 10  # did not wait for the 60s sleep

    def test_producer_crash_degrades_to_sequential(self):
        expected, _ = run_sequential(arithmetic_spec(30))
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=FaultPlan(producer_crash_at=9),
            policy=FAST_POLICY,
        )
        result = engine.run(arithmetic_spec(30))
        assert result.output == expected
        assert result.metrics.producer_crashed
        assert result.metrics.degraded_to_sequential
        assert result.metrics.commits == 30

    def test_persistent_crashes_exhaust_budget_then_degrade(self):
        """Graceful degradation: when workers keep dying the engine finishes
        sequentially and still produces the exact output."""
        expected, _ = run_sequential(arithmetic_spec(16))
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=FaultPlan(crash_iterations=frozenset(range(16))),
            policy=RobustnessPolicy(
                task_timeout=5.0,
                stall_timeout=5.0,
                max_respawns=1,
                poll_interval=0.01,
            ),
        )
        result = engine.run(arithmetic_spec(16))
        assert result.output == expected
        assert result.metrics.degraded_to_sequential
        assert result.metrics.worker_crashes >= 2
        assert result.metrics.respawns == 1
        assert result.metrics.commits == 16

    def test_fault_injected_run_still_bit_identical_on_real_workload(self):
        reference = Bzip2Workload(**BZIP2_ARGS).run(Tracer())
        spec = Bzip2Workload(**BZIP2_ARGS).exec_spec()
        engine = ExecutionEngine(
            workers=2,
            capacity=4,
            fault_plan=FaultPlan.default_for(spec.iterations),
            policy=FAST_POLICY,
        )
        result = engine.run(spec)
        assert result.output == reference
        assert result.metrics.worker_crashes == 1


# -- speculation and rollback ------------------------------------------------------


class TestSpeculation:
    def speculative_spec(self, iterations=24):
        return PipelineSpec(
            iterations=iterations,
            produce=produce_triple,
            work=running_sum_work,
            commit=append_commit,
            finalize=take_out,
            shared_state={("acc", "total"): 0},
            speculative=True,
        )

    def test_conflicts_detected_and_reexecuted(self):
        expected, _ = run_sequential(self.speculative_spec())
        engine = ExecutionEngine(workers=3, capacity=4)
        result = engine.run(self.speculative_spec())
        assert result.output == expected
        # The running sum is a loop-carried RAW dependence: almost every
        # speculative execution read a stale total and had to roll back.
        assert result.metrics.conflicts > 0
        assert result.metrics.serial_reexecutions == result.metrics.conflicts
        assert result.state[("acc", "total")] == sum(
            produce_triple(i) for i in range(24)
        )

    def test_single_worker_speculation_still_conflicts(self):
        # Even one worker misspeculates: its snapshot never refreshes.
        expected, _ = run_sequential(self.speculative_spec(8))
        result = ExecutionEngine(workers=1, capacity=2).run(
            self.speculative_spec(8)
        )
        assert result.output == expected

    def test_write_buffer_semantics(self):
        store = CommittedStore({("x", None): 10})
        buffer = WriteBuffer(store.snapshot())
        assert buffer.read("x") == 10
        buffer.write("x", None, 11)
        assert buffer.read("x") == 11  # own version visible
        assert buffer.reads == {("x", None): 0}
        assert store.value("x") == 10  # nothing escaped before commit
        assert store.validate(buffer.reads) == []
        store.apply(buffer.writes)
        assert store.value("x") == 11

    def test_stale_read_detected(self):
        store = CommittedStore({("x", None): 10})
        speculative = WriteBuffer(store.snapshot())
        speculative.read("x")
        # An older task commits a write underneath the speculation.
        committer = WriteBuffer(store.snapshot())
        committer.write("x", None, 99)
        store.apply(committer.writes)
        assert store.validate(speculative.reads) == [("x", None)]
        assert store.conflicts_detected == 1

    def test_rollback_discard(self):
        buffer = WriteBuffer({})
        buffer.write("x", None, 1)
        buffer.read("y")
        buffer.discard()
        assert buffer.writes == {} and buffer.reads == {}


# -- channels and metrics ----------------------------------------------------------


class TestChannels:
    def test_full_blocking_put_times_out(self):
        channel = ProcessChannel(capacity=1, name="t")
        channel.put("a")
        from repro.exec.channels import ChannelTimeout

        with pytest.raises(ChannelTimeout):
            channel.put("b", timeout=0.05)

    def test_empty_blocking_get_times_out(self):
        channel = ProcessChannel(capacity=1, name="t")
        from repro.exec.channels import ChannelTimeout

        with pytest.raises(ChannelTimeout):
            channel.get(timeout=0.05)

    def test_fifo_and_counters(self):
        channel = ProcessChannel(capacity=4, name="t")
        for item in (1, 2, 3):
            channel.put(item)
        assert [channel.get(timeout=1) for _ in range(3)] == [1, 2, 3]
        assert channel.produces == 3
        assert channel.consumes == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ProcessChannel(capacity=0)


class TestMetricsAndEdges:
    def test_metrics_json_roundtrip(self):
        engine = ExecutionEngine(workers=2, capacity=4)
        result = engine.run(arithmetic_spec(12))
        data = result.metrics.to_json()
        assert data["commits"] == 12
        assert data["workers"] == 2
        assert set(data["stage_seconds"]) == {"A", "B", "C"}
        assert "work" in data["channels"] and "done" in data["channels"]
        import json

        json.loads(result.metrics.to_json_str())  # serializable

    def test_empty_pipeline(self):
        result = ExecutionEngine(workers=2).run(arithmetic_spec(0))
        assert result.output == []
        assert result.metrics.commits == 0

    def test_invalid_engine_parameters(self):
        with pytest.raises(ValueError):
            ExecutionEngine(workers=0)
        with pytest.raises(ValueError):
            ExecutionEngine(capacity=0)

    def test_engine_from_execution_plan(self):
        from repro.core.plan import ExecutionPlan
        from repro.hw.machine import MachineConfig

        plan = ExecutionPlan.for_machine(MachineConfig(cores=6))
        engine = ExecutionEngine(plan=plan, capacity=4)
        assert engine.workers == plan.replication_width == 4
        result = engine.run(arithmetic_spec(10))
        assert len(result.output) == 10

    def test_task_graph_replay(self):
        from repro.core.tasks import Phase, Task, TaskGraph

        tasks = []
        for i in range(6):
            for offset, (phase, cost) in enumerate(
                [(Phase.A, 10), (Phase.B, 100), (Phase.C, 5)]
            ):
                tasks.append(
                    Task(index=3 * i + offset, phase=phase, iteration=i, cost=cost)
                )
        spec = spec_from_task_graph(TaskGraph(tasks), seconds_per_unit=1e-5)
        result = ExecutionEngine(workers=2, capacity=4).run(spec)
        assert result.output == 6
        assert result.metrics.commits == 6
