"""Seed-robustness: the reproduced shapes must not be one-seed accidents.

For each benchmark family with meaningful randomness, re-run the evaluation
under two alternative seeds and check the qualitative claim still holds.
These are the cheapest guards against over-tuning the analogs to a single
input — the paper's conclusions are about the *programs*, not one dataset.
"""

import pytest

from repro.core.framework import ParallelizationFramework
from repro.workloads.bzip2_w import Bzip2Workload
from repro.workloads.crafty_w import CraftyWorkload
from repro.workloads.gap_w import GapWorkload
from repro.workloads.parser_w import ParserWorkload
from repro.workloads.perlbmk_w import PerlbmkWorkload
from repro.workloads.twolf_w import TwolfWorkload
from repro.workloads.vpr_w import VprWorkload


@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 1234])
class TestSeedRobustness:
    def test_perlbmk_stays_low(self, seed):
        evaluation = ParallelizationFramework().evaluate(
            PerlbmkWorkload(seed=seed, statements=300)
        )
        assert evaluation.report.best_speedup < 2.0

    def test_parser_stays_scalable(self, seed):
        evaluation = ParallelizationFramework().evaluate(
            ParserWorkload(seed=seed, sentence_count=300)
        )
        assert evaluation.report.best_speedup > 12

    def test_crafty_stays_scalable(self, seed):
        evaluation = ParallelizationFramework().evaluate(CraftyWorkload(seed=seed))
        assert evaluation.report.best_speedup > 12

    def test_twolf_stays_bounded(self, seed):
        evaluation = ParallelizationFramework().evaluate(TwolfWorkload(seed=seed))
        assert 1.3 < evaluation.report.best_speedup < 3.5

    def test_vpr_saturates_midrange(self, seed):
        evaluation = ParallelizationFramework().evaluate(VprWorkload(seed=seed))
        assert 2.0 < evaluation.report.best_speedup < 8.0

    def test_bzip2_capped_by_blocks(self, seed):
        evaluation = ParallelizationFramework().evaluate(
            Bzip2Workload(seed=seed, block_size=8 * 1024, blocks=5)
        )
        assert evaluation.report.best_speedup <= 5.2

    def test_gap_gc_bound(self, seed):
        evaluation = ParallelizationFramework().evaluate(GapWorkload(seed=seed))
        assert 1.2 < evaluation.report.best_speedup < 3.5
