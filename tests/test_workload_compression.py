"""Tests for the gzip and bzip2 workload analogs (the real algorithms)."""

import pytest

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.profiling.tracer import Tracer
from repro.workloads.bzip2_w import (
    Bzip2Workload,
    burrows_wheeler_transform,
    huffman_cost,
    move_to_front,
    rle_huffman_bits,
)
from repro.workloads.generators import generate_text
from repro.workloads.gzip_w import GzipWorkload


def inverse_bwt(last_column):
    """Reference inverse transform (LF mapping) used to prove invertibility."""
    n = len(last_column)
    sorted_pairs = sorted(range(n), key=lambda i: (last_column[i], i))
    # next_row[i]: row of the sorted matrix that follows row i
    result = []
    row = last_column.index(-1)
    for _ in range(n - 1):
        row = sorted_pairs[row]
        symbol = last_column[row]
        result.append(symbol)
    return bytes(result)


class TestBWTChain:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_bwt_is_invertible(self, seed):
        block = generate_text(seed, 512)
        last, _ = burrows_wheeler_transform(block)
        assert inverse_bwt(last) == block

    def test_bwt_groups_symbols(self):
        block = b"abracadabra" * 40
        last, _ = burrows_wheeler_transform(block)
        mtf = move_to_front(last)
        # BWT of repetitive text must be highly MTF-compressible:
        # most MTF codes should be small.
        small = sum(1 for s in mtf if s <= 2)
        assert small / len(mtf) > 0.7

    def test_bwt_work_superlinear(self):
        _, work_small = burrows_wheeler_transform(generate_text(1, 256))
        _, work_large = burrows_wheeler_transform(generate_text(1, 1024))
        assert work_large > 3.5 * work_small  # ~n log n

    def test_mtf_roundtrip_alphabet(self):
        symbols = [-1, 65, 66, 65, 65, 66, -1]
        # hand-check: first occurrence indices then locality
        out = move_to_front(symbols)
        assert out[0] == 0          # -1 starts in front
        assert out[3] == 1          # 65 is one behind the just-moved 66
        assert out[4] == 0          # immediately repeated symbol codes 0
        assert len(out) == len(symbols)

    def test_huffman_cost_bounds(self):
        histogram = {0: 60, 1: 25, 2: 10, 3: 5}
        total_symbols = sum(histogram.values())
        bits = huffman_cost(histogram)
        # Huffman can't beat entropy, can't exceed fixed 2-bit code here.
        import math

        entropy = -sum(
            c / total_symbols * math.log2(c / total_symbols)
            for c in histogram.values()
        )
        assert entropy * total_symbols <= bits <= 2 * total_symbols

    def test_huffman_degenerate_cases(self):
        assert huffman_cost({}) == 0
        assert huffman_cost({7: 100}) == 100  # one symbol: one bit each

    def test_rle_compresses_zero_runs(self):
        long_runs = [0] * 100 + [5] + [0] * 100
        no_runs = list(range(1, 202))
        assert rle_huffman_bits(long_runs) < rle_huffman_bits(no_runs)


class TestBzip2Workload:
    @pytest.fixture(scope="class")
    def evaluation(self):
        workload = Bzip2Workload(block_size=4 * 1024, blocks=5)
        return ParallelizationFramework().evaluate(workload)

    def test_block_count_caps_speedup(self, evaluation):
        # 5 blocks: more than ~5x is impossible.
        assert evaluation.report.best_speedup <= 5.2
        assert evaluation.report.best_speedup > 3.0

    def test_no_cross_block_dependences(self, evaluation):
        assert evaluation.misspeculation.rate == 0.0

    def test_deterministic_output(self):
        workload = Bzip2Workload(block_size=2048, blocks=3)
        fw = ParallelizationFramework()
        first = fw.profile_workload(workload, False)[1]
        second = fw.profile_workload(Bzip2Workload(block_size=2048, blocks=3), False)[1]
        assert first == second

    def test_output_identical_under_parallel_policy(self, evaluation):
        assert evaluation.output_comparison.equivalent


def inflate(tokens):
    """Decode an LZ77 token stream back to bytes (the decompressor)."""
    output = bytearray()
    for token in tokens:
        if isinstance(token, tuple):
            distance, length = token
            for _ in range(length):
                output.append(output[-distance])
        else:
            output.append(token)
    return bytes(output)


class TestLZ77Lossless:
    def test_block_roundtrip(self):
        workload = GzipWorkload(size=16 * 1024, block_interval=4096)
        tokens = []
        end, bits, checksum, work, _ = workload._deflate_block(
            workload.text, 0, tokens=tokens
        )
        assert inflate(tokens) == workload.text[:end]

    def test_whole_input_roundtrip_under_interval_policy(self):
        workload = GzipWorkload(size=32 * 1024, block_interval=4096)
        workload.ybranch.use_interval_policy()
        position = 0
        recovered = bytearray()
        while position < len(workload.text):
            tokens = []
            end, *_ = workload._deflate_block(workload.text, position, tokens=tokens)
            recovered.extend(inflate(tokens))
            position = end
        workload.ybranch.use_sequential_policy()
        assert bytes(recovered) == workload.text

    def test_matches_reference_far_back_rejected(self):
        """Matches never reach before the block start (independent blocks)."""
        workload = GzipWorkload(size=32 * 1024, block_interval=4096)
        workload.ybranch.use_interval_policy()
        position = 0
        while position < len(workload.text):
            tokens = []
            end, *_ = workload._deflate_block(workload.text, position, tokens=tokens)
            offset = 0
            for token in tokens:
                if isinstance(token, tuple):
                    distance, length = token
                    assert distance <= offset  # stays inside the block
                    offset += length
                else:
                    offset += 1
            position = end
        workload.ybranch.use_sequential_policy()


class TestGzipWorkload:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return ParallelizationFramework().evaluate(
            GzipWorkload(size=128 * 1024, block_interval=4096)
        )

    def test_sequential_policy_is_one_block_heavy(self):
        workload = GzipWorkload(size=64 * 1024, block_interval=4096)
        trace, _ = ParallelizationFramework().profile_workload(workload, False)
        # The staleness heuristic rarely fires on compressible text: the
        # sequential run uses few, data-dependent blocks.
        assert trace.iteration_count <= 4

    def test_interval_policy_fixes_boundaries(self, evaluation):
        blocks = evaluation.parallel_trace.iteration_count
        assert blocks == 128 * 1024 // 4096

    def test_compression_loss_within_paper_bound(self):
        evaluation = ParallelizationFramework().evaluate(GzipWorkload())
        assert not evaluation.output_comparison.equivalent
        assert evaluation.output_comparison.acceptable, evaluation.output_comparison.note

    def test_scales_with_threads(self, evaluation):
        curve = evaluation.report.curve
        assert curve[32] > curve[16] > curve[8] > 2

    def test_ybranch_disabled_kills_parallelism(self):
        config = FrameworkConfig(engage_ybranch=False)
        evaluation = ParallelizationFramework(config).evaluate(
            GzipWorkload(size=64 * 1024, block_interval=4096)
        )
        assert evaluation.report.best_speedup < 1.5

    def test_compression_actually_compresses(self):
        workload = GzipWorkload(size=64 * 1024, block_interval=4096)
        _, output = ParallelizationFramework().profile_workload(workload, False)
        assert output["compressed_bits"] < output["input_bytes"] * 8
