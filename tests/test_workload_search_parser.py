"""Tests for the crafty (alpha-beta) and parser (CYK) analogs."""

import pytest

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.profiling.context import activate
from repro.profiling.tracer import Tracer
from repro.workloads.crafty_w import (
    CraftyWorkload,
    _Caches,
    _branching,
    _leaf_value,
    _mix,
)
from repro.workloads.parser_w import ParserWorkload, cyk_parse, xalloc


def plain_minimax(node, depth):
    """No pruning, no caches — the ground truth for alpha-beta."""
    if depth <= 0:
        return _leaf_value(node)
    best = None
    for index in range(_branching(node)):
        score = -plain_minimax(_mix(node, index), depth - 1)
        if best is None or score > best:
            best = score
    return best


class TestCrafty:
    @pytest.mark.parametrize("seed,depth", [(1, 2), (2, 3), (3, 3), (4, 4)])
    def test_alpha_beta_equals_minimax(self, seed, depth):
        workload = CraftyWorkload(seed=seed)
        caches = _Caches()
        root = _mix(seed, 0)
        score, _, _ = workload._search(root, depth, -10**9, 10**9, caches)
        assert score == plain_minimax(root, depth)

    def test_pruning_reduces_visits(self):
        workload = CraftyWorkload()
        root = _mix(99, 0)
        _, _, visited = workload._search(root, 4, -10**9, 10**9, _Caches())
        full = _count_nodes(root, 4)
        assert visited < full

    def test_deterministic_result(self):
        fw = ParallelizationFramework()
        first = fw.profile_workload(CraftyWorkload(), False)[1]
        second = fw.profile_workload(CraftyWorkload(), False)[1]
        assert first == second

    def test_task_costs_highly_variable(self):
        """Pruning skews subtree sizes — the paper's crafty signature."""
        from repro.profiling.loop_profile import LoopProfile

        trace, _ = ParallelizationFramework().profile_workload(CraftyWorkload(), False)
        stats = LoopProfile(trace).phase_stats("B")
        assert stats.coefficient_of_variation > 0.5

    def test_scales_with_threads(self):
        evaluation = ParallelizationFramework().evaluate(CraftyWorkload())
        assert evaluation.report.best_speedup > 15  # paper: 25.18
        assert evaluation.report.best_threads >= 24

    def test_commutative_caches_matter(self):
        with_annotation = ParallelizationFramework().evaluate(CraftyWorkload())
        without = ParallelizationFramework(
            FrameworkConfig(enable_commutative=False)
        ).evaluate(CraftyWorkload())
        assert without.report.best_speedup < with_annotation.report.best_speedup / 3


def _count_nodes(node, depth):
    if depth <= 0:
        return 1
    return 1 + sum(
        _count_nodes(_mix(node, i), depth - 1) for i in range(_branching(node))
    )


class TestCYK:
    def test_accepts_grammatical_sentence(self):
        ok, work = cyk_parse(["the", "dog", "sees", "a", "cat"])
        assert ok
        assert work > 0

    def test_rejects_scrambled_sentence(self):
        ok, _ = cyk_parse(["sees", "the", "dog", "cat", "a"])
        assert not ok

    def test_accepts_prepositional_phrase(self):
        ok, _ = cyk_parse(["the", "dog", "sees", "a", "cat", "near", "the", "river"])
        assert ok

    def test_accepts_adjective_phrase(self):
        ok, _ = cyk_parse(["the", "big", "dog", "chases", "the", "quick", "bird"])
        assert ok

    def test_work_cubic_in_length(self):
        _, short = cyk_parse(["the", "dog", "sees", "a", "cat"])
        _, long = cyk_parse(
            ["the", "dog", "sees", "a", "cat", "near", "the", "river",
             "under", "the", "tree"]
        )
        assert long > 3 * short


class TestParserWorkload:
    def test_mixed_accept_reject(self):
        output = ParallelizationFramework().profile_workload(ParserWorkload(), False)[1]
        assert output["accepted"] > 0
        assert output["rejected"] > 0

    def test_echo_commands_take_effect(self):
        output = ParallelizationFramework().profile_workload(ParserWorkload(), False)[1]
        assert output["echoed"] > 0

    def test_near_linear_scaling(self):
        evaluation = ParallelizationFramework().evaluate(ParserWorkload())
        assert evaluation.report.best_speedup > 15  # paper: 24.50

    def test_command_flag_synchronized_not_speculated(self):
        evaluation = ParallelizationFramework().evaluate(ParserWorkload())
        assert ("parser", "echo_mode") in evaluation.plan.synchronized

    def test_allocator_sections_traced(self):
        tracer = Tracer()
        with activate(tracer):
            with tracer.task("B", 0):
                tracer.work(1)
                xalloc(64)
        trace = tracer.finish()
        assert (0, "parser.xalloc") in trace.section_costs

    def test_allocator_rollback_registered(self):
        from repro.annotations.registry import global_registry

        missing = global_registry().validate_rollbacks(["parser.xalloc"])
        assert missing == []
