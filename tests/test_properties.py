"""Property-based tests (hypothesis) for the core invariants.

- bounded queues behave exactly like a capacity-checked deque;
- the timed queue model never violates capacity or FIFO timing;
- versioned-memory TLS execution always equals sequential execution;
- the pipeline simulator obeys conservation laws on random task graphs;
- SCC condensation partitions the PDG and stays acyclic.
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecutionPlan
from repro.core.simulator import PipelineSimulator
from repro.core.tasks import Phase, SerializationEdge, Task, TaskGraph
from repro.hw.machine import MachineConfig
from repro.hw.queues import BoundedQueue, TimedQueueModel
from repro.hw.versioned_memory import VersionedMemory
from repro.tls.epochs import TLSExecution


# ---------------------------------------------------------------------------------
# BoundedQueue vs a reference deque
# ---------------------------------------------------------------------------------

@given(
    operations=st.lists(
        st.one_of(st.tuples(st.just("produce"), st.integers()), st.just(("consume", 0))),
        max_size=200,
    ),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_bounded_queue_matches_reference(operations, capacity):
    queue = BoundedQueue(capacity=capacity)
    reference = deque()
    for op, value in operations:
        if op == "produce":
            ok = queue.try_produce(value)
            assert ok == (len(reference) < capacity)
            if ok:
                reference.append(value)
        else:
            item = queue.try_consume()
            expected = reference.popleft() if reference else None
            assert item == expected
    assert len(queue) == len(reference)


# ---------------------------------------------------------------------------------
# TimedQueueModel invariants
# ---------------------------------------------------------------------------------

@given(
    produce_gaps=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60),
    consume_gaps=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=60),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_timed_queue_capacity_never_exceeded(produce_gaps, consume_gaps, capacity):
    """Interleave produces and consumes; occupancy at any produce time must
    respect the capacity bound and consumes must follow their produce."""
    queue = TimedQueueModel(capacity=capacity)
    produce_times = []
    consume_times = []
    time = 0
    for gap in produce_gaps:
        time += gap
        # Keep the schedule feasible: consume when the queue would overflow.
        if queue.produced - queue.consumed >= capacity:
            consume_ready = consume_times[-1] if consume_times else 0
            consume_times.append(queue.record_consume(consume_ready))
        produce_times.append(queue.record_produce(time))
    while queue.consumed < queue.produced:
        ready = consume_times[-1] if consume_times else 0
        consume_times.append(queue.record_consume(ready))

    # FIFO timing: consume k happens at/after produce k.
    for k, consume_time in enumerate(consume_times):
        assert consume_time >= produce_times[k]
    # Monotone sequences.
    assert produce_times == sorted(produce_times)
    assert consume_times == sorted(consume_times)


# ---------------------------------------------------------------------------------
# Versioned memory: TLS execution == sequential execution
# ---------------------------------------------------------------------------------

@given(
    program=st.lists(
        st.tuples(
            st.sampled_from(["read", "write", "rmw"]),
            st.integers(min_value=0, max_value=3),   # location
            st.integers(min_value=0, max_value=9),   # value
        ),
        min_size=1,
        max_size=8,
    ),
    iterations=st.integers(min_value=1, max_value=12),
    window=st.integers(min_value=1, max_value=6),
    forwarding=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_tls_execution_equals_sequential(program, iterations, window, forwarding):
    def body_factory(store):
        def body(view, i):
            observed = []
            for op, loc, val in program:
                key = f"x{loc}"
                if op == "read":
                    observed.append(view.read(key))
                elif op == "write":
                    view.write(key, None, val + i)
                else:
                    current = view.read(key) or 0
                    view.write(key, None, (current + val + i) % 97)
            return tuple(observed)
        return body

    # Sequential reference.
    memory = {}

    def sequential(i):
        observed = []
        for op, loc, val in program:
            key = (f"x{loc}", None)
            if op == "read":
                observed.append(memory.get(key))
            elif op == "write":
                memory[key] = val + i
            else:
                current = memory.get(key) or 0
                memory[key] = (current + val + i) % 97
        return tuple(observed)

    expected = [sequential(i) for i in range(iterations)]

    execution = TLSExecution(
        VersionedMemory(eager_forwarding=forwarding), max_epochs_in_flight=window
    )
    results = execution.execute(body_factory(None), iterations)
    assert results == expected
    assert execution.memory.architectural_state() == memory


# ---------------------------------------------------------------------------------
# Pipeline simulator conservation laws on random task graphs
# ---------------------------------------------------------------------------------

@st.composite
def task_graphs(draw):
    iterations = draw(st.integers(min_value=1, max_value=30))
    costs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=8),     # A
                st.integers(min_value=1, max_value=100),   # B
                st.integers(min_value=0, max_value=8),     # C
            ),
            min_size=iterations,
            max_size=iterations,
        )
    )
    tasks = []
    index = 0
    for i, (a, b, c) in enumerate(costs):
        for phase, cost in (("A", a + 1), ("B", b), ("C", c + 1)):
            tasks.append(Task(index, Phase(phase), i, cost))
            index += 1
    graph = TaskGraph(tasks)
    edge_count = draw(st.integers(min_value=0, max_value=min(10, iterations - 1)))
    for _ in range(edge_count):
        target_iteration = draw(st.integers(min_value=1, max_value=iterations - 1)) if iterations > 1 else None
        if target_iteration is None:
            break
        source_iteration = draw(st.integers(min_value=0, max_value=target_iteration - 1))
        graph.add_edge(
            SerializationEdge(
                source_iteration * 3 + 1, target_iteration * 3 + 1, "misspeculation"
            )
        )
    return graph


@given(graph=task_graphs(), cores=st.sampled_from([1, 2, 3, 4, 8, 16, 32]))
@settings(max_examples=80, deadline=None)
def test_simulator_conservation(graph, cores):
    result = PipelineSimulator(MachineConfig(cores=cores)).simulate(graph)
    total = graph.total_cost()
    # Work conservation: busy time across cores equals total task cost.
    assert sum(result.core_busy_time.values()) == total
    # Speedup bounded by core count and by 1x from below... (pipelining can
    # never lose work, only add waiting).
    assert result.makespan >= -(-total // cores)  # ceil(total/cores)
    assert result.speedup <= cores + 1e-9
    # Every task finished within the makespan.
    assert max(result.task_end_times) == result.makespan
    if cores == 1:
        assert result.makespan == total


@given(graph=task_graphs())
@settings(max_examples=40, deadline=None)
def test_fully_serialized_graph_never_beats_sequential_b(graph):
    """Chain every B task: makespan must cover the whole B phase."""
    chained = TaskGraph(
        [Task(t.index, t.phase, t.iteration, t.cost) for t in graph.tasks]
    )
    iterations = chained.iterations()
    for i in range(1, iterations):
        chained.add_edge(
            SerializationEdge((i - 1) * 3 + 1, i * 3 + 1, "misspeculation")
        )
    result = PipelineSimulator(MachineConfig(cores=8)).simulate(chained)
    assert result.makespan >= chained.phase_cost(Phase.B)


# ---------------------------------------------------------------------------------
# SCC condensation of random dependence graphs
# ---------------------------------------------------------------------------------

@given(
    node_count=st.integers(min_value=1, max_value=20),
    edges=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60
    ),
)
@settings(max_examples=60, deadline=None)
def test_scc_condensation_partitions_and_is_acyclic(node_count, edges):
    from repro.ir.instructions import BinOp
    from repro.ir.values import Constant
    from repro.pdg.graph import PDG, PDGEdge
    from repro.pdg.scc import condense

    pdg = PDG()
    instructions = []
    for _ in range(node_count):
        instruction = BinOp("add", Constant(1), Constant(2))
        instructions.append(instruction)
        pdg.add_node(instruction)
    for a, b in edges:
        if a < node_count and b < node_count and a != b:
            pdg.add_edge(
                PDGEdge(instructions[a].id, instructions[b].id, "register")
            )
    dag = condense(pdg)
    # Partition: every node in exactly one SCC.
    seen = set()
    for scc in dag.sccs:
        assert seen.isdisjoint(scc.node_ids)
        seen |= scc.node_ids
    assert len(seen) == node_count
    # Acyclic and topologically ordered.
    order = {scc.index: i for i, scc in enumerate(dag.topological_order())}
    for a, b in dag.edges:
        assert order[a] < order[b]
