"""Independent schedule-validity checking of the pipeline simulator.

The simulator computes a schedule with recurrences; this module re-checks
that schedule against the *definitions* of every constraint — a second,
much simpler implementation of the rules, so a bug in the recurrences can't
hide.  Checked per task:

- duration: end - start >= cost (stalls may stretch, never shrink);
- core exclusivity: intervals on one core never overlap;
- structural order: B_i starts at/after A_i ends (+ latency), C_i after B_i;
- chains: A and C run in iteration order on their cores;
- serialization edges: target starts at/after source ends;
- queue capacity: at any A-completion, the producing core's in-flight
  iteration window never exceeds the queue capacity.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import ExecutionPlan
from repro.core.simulator import PipelineSimulator, SimulationResult
from repro.core.tasks import Phase, SerializationEdge, Task, TaskGraph
from repro.hw.machine import MachineConfig


def check_schedule(graph: TaskGraph, result: SimulationResult) -> None:
    starts = result.task_start_times
    ends = result.task_end_times
    cores = result.task_cores
    latency = result.machine.communication_latency
    assert len(starts) == len(ends) == len(cores) == len(graph.tasks)

    by_iteration = defaultdict(dict)
    for task in graph.tasks:
        by_iteration[task.iteration][task.phase] = task

    # Durations and makespan.
    for task in graph.tasks:
        assert ends[task.index] - starts[task.index] >= task.cost, task
        assert ends[task.index] <= result.makespan

    # Core exclusivity (ignore zero-length intervals).
    intervals = defaultdict(list)
    for task in graph.tasks:
        if cores[task.index] >= 0 and ends[task.index] > starts[task.index]:
            intervals[cores[task.index]].append(
                (starts[task.index], ends[task.index], task.index)
            )
    for core, slots in intervals.items():
        slots.sort()
        for (s1, e1, i1), (s2, e2, i2) in zip(slots, slots[1:]):
            assert e1 <= s2, f"core {core}: tasks {i1} and {i2} overlap"

    # Structural phase order within an iteration.
    for iteration, tasks in by_iteration.items():
        a, b, c = tasks.get(Phase.A), tasks.get(Phase.B), tasks.get(Phase.C)
        if a and b:
            assert starts[b.index] >= ends[a.index] + latency
        if b and c:
            assert starts[c.index] >= ends[b.index] + latency

    # Sequential chains for A and C: strictly in iteration order.
    for phase in (Phase.A, Phase.C):
        chain = [t for t in graph.tasks if t.phase is phase]
        for earlier, later in zip(chain, chain[1:]):
            assert starts[later.index] >= ends[earlier.index]

    # Serialization edges.
    for edge in graph.edges:
        assert starts[edge.target] >= ends[edge.source], edge


@st.composite
def traced_graphs(draw):
    iterations = draw(st.integers(min_value=1, max_value=25))
    tasks = []
    index = 0
    for i in range(iterations):
        for phase in ("A", "B", "C"):
            cost = draw(st.integers(min_value=0, max_value=40))
            tasks.append(Task(index, Phase(phase), i, cost + (1 if phase == "B" else 0)))
            index += 1
    graph = TaskGraph(tasks)
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        if iterations < 2:
            break
        target_iter = draw(st.integers(min_value=1, max_value=iterations - 1))
        source_iter = draw(st.integers(min_value=0, max_value=target_iter - 1))
        source_phase = draw(st.integers(min_value=0, max_value=2))
        target_phase = draw(st.integers(min_value=1, max_value=2))
        source = source_iter * 3 + source_phase
        target = target_iter * 3 + target_phase
        if source < target:
            graph.add_edge(SerializationEdge(source, target, "misspeculation"))
    return graph


@given(
    graph=traced_graphs(),
    cores=st.sampled_from([2, 3, 4, 8, 16, 32]),
    capacity=st.sampled_from([1, 2, 32]),
    latency=st.sampled_from([0, 3]),
)
@settings(max_examples=120, deadline=None)
def test_every_schedule_is_valid(graph, cores, capacity, latency):
    machine = MachineConfig(
        cores=cores, queue_capacity=capacity, communication_latency=latency
    )
    result = PipelineSimulator(machine).simulate(graph)
    check_schedule(graph, result)


def test_workload_schedules_are_valid():
    """The real benchmark graphs pass the checker too."""
    from repro.core.framework import ParallelizationFramework
    from repro.workloads.suite import make_workload

    for name in ("256.bzip2", "300.twolf", "253.perlbmk"):
        evaluation = ParallelizationFramework().evaluate(make_workload(name))
        for threads, result in evaluation.simulations.items():
            if threads == 1:
                continue
            check_schedule(evaluation.graph, result)
