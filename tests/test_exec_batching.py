"""The fast path under test: framed batch transport, chunked dispatch.

Covers the batching-specific contracts on top of ``tests/test_exec_engine``:

- frame encode/decode round-trips preserve content and order
  (property-based, including the raw-bytes mode for homogeneous payloads);
- STOP is never buried mid-frame — it flushes the batch and travels alone;
- chaos decisions are memoized per put index, so a timed-out put retried
  via ``flush()`` re-applies neither the latency sleep nor the first copy
  of a duplicated item;
- occupancy is item-granular: the bounded-queue invariant keeps its
  32-entry semantics no matter how items are framed;
- engine output is bit-identical across batch sizes 1 / 16 / 64;
- the chaos seed matrix stays green with batching enabled;
- ``comm_overhead`` (flushes, mean frame occupancy, serialize and
  deserialize seconds, transport kind) lands in the metrics JSON.

Every channel-level contract here is parametrized across all three wire
backends (``pipe`` / ``shm`` / ``thread``): the channel layer owns framing,
credit, STOP discipline, and chaos memoization, so each invariant must hold
regardless of what carries the bytes.  Shm-ring *internals* (torn writes,
wrap markers, full-ring backpressure) are covered in
``tests/test_exec_transport.py``.
"""

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import PipelineSpec, run_sequential
from repro.exec.channels import (
    ChannelChaos,
    ChannelTimeout,
    ProcessChannel,
    STOP,
    decode_frame,
    encode_frame,
)
from repro.exec.engine import ExecutionEngine
from repro.exec.transport import TRANSPORT_KINDS
from repro.resilience import ChaosConfig, run_chaos

#: The CI chaos matrix, run here with batching explicitly on.
SEED_MATRIX = (1337, 20071209, 424242)

#: Every channel contract must hold on every wire backend.
TRANSPORTS = TRANSPORT_KINDS


# -- module-level stage functions (picklable across processes) ---------------------


def produce_seven(i):
    return i * 7


def mix_work(i, value):
    return (value * value + i) % 2003


def append_commit(i, result, acc):
    acc.setdefault("out", []).append((i, result))


def take_out(acc):
    return acc.get("out", [])


def batch_spec(iterations=60):
    return PipelineSpec(
        iterations=iterations,
        produce=produce_seven,
        work=mix_work,
        commit=append_commit,
        finalize=take_out,
    )


# -- framing round-trips (property-based) ------------------------------------------

payload = st.one_of(
    st.integers(),
    st.text(max_size=8),
    st.binary(max_size=16),
    st.none(),
    st.booleans(),
    st.tuples(st.integers(), st.text(max_size=4)),
)


class TestFraming:
    @given(st.lists(payload, max_size=40))
    @settings(deadline=None, max_examples=80)
    def test_roundtrip_preserves_content_and_order(self, items):
        assert decode_frame(encode_frame(items)) == items

    @given(st.lists(st.binary(max_size=32), min_size=2, max_size=20))
    @settings(deadline=None, max_examples=40)
    def test_homogeneous_bytes_use_raw_mode_and_roundtrip(self, items):
        frame = encode_frame(items)
        assert isinstance(frame[-1], bytes)  # joined blob, not a pickle
        assert decode_frame(frame) == items

    def test_single_and_empty_frames(self):
        assert decode_frame(encode_frame([])) == []
        assert decode_frame(encode_frame([b"only"])) == [b"only"]

    def test_unframed_objects_pass_through(self):
        for obj in (17, "plain", ("claim", 1, 2), None, b"raw"):
            assert decode_frame(obj) is None

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @given(
        st.lists(st.integers(), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(deadline=None, max_examples=15)
    def test_channel_fifo_across_frame_boundaries(
        self, transport, items, batch_size
    ):
        channel = ProcessChannel(
            capacity=64, batch_size=batch_size, transport=transport
        )
        try:
            channel.put_many(list(items), timeout=2.0)
            received = []
            while len(received) < len(items):
                received.extend(
                    channel.get_many(batch_size, timeout=2.0)
                )
            assert received == list(items)
        finally:
            channel.close()


# -- STOP discipline ---------------------------------------------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestStopSentinel:
    def test_stop_flushes_batch_and_travels_alone(self, transport):
        channel = ProcessChannel(
            capacity=16, batch_size=4, transport=transport
        )
        try:
            for value in ("a", "b", "c"):
                channel.put_buffered(value)
            channel.put(STOP, timeout=2.0)  # flushes the partial batch first
            assert channel.pending_items == 0
            batch = channel.get_many(10, timeout=2.0)
            assert batch == ["a", "b", "c"]  # STOP ends the batch early
            assert channel.get_many(10, timeout=2.0) == [STOP]
        finally:
            channel.close()

    def test_stop_first_is_returned_alone(self, transport):
        channel = ProcessChannel(
            capacity=4, batch_size=4, transport=transport
        )
        try:
            channel.put(STOP, timeout=2.0)
            assert channel.get_many(4, timeout=2.0) == [STOP]
        finally:
            channel.close()


# -- chaos memoization: timed-out puts retry idempotently --------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestChaosPutRetry:
    def test_duplicate_survives_timeout_retry_with_exactly_two_copies(
        self, transport
    ):
        chaos = ChannelChaos(duplicate_indices=frozenset({0}))
        channel = ProcessChannel(
            capacity=1, batch_size=1, chaos=chaos, transport=transport
        )
        try:
            # Two copies buffered, capacity one: the first flushes, the
            # second starves for credit and the put times out.
            with pytest.raises(ChannelTimeout):
                channel.put("a", timeout=0.05)
            assert channel.pending_items == 1
            assert channel.get(timeout=2.0) == "a"
            channel.flush(timeout=2.0)  # the retry path — never re-put
            assert channel.get(timeout=2.0) == "a"
            assert channel.pending_items == 0
            with pytest.raises(ChannelTimeout):
                channel.get(timeout=0.05)  # no third copy ever existed
        finally:
            channel.close()

    def test_latency_not_reapplied_on_retry(self, transport):
        chaos = ChannelChaos(latency_by_index={1: 0.2})
        channel = ProcessChannel(
            capacity=1, batch_size=1, chaos=chaos, transport=transport
        )
        try:
            channel.put("first", timeout=2.0)  # fills the channel
            started = time.monotonic()
            with pytest.raises(ChannelTimeout):
                channel.put("delayed", timeout=0.05)
            first_attempt = time.monotonic() - started
            assert first_attempt >= 0.2  # the injected latency fired once
            assert channel.get(timeout=2.0) == "first"
            started = time.monotonic()
            channel.flush(timeout=2.0)
            retry_duration = time.monotonic() - started
            assert retry_duration < 0.2  # ... and exactly once
            assert channel.get(timeout=2.0) == "delayed"
        finally:
            channel.close()


# -- item-granular occupancy -------------------------------------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
class TestOccupancy:
    def test_occupancy_counts_items_not_frames(self, transport):
        channel = ProcessChannel(
            capacity=8, batch_size=4, transport=transport
        )
        try:
            channel.put_many(list(range(8)), timeout=2.0)  # two frames
            deadline = time.monotonic() + 2.0
            while channel.produces < 8 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert channel.sample_occupancy() == 8
            drained = []
            while len(drained) < 8:
                drained.extend(channel.get_many(8, timeout=2.0))
            assert channel.sample_occupancy() == 0
            stats = channel.occupancy_stats()
            assert stats["max_occupancy"] == 8
            assert stats["max_occupancy"] <= stats["capacity"]
            assert stats["mean_frame_items"] == 4.0
        finally:
            channel.close()

    def test_credit_blocks_at_item_capacity(self, transport):
        channel = ProcessChannel(
            capacity=4, batch_size=4, transport=transport
        )
        try:
            channel.put_many(list(range(4)), timeout=2.0)
            with pytest.raises(ChannelTimeout):
                channel.put_many([99], timeout=0.05)  # over item capacity
            assert channel.get(timeout=2.0) == 0
            channel.flush(timeout=2.0)  # freed credit admits the retry
            assert [channel.get(timeout=2.0) for _ in range(4)] == [1, 2, 3, 99]
        finally:
            channel.close()


# -- engine fidelity across batch sizes --------------------------------------------


class TestEngineBatching:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("batch_size", [1, 16, 64])
    def test_output_bit_identical_across_batch_sizes(
        self, batch_size, transport
    ):
        sequential_output, _ = run_sequential(batch_spec())
        engine = ExecutionEngine(
            workers=2, capacity=64, batch_size=batch_size,
            transport=transport,
        )
        result = engine.run(batch_spec())
        assert result.output == sequential_output
        assert result.metrics.commits == 60
        assert result.metrics.in_order_commits == 60
        assert result.metrics.batch_size == batch_size
        assert result.metrics.transport == transport

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_comm_overhead_exposed_in_metrics_json(self, transport):
        engine = ExecutionEngine(
            workers=2, capacity=32, batch_size=8, transport=transport
        )
        result = engine.run(batch_spec(40))
        data = result.metrics.to_json()
        assert data["batch_size"] == 8
        assert data["transport"] == transport
        # One canonical shape: channel stats live under "channels" only
        # (the old export duplicated a subset under "comm_overhead").
        assert "comm_overhead" not in data
        for name in ("work", "done"):
            stats = data["channels"][name]
            assert stats["flushes"] >= 1
            assert stats["mean_frame_items"] >= 1.0
            assert stats["serialize_seconds"] >= 0.0
            # Satellite of the transport plane: the get path's decode time
            # is measured too, so comm accounting is no longer one-sided.
            assert stats["deserialize_seconds"] >= 0.0
            assert stats["transport"] == transport
        summary = result.metrics.format_summary()
        assert "comm overhead" in summary
        assert "deserialize" in summary
        assert f"{transport} transport" in summary

    def test_format_summary_survives_partial_channel_stats(self):
        from repro.exec.metrics import EngineMetrics

        metrics = EngineMetrics(workers=2, capacity=8, iterations=10)
        metrics.channel_stats["work"] = {"produces": 10}  # partial: no caps
        summary = metrics.format_summary()
        assert "channel work" in summary
        assert "10 produces" in summary

    def test_batched_run_amortizes_frames(self):
        engine = ExecutionEngine(workers=2, capacity=32, batch_size=16)
        result = engine.run(batch_spec(64))
        work = result.metrics.channel_stats["work"]
        # Chunked dispatch must move strictly fewer frames than items.
        assert work["flushes"] < work["produces"]
        assert work["mean_frame_items"] > 1.0


# -- the chaos seed matrix, batching on --------------------------------------------


class TestChaosWithBatching:
    @pytest.mark.parametrize("seed", SEED_MATRIX)
    def test_seed_matrix_green_with_batching(self, seed):
        report = run_chaos(
            lambda: batch_spec(40),
            seed,
            workers=3,
            capacity=8,
            config=ChaosConfig(latency_seconds=0.01),
            batch_size=8,
        )
        report.raise_on_violation()
        assert report.output_identical
        assert report.result.metrics.batch_size == 8

    @pytest.mark.parametrize("transport", ("shm", "thread"))
    def test_chaos_identical_on_alternate_transports(self, transport):
        """The same seeded injection schedule commits the same output on
        every wire backend — retries, crash hand-backs, and duplicate
        drops are transport-invariant."""
        seed = SEED_MATRIX[0]
        baseline = run_chaos(
            lambda: batch_spec(40), seed, workers=3, capacity=8,
            config=ChaosConfig(latency_seconds=0.01), batch_size=8,
            transport="pipe",
        )
        report = run_chaos(
            lambda: batch_spec(40), seed, workers=3, capacity=8,
            config=ChaosConfig(latency_seconds=0.01), batch_size=8,
            transport=transport,
        )
        report.raise_on_violation()
        assert report.output_identical
        assert report.result.output == baseline.result.output
        assert report.result.metrics.transport == transport
