"""Tests for the framework's speculation reporting and rollback warnings."""

import pytest

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.suite import make_workload


class TestValueAndControlSpeculationReporting:
    def test_crafty_reports_both(self):
        evaluation = ParallelizationFramework().evaluate(make_workload("186.crafty"))
        value_sites = {s.site for s in evaluation.value_speculations}
        control_sites = {s.site for s in evaluation.control_speculations}
        # The paper's Section 4.3.1 claims, discovered from the profile:
        assert "search.state" in value_sites          # MakeMove/UnMakeMove cancel
        assert "crafty.next_time_check" in control_sites

    def test_perlbmk_reports_vm_globals(self):
        evaluation = ParallelizationFramework().evaluate(make_workload("253.perlbmk"))
        sites = {s.site for s in evaluation.value_speculations}
        assert "PL_temp_ixs" in sites                  # Section 4.1.3

    def test_vortex_status_value_site(self):
        evaluation = ParallelizationFramework().evaluate(make_workload("255.vortex"))
        sites = {s.site for s in evaluation.value_speculations}
        assert "STATUS" in sites                       # Section 4.1.2

    def test_ybranches_not_counted_as_control_speculation(self):
        evaluation = ParallelizationFramework().evaluate(make_workload("164.gzip"))
        assert all(not s.is_ybranch for s in evaluation.control_speculations)

    def test_disabled_speculation_reports_nothing(self):
        framework = ParallelizationFramework(
            FrameworkConfig(enable_speculation=False)
        )
        evaluation = framework.evaluate(make_workload("186.crafty"))
        assert evaluation.value_speculations == []
        assert evaluation.control_speculations == []


class RollbackFreeWorkload(Workload):
    """Uses a Commutative group that never registers a rollback."""

    info = WorkloadInfo("rollback-free", ("loop",), "100%", 0, 0, ("Commutative",))

    def run(self, tracer):
        from repro.annotations.commutative import commutative
        from repro.annotations.registry import global_registry

        @commutative(group="tests.norollback")
        def bump():
            from repro.profiling.context import current_tracer

            current_tracer().store("counter", 0, value=1)

        for i in range(4):
            with tracer.task("B", i):
                tracer.work(5)
                bump()
        return None


class TestRollbackWarnings:
    def test_missing_rollback_warned(self):
        evaluation = ParallelizationFramework().evaluate(RollbackFreeWorkload())
        assert any("tests.norollback" in w for w in evaluation.warnings)

    def test_suite_workloads_all_clean(self):
        for name in ("300.twolf", "197.parser", "254.gap", "176.gcc", "186.crafty"):
            evaluation = ParallelizationFramework().evaluate(make_workload(name))
            assert evaluation.warnings == [], name
