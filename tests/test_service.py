"""Unit and integration tests for repro.service internals.

Covers the pieces below the HTTP layer: the weighted round-robin
scheduler's fairness discipline, admission-control boundaries, chaos
compilation, and — with real processes — the shared worker pool's core
promises: PID stability across consecutive jobs, crash recovery via
respawn with pool self-healing, and cooperative cancellation.
"""

import time

import pytest

from repro.exec import RobustnessPolicy
from repro.exec.engine import ExecutionEngine, run_sequential
from repro.obs.live import LiveConfig
from repro.service import (
    AdmissionConfig,
    AdmissionController,
    FairScheduler,
    WorkerPool,
    compile_chaos,
)
from repro.service.jobs import Job, JobState, build_spec, resolve_iterations

FAST_POLICY = RobustnessPolicy(
    task_timeout=5.0, stall_timeout=10.0, poll_interval=0.01
)


def make_job(n, tenant="t"):
    return Job(
        job_id=f"j{n}", tenant=tenant, workload="synthetic",
        params={}, iterations=8, fault_plan=None,
    )


class TestFairScheduler:
    def test_fifo_within_tenant(self):
        sched = FairScheduler()
        jobs = [make_job(n) for n in range(4)]
        for job in jobs:
            sched.enqueue(job)
        order = [
            sched.take(lambda t: True, lambda t: 1) for _ in range(4)
        ]
        assert order == jobs
        assert sched.take(lambda t: True, lambda t: 1) is None

    def test_round_robin_alternates_tenants(self):
        sched = FairScheduler()
        a = [make_job(n, "a") for n in range(3)]
        b = [make_job(n + 10, "b") for n in range(3)]
        for job in a + b:
            sched.enqueue(job)
        taken = [
            sched.take(lambda t: True, lambda t: 1).tenant for _ in range(6)
        ]
        assert taken == ["a", "b", "a", "b", "a", "b"]

    def test_weights_give_proportional_turns(self):
        sched = FairScheduler()
        for n in range(6):
            sched.enqueue(make_job(n, "heavy"))
            sched.enqueue(make_job(n + 10, "light"))
        weights = {"heavy": 2, "light": 1}
        taken = [
            sched.take(lambda t: True, lambda t: weights[t]).tenant
            for _ in range(6)
        ]
        assert taken == ["heavy", "heavy", "light", "heavy", "heavy", "light"]

    def test_ineligible_tenant_is_skipped_without_starving(self):
        sched = FairScheduler()
        sched.enqueue(make_job(0, "busy"))
        sched.enqueue(make_job(1, "free"))
        job = sched.take(lambda t: t != "busy", lambda t: 1)
        assert job.tenant == "free"
        # once eligible again, the skipped tenant gets its turn
        job = sched.take(lambda t: True, lambda t: 1)
        assert job.tenant == "busy"

    def test_cancelled_queued_jobs_are_lazily_dropped(self):
        sched = FairScheduler()
        jobs = [make_job(n) for n in range(3)]
        for job in jobs:
            sched.enqueue(job)
        jobs[0].state = JobState.CANCELLED
        assert sched.depth() == 2
        assert sched.take(lambda t: True, lambda t: 1) is jobs[1]

    def test_push_front_preserves_order(self):
        sched = FairScheduler()
        jobs = [make_job(n) for n in range(2)]
        for job in jobs:
            sched.enqueue(job)
        first = sched.take(lambda t: True, lambda t: 1)
        sched.push_front(first)
        assert sched.take(lambda t: True, lambda t: 1) is first

    def test_empty_scheduler(self):
        sched = FairScheduler()
        assert sched.take(lambda t: True, lambda t: 1) is None
        assert sched.depth() == 0
        assert sched.depth("nobody") == 0


class TestAdmission:
    def controller(self, **kw):
        return AdmissionController(AdmissionConfig(**kw))

    def test_accepts_under_limits(self):
        decision = self.controller().admit(
            depth=0, tenant_queued=0, tenant_running=0
        )
        assert decision.accepted and decision.status == 202

    def test_draining_refuses_with_503(self):
        decision = self.controller().admit(
            depth=0, tenant_queued=0, tenant_running=0, draining=True
        )
        assert not decision.accepted
        assert decision.status == 503
        assert decision.retry_after is None

    def test_shedding_refuses_with_retry_after(self):
        decision = self.controller().admit(
            depth=3, tenant_queued=0, tenant_running=0, shedding=True
        )
        assert not decision.accepted
        assert decision.status == 429
        assert decision.retry_after >= 1

    def test_global_depth_bound(self):
        controller = self.controller(max_queued=4)
        ok = controller.admit(depth=3, tenant_queued=0, tenant_running=0)
        full = controller.admit(depth=4, tenant_queued=0, tenant_running=0)
        assert ok.accepted and not full.accepted
        assert full.status == 429 and "queue full" in full.reason

    def test_tenant_queued_quota(self):
        controller = self.controller(tenant_queued_quota=2)
        full = controller.admit(depth=2, tenant_queued=2, tenant_running=0)
        assert not full.accepted and "tenant queued quota" in full.reason

    def test_tenant_inflight_quota(self):
        controller = self.controller(
            tenant_queued_quota=2, tenant_running_quota=1
        )
        full = controller.admit(depth=1, tenant_queued=1, tenant_running=2)
        assert not full.accepted and "in-flight" in full.reason

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queued=0)
        with pytest.raises(ValueError):
            AdmissionConfig(tenant_running_quota=0)


class TestJobModel:
    def test_compile_chaos_reproducible(self):
        plan1 = compile_chaos({"conflicts": 4, "errors": 2, "seed": 7}, 32)
        plan2 = compile_chaos({"conflicts": 4, "errors": 2, "seed": 7}, 32)
        assert plan1.conflict_iterations == plan2.conflict_iterations
        assert plan1.error_iterations == plan2.error_iterations
        assert len(plan1.conflict_iterations) == 4
        assert not plan1.conflict_iterations & plan1.error_iterations

    def test_compile_chaos_validation(self):
        assert compile_chaos(None, 10) is None
        assert compile_chaos({}, 10) is None
        assert compile_chaos({"conflicts": 0}, 10) is None
        with pytest.raises(ValueError):
            compile_chaos({"bogus": 1}, 10)
        with pytest.raises(ValueError):
            compile_chaos({"conflicts": -1}, 10)
        with pytest.raises(ValueError):
            compile_chaos({"conflicts": 11}, 10)
        with pytest.raises(ValueError):
            compile_chaos({"crashes": 3}, 10)

    def test_resolve_iterations_synthetic(self):
        assert resolve_iterations("synthetic", {}) == 48
        assert resolve_iterations("synthetic", {"iterations": 5}) == 5
        with pytest.raises(ValueError):
            resolve_iterations("synthetic", {"iterations": 0})
        with pytest.raises(ValueError):
            resolve_iterations("synthetic", {"bogus": 1})
        with pytest.raises(ValueError):
            resolve_iterations("no-such-workload", {})

    def test_synthetic_spec_deterministic(self):
        spec = build_spec("synthetic", {"iterations": 16, "spin": 100})
        out1, _ = run_sequential(spec)
        out2, _ = run_sequential(
            build_spec("synthetic", {"iterations": 16, "spin": 100})
        )
        assert out1 == out2
        assert out1["items"] == 16


@pytest.fixture(scope="module")
def pool():
    pool = WorkerPool(
        workers=2, slots=2, capacity=8, batch_size=4, policy=FAST_POLICY
    ).start()
    yield pool
    pool.shutdown()


def run_on_pool(pool, spec, fault_plan=None, live=None):
    lease = pool.try_lease()
    assert lease is not None
    try:
        engine = ExecutionEngine(
            workers=len(lease.worker_ids), capacity=8, batch_size=4,
            policy=FAST_POLICY, fault_plan=fault_plan, live=live,
            runtime=lease,
        )
        return engine.run(spec), lease
    finally:
        pool.release(lease)


class TestWorkerPool:
    def test_pids_stable_across_three_jobs(self, pool):
        """The tentpole reuse claim: three consecutive jobs, zero forks."""
        reference_pids = pool.worker_pids()
        spec_params = {"iterations": 24, "spin": 200}
        expected, _ = run_sequential(build_spec("synthetic", spec_params))
        for _ in range(3):
            result, _lease = run_on_pool(
                pool, build_spec("synthetic", spec_params)
            )
            assert result.output == expected
            assert pool.worker_pids() == reference_pids
        assert pool.stats()["spawned_total"] == 2

    def test_crash_respawn_replaces_worker(self, pool):
        """A worker crash mid-job: the job still commits bit-identically,
        and the pool heals back to full size for the next job."""
        spec_params = {"iterations": 24, "spin": 200}
        expected, _ = run_sequential(build_spec("synthetic", spec_params))
        plan = compile_chaos({"crashes": 1, "seed": 3}, 24)
        result, _lease = run_on_pool(
            pool, build_spec("synthetic", spec_params), fault_plan=plan
        )
        assert result.output == expected
        assert result.metrics.worker_crashes == 1
        assert result.metrics.respawns == 1
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            stats = pool.stats()
            if stats["alive"] == 2 and stats["idle"] == 2:
                break
            time.sleep(0.05)
        assert pool.stats()["alive"] == 2
        # and the healed pool still produces correct output
        result, _lease = run_on_pool(
            pool, build_spec("synthetic", spec_params)
        )
        assert result.output == expected

    def test_cancel_mid_job(self, pool):
        import threading

        lease = pool.try_lease()
        assert lease is not None
        threading.Timer(0.3, lease.cancel).start()
        try:
            engine = ExecutionEngine(
                workers=len(lease.worker_ids), capacity=8, batch_size=4,
                policy=FAST_POLICY, runtime=lease,
            )
            result = engine.run(
                build_spec("synthetic", {"iterations": 50_000, "spin": 2000})
            )
        finally:
            pool.release(lease)
        assert result.metrics.cancelled
        assert result.metrics.commits < 50_000
        # pool survives a cancelled job
        expected, _ = run_sequential(
            build_spec("synthetic", {"iterations": 8, "spin": 50})
        )
        result, _lease = run_on_pool(
            pool, build_spec("synthetic", {"iterations": 8, "spin": 50})
        )
        assert result.output == expected

    def test_lease_exhaustion_and_return(self, pool):
        leases = []
        while pool.can_lease():
            lease = pool.try_lease(workers=1)
            if lease is None:
                break
            leases.append(lease)
        assert leases
        assert pool.try_lease() is None
        for lease in leases:
            pool.release(lease)
        assert pool.can_lease()

    def test_producer_crash_rejected(self, pool):
        from repro.exec import FaultPlan

        lease = pool.try_lease()
        assert lease is not None
        try:
            engine = ExecutionEngine(
                workers=len(lease.worker_ids), capacity=8, batch_size=4,
                policy=FAST_POLICY,
                fault_plan=FaultPlan(producer_crash_at=3),
                runtime=lease,
            )
            with pytest.raises(ValueError):
                engine.run(build_spec("synthetic", {"iterations": 8}))
        finally:
            pool.release(lease)
