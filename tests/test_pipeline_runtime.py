"""Tests for the executable threaded DSWP pipeline runtime."""

import threading

import pytest

from repro.dswp.runtime import PipelineRuntime


def run_sequentially(iterations, produce, work):
    out = []
    for i in range(iterations):
        out.append(work(i, produce(i)))
    return out


class TestPipelineRuntime:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    @pytest.mark.parametrize("capacity", [1, 4, 32])
    def test_outputs_equal_sequential(self, workers, capacity):
        produce = lambda i: i * 3
        work = lambda i, v: (v * v + i) % 1009
        expected = run_sequentially(200, produce, work)

        committed = []
        runtime = PipelineRuntime(workers=workers, queue_capacity=capacity)
        runtime.run(200, produce, work, lambda i, r: committed.append((i, r)))
        assert [r for _, r in committed] == expected
        # Phase C saw iterations strictly in order.
        assert [i for i, _ in committed] == list(range(200))

    def test_all_workers_participate(self):
        gate = threading.Barrier(4, timeout=10)

        def slowish(i, v):
            if i < 4:
                gate.wait()  # forces 4 concurrent workers at the start
            return v + 1

        runtime = PipelineRuntime(workers=4, queue_capacity=8)
        committed = []
        runtime.run(64, lambda i: i, slowish, lambda i, r: committed.append(r))
        assert len(runtime.stats.worker_iterations) == 4
        assert sum(runtime.stats.worker_iterations.values()) == 64

    def test_commit_order_despite_reordering(self):
        import time

        def jittery(i, v):
            if i % 7 == 0:
                time.sleep(0.001)  # let later iterations overtake
            return v

        committed = []
        runtime = PipelineRuntime(workers=4, queue_capacity=16)
        runtime.run(100, lambda i: i, jittery, lambda i, r: committed.append(i))
        assert committed == list(range(100))

    def test_worker_exception_propagates(self):
        def explode(i, v):
            if i == 10:
                raise RuntimeError("boom at 10")
            return v

        runtime = PipelineRuntime(workers=2, queue_capacity=4)
        with pytest.raises(RuntimeError, match="boom"):
            runtime.run(32, lambda i: i, explode, lambda i, r: None)

    def test_producer_exception_propagates(self):
        def bad_produce(i):
            if i == 5:
                raise ValueError("bad input")
            return i

        runtime = PipelineRuntime(workers=2, queue_capacity=4)
        with pytest.raises(ValueError, match="bad input"):
            runtime.run(32, bad_produce, lambda i, v: v, lambda i, r: None)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            PipelineRuntime(workers=0)

    def test_commutative_side_effects_any_order(self):
        """A Commutative counter bumped from phase B: total is exact even
        though the order of bumps is nondeterministic."""
        lock = threading.Lock()
        counter = [0]

        def bump(i, v):
            with lock:  # the atomicity Commutative demands
                counter[0] += 1
            return v

        runtime = PipelineRuntime(workers=8, queue_capacity=8)
        runtime.run(300, lambda i: i, bump, lambda i, r: None)
        assert counter[0] == 300
