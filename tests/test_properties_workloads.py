"""Property-based tests over the workload substrates.

- the B-tree behaves exactly like a dict under random insert/delete/lookup;
- the BWT equals the classic sorted-rotations construction and inverts;
- the network simplex matches networkx on random instances;
- Huffman codes are optimal (match a brute-force check on tiny alphabets).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.bzip2_w import burrows_wheeler_transform, huffman_cost
from repro.workloads.mcf_solver import NetworkSimplex
from repro.workloads.vortex_w import BTree


# ---------------------------------------------------------------------------------
# B-tree vs dict
# ---------------------------------------------------------------------------------

@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "lookup"]),
            st.integers(min_value=0, max_value=50),
        ),
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_btree_matches_dict(operations):
    tree = BTree(tracer=None)
    reference = {}
    for index, (op, key) in enumerate(operations):
        if op == "insert":
            inserted = tree.insert(key, index)
            assert inserted == (key not in reference)
            if inserted:
                reference[key] = index
        elif op == "delete":
            deleted = tree.delete(key)
            assert deleted == (key in reference)
            reference.pop(key, None)
        else:
            assert tree.lookup(key) == reference.get(key)
    assert tree.size == len(reference)
    for key, value in reference.items():
        assert tree.lookup(key) == value


# ---------------------------------------------------------------------------------
# BWT vs sorted rotations
# ---------------------------------------------------------------------------------

def reference_bwt(block: bytes):
    """Classic O(n^2 log n) construction over explicit rotations of
    block + sentinel (sentinel = -1, smaller than every byte)."""
    symbols = [b for b in block] + [-1]
    n = len(symbols)
    rotations = sorted(range(n), key=lambda i: symbols[i:] + symbols[:i])
    return [symbols[(i - 1) % n] for i in rotations]


@given(block=st.binary(min_size=0, max_size=64))
@settings(max_examples=120, deadline=None)
def test_bwt_equals_sorted_rotations(block):
    fast, _ = burrows_wheeler_transform(block)
    assert fast == reference_bwt(block)


# ---------------------------------------------------------------------------------
# Network simplex vs networkx on random instances
# ---------------------------------------------------------------------------------

@st.composite
def flow_instances(draw):
    nodes = draw(st.integers(min_value=2, max_value=8))
    amount = draw(st.integers(min_value=1, max_value=5))
    supplies = [0] * nodes
    supplies[0] = amount
    supplies[-1] = -amount
    arcs = [(i, i + 1, amount, 10) for i in range(nodes - 1)]  # feasibility chain
    extra_count = draw(st.integers(min_value=0, max_value=10))
    for _ in range(extra_count):
        tail = draw(st.integers(min_value=0, max_value=nodes - 1))
        head = draw(st.integers(min_value=0, max_value=nodes - 1))
        if tail == head:
            continue
        capacity = draw(st.integers(min_value=1, max_value=6))
        cost = draw(st.integers(min_value=0, max_value=20))
        arcs.append((tail, head, capacity, cost))
    return supplies, arcs


@given(instance=flow_instances())
@settings(max_examples=60, deadline=None)
def test_network_simplex_matches_networkx(instance):
    import networkx as nx

    supplies, arcs = instance
    solver = NetworkSimplex(supplies, arcs)
    ours = solver.solve()
    graph = nx.MultiDiGraph()
    for node, supply in enumerate(supplies):
        graph.add_node(node, demand=-supply)
    for tail, head, capacity, cost in arcs:
        graph.add_edge(tail, head, capacity=capacity, weight=cost)
    assert ours == nx.min_cost_flow_cost(graph)
    assert solver.artificial_flow() == 0


# ---------------------------------------------------------------------------------
# Huffman optimality on tiny alphabets (brute force over code trees)
# ---------------------------------------------------------------------------------

def brute_force_optimal_bits(counts):
    """Minimum total bits over all binary code trees for <=4 symbols."""
    symbols = list(counts)
    if len(symbols) == 1:
        return counts[symbols[0]]

    best = [float("inf")]

    def merge(items):
        if len(items) == 1:
            best[0] = min(best[0], items[0][1])
            return
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                merged = (items[i][0] + items[j][0],
                          items[i][1] + items[j][1] + items[i][0] + items[j][0])
                rest = [items[k] for k in range(len(items)) if k not in (i, j)]
                merge(rest + [merged])

    merge([(count, 0) for count in counts.values()])
    return best[0]


@given(
    counts=st.dictionaries(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=1, max_value=40),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=60, deadline=None)
def test_huffman_is_optimal_on_small_alphabets(counts):
    assert huffman_cost(counts) == brute_force_optimal_bits(counts)
