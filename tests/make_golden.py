"""Regenerate the golden Prometheus exposition file.

Run after an *intentional* format change to ``repro.obs.serve``:

    PYTHONPATH=src python tests/make_golden.py

then review the diff of ``tests/golden/metrics_exposition.prom`` — it is a
wire contract pinned byte-for-byte by ``tests/test_live.py``.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))

from test_live import _GOLDEN_LABELS, _GOLDEN_WATCHDOG, _golden_registry  # noqa: E402

from repro.obs.serve import prometheus_exposition  # noqa: E402


def main() -> None:
    text = prometheus_exposition(
        _golden_registry().snapshot(),
        labels=_GOLDEN_LABELS,
        watchdog=_GOLDEN_WATCHDOG,
    )
    path = os.path.join(HERE, "golden", "metrics_exposition.prom")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {path} ({len(text)} bytes)")


if __name__ == "__main__":
    main()
