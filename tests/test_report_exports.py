"""Tests for report export helpers and the simulator's ordering guard."""

import pytest

from repro.core.report import SpeedupReport, SuiteReport, curve_to_csv, suite_to_json
from repro.core.simulator import PipelineSimulator
from repro.core.tasks import Phase, Task, TaskGraph
from repro.hw.machine import MachineConfig


class TestExports:
    def make_suite(self):
        suite = SuiteReport()
        suite.add(SpeedupReport("a", {1: 1.0, 8: 5.0}))
        suite.add(SpeedupReport("b", {1: 1.0, 8: 2.0}))
        return suite

    def test_csv_rows(self):
        suite = self.make_suite()
        csv = curve_to_csv(suite.reports)
        lines = csv.strip().splitlines()
        assert lines[0] == "benchmark,threads,speedup"
        assert "a,8,5.0000" in csv
        assert len(lines) == 1 + 4

    def test_json_structure(self):
        data = suite_to_json(self.make_suite())
        assert {row["benchmark"] for row in data["rows"]} == {"a", "b"}
        assert data["geomean"]["speedup"] == pytest.approx((5.0 * 2.0) ** 0.5)
        assert "curve" in data["rows"][0]

    def test_json_round_trips_through_stdlib(self):
        import json

        blob = json.dumps(suite_to_json(self.make_suite()))
        assert json.loads(blob)["arithmean"]["speedup"] == pytest.approx(3.5)


class TestIterationOrderGuard:
    def test_out_of_order_iterations_rejected(self):
        tasks = [
            Task(0, Phase.B, 1, 5),   # iteration 1 first...
            Task(1, Phase.B, 0, 5),   # ...then iteration 0
        ]
        graph = TaskGraph(tasks)
        with pytest.raises(ValueError, match="iteration order"):
            PipelineSimulator(MachineConfig(cores=4)).simulate(graph)

    def test_in_order_accepted(self):
        tasks = [
            Task(0, Phase.B, 0, 5),
            Task(1, Phase.B, 1, 5),
        ]
        graph = TaskGraph(tasks)
        result = PipelineSimulator(MachineConfig(cores=4)).simulate(graph)
        assert result.makespan == 5
