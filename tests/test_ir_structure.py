"""Unit tests for the IR containers: blocks, functions, programs, builder."""

import pytest

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Branch,
    Jump,
    Load,
    Return,
    Store,
    YBranch,
)
from repro.ir.printer import format_function, format_program
from repro.ir.program import Program
from repro.ir.types import BoolType, IntType, PointerType, VoidType
from repro.ir.values import Constant, MemoryObject


class TestTypes:
    def test_int_types_compare_by_width(self):
        assert IntType(64) == IntType(64)
        assert IntType(32) != IntType(64)
        assert hash(IntType(8)) == hash(IntType(8))

    def test_pointer_types_compare_by_pointee(self):
        assert PointerType(IntType(64)) == PointerType(IntType(64))
        assert PointerType(IntType(32)) != PointerType(IntType(64))

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)

    def test_pointer_predicate(self):
        assert PointerType(IntType(64)).is_pointer
        assert not IntType(64).is_pointer


class TestInstructions:
    def test_binop_result_type_follows_operands(self):
        op = BinOp("add", Constant(1), Constant(2))
        assert op.result is not None
        assert op.result.type == IntType(64)

    def test_comparison_produces_bool(self):
        op = BinOp("lt", Constant(1), Constant(2))
        assert isinstance(op.result.type, BoolType)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinOp("frobnicate", Constant(1), Constant(2))

    def test_load_reports_memory_objects(self):
        obj = MemoryObject("table")
        load = Load(obj, [obj])
        assert load.reads_memory
        assert not load.writes_memory
        assert load.memory_objects() == [obj]

    def test_store_reports_memory_objects(self):
        obj = MemoryObject("table")
        store = Store(Constant(7), obj, [obj])
        assert store.writes_memory
        assert not store.reads_memory

    def test_branch_targets(self):
        br = Branch(Constant(1), "then", "else")
        assert br.targets() == ["then", "else"]
        assert br.is_terminator

    def test_ybranch_probability_validation(self):
        with pytest.raises(ValueError):
            YBranch(Constant(1), "a", "b", probability=1.5)

    def test_ybranch_carries_probability(self):
        yb = YBranch(Constant(0), "a", "b", probability=0.0001)
        assert yb.probability == 0.0001
        assert isinstance(yb, Branch)

    def test_replace_operand(self):
        a, b = Constant(1), Constant(2)
        op = BinOp("add", a, a)
        assert op.replace_operand(a, b) == 2
        assert op.operands == [b, b]


class TestBasicBlock:
    def test_append_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.append(Jump("next"))
        with pytest.raises(ValueError):
            block.append(Return())

    def test_successor_names_from_terminator(self):
        block = BasicBlock("b")
        block.append(Branch(Constant(1), "x", "y"))
        assert block.successor_names() == ["x", "y"]

    def test_block_without_terminator_has_no_successors(self):
        block = BasicBlock("b")
        assert block.terminator is None
        assert block.successor_names() == []


class TestFunctionAndProgram:
    def test_duplicate_block_rejected(self):
        fn = Function("f")
        fn.new_block("entry")
        with pytest.raises(ValueError):
            fn.new_block("entry")

    def test_entry_is_first_block(self):
        fn = Function("f")
        fn.new_block("start")
        fn.new_block("other")
        assert fn.entry.name == "start"

    def test_verify_catches_missing_terminator(self):
        fn = Function("f")
        fn.new_block("entry")
        with pytest.raises(ValueError, match="terminator"):
            fn.verify()

    def test_verify_catches_unknown_target(self):
        fn = Function("f")
        block = fn.new_block("entry")
        block.append(Jump("nowhere"))
        with pytest.raises(ValueError, match="unknown block"):
            fn.verify()

    def test_commutative_marking(self):
        fn = Function("rng")
        fn.mark_commutative()
        assert fn.commutative_group == "rng"
        fn2 = Function("xmalloc")
        fn2.mark_commutative(group="allocator", rollback="xfree")
        assert fn2.commutative_group == "allocator"
        assert fn2.rollback == "xfree"

    def test_program_duplicate_function_rejected(self):
        program = Program()
        program.add_function(Function("f"))
        with pytest.raises(ValueError):
            program.add_function(Function("f"))

    def test_program_verify_catches_unknown_callee(self):
        pb = ProgramBuilder()
        fb = pb.function("main")
        fb.block("entry")
        fb.call("missing")
        fb.ret()
        with pytest.raises(ValueError, match="unknown function"):
            pb.finish()

    def test_commutative_group_members(self):
        program = Program()
        malloc = Function("malloc")
        malloc.mark_commutative(group="heap", rollback="free")
        free = Function("free")
        free.mark_commutative(group="heap")
        program.add_function(malloc)
        program.add_function(free)
        assert {f.name for f in program.commutative_group_members("heap")} == {
            "malloc",
            "free",
        }


class TestBuilder:
    def test_builder_produces_verified_program(self, counter_program):
        counter_program.verify()
        main = counter_program.function("main")
        assert {b.name for b in main.blocks} == {"entry", "loop", "exit"}

    def test_builder_coerces_python_ints(self):
        pb = ProgramBuilder()
        fb = pb.function("f")
        fb.block("entry")
        result = fb.add(1, 2)
        fb.ret(result)
        program = pb.finish()
        add = next(i for i in program.function("f").instructions() if i.opcode() == "add")
        assert all(isinstance(op, Constant) for op in add.operands)

    def test_printer_round_trips_names(self, counter_program):
        text = format_program(counter_program)
        assert "func main" in text
        assert "loop:" in text
        assert "@counter" in text

    def test_printer_shows_commutative_tag(self):
        pb = ProgramBuilder()
        fb = pb.function("rng")
        fb.block("entry")
        fb.ret(0)
        fb.function.mark_commutative()
        assert "commutative(rng)" in format_function(fb.function)
