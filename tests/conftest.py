"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

# Deterministic property tests: same examples on every machine, every run.
settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")

from repro.ir.builder import ProgramBuilder
from repro.ir.loops import find_loops
from repro.ir.types import IntType


@pytest.fixture
def counter_program():
    """A tiny program with a global-counter loop (one natural loop)."""
    pb = ProgramBuilder("counter")
    counter = pb.global_variable("counter")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    value = fb.load(counter, [counter], name="value")
    incremented = fb.add(value, 1, name="incremented")
    fb.store(incremented, counter, [counter])
    done = fb.compare("lt", incremented, 100, name="done")
    fb.branch(done, "loop", "exit")
    fb.block("exit")
    fb.ret(0)
    return pb.finish()


@pytest.fixture
def counter_loop(counter_program):
    nest = find_loops(counter_program.function("main"))
    return nest.outermost()


@pytest.fixture
def pipeline_program():
    """A loop with a clean A (induction) / B (heavy pure compute) / C
    (accumulator) structure: the canonical DSWP-friendly shape."""
    pb = ProgramBuilder("pipeline")
    total = pb.global_variable("total")
    data = pb.global_variable("data")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    i = fb.phi(IntType(64), [(0, "entry")], name="i")
    element = fb.load(data, [data], name="element", cost=2)
    squared = fb.mul(element, element, name="squared", cost=50)
    running = fb.load(total, [total], name="running", cost=1)
    updated = fb.add(running, squared, name="updated", cost=1)
    fb.store(updated, total, [total], cost=1)
    next_i = fb.add(i, 1, name="next_i", cost=1)
    phi = fb.function.block("loop").phis()[0]
    phi.operands.append(next_i)
    phi.incoming_blocks.append("loop")
    cond = fb.compare("lt", next_i, 1000, name="cond")
    fb.branch(cond, "loop", "exit")
    fb.block("exit")
    fb.ret()
    return pb.finish()


@pytest.fixture
def pipeline_loop(pipeline_program):
    nest = find_loops(pipeline_program.function("main"))
    return nest.outermost()
