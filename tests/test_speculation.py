"""Tests for speculation selection and misspeculation accounting."""

import pytest

from repro.pdg.builder import build_loop_pdg
from repro.pdg.scc import condense
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.memory_profile import MemoryProfile
from repro.profiling.tracer import Tracer
from repro.profiling.value_profile import ValueProfile
from repro.speculation.base import SpeculationKind
from repro.speculation.manager import (
    PdgSpeculationConfig,
    plan_from_profile,
    speculate_pdg,
)
from repro.speculation.misspec import analyze_misspeculation


def make_biased_branch_trace(site, bias_executions=99, other=1):
    tracer = Tracer()
    with tracer.task("B", 0):
        tracer.work(1)
        for _ in range(bias_executions):
            tracer.branch(site, taken=False)
        for _ in range(other):
            tracer.branch(site, taken=True)
    return tracer.finish()


class TestPdgSpeculation:
    def test_control_speculation_on_biased_branch(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        trace = make_biased_branch_trace("loop")
        decisions = speculate_pdg(pdg, branch_profile=BranchProfile(trace))
        kinds = {d.kind for d in decisions}
        assert SpeculationKind.CONTROL in kinds
        assert all(not pdg.effective_edges().count(e) or True for e in pdg.edges)

    def test_unbiased_branch_not_speculated(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        trace = make_biased_branch_trace("loop", bias_executions=60, other=40)
        decisions = speculate_pdg(pdg, branch_profile=BranchProfile(trace))
        assert SpeculationKind.CONTROL not in {d.kind for d in decisions}

    def test_alias_speculation_with_low_conflict_rate(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        memory_edges = [e for e in pdg.edges if e.kind == "memory" and e.loop_carried]
        rates = {(e.source, e.target): 0.01 for e in memory_edges}
        decisions = speculate_pdg(pdg, memory_conflict_rates=rates)
        assert SpeculationKind.ALIAS in {d.kind for d in decisions}
        # Speculation must unlock a bigger, finer SCC structure.
        assert all(not e.loop_carried for e in pdg.effective_edges() if e.kind == "memory")

    def test_alias_speculation_refused_on_hot_dependence(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        memory_edges = [e for e in pdg.edges if e.kind == "memory" and e.loop_carried]
        rates = {(e.source, e.target): 0.9 for e in memory_edges}
        decisions = speculate_pdg(pdg, memory_conflict_rates=rates)
        assert SpeculationKind.ALIAS not in {d.kind for d in decisions}

    def test_value_speculation_on_predictable_carried_register(
        self, pipeline_program, pipeline_loop
    ):
        pdg = build_loop_pdg(pipeline_program, pipeline_loop)
        carried_regs = [
            e for e in pdg.edges if e.kind == "register" and e.loop_carried
        ]
        assert carried_regs
        site = carried_regs[0].detail
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(1)
            for _ in range(100):
                tracer.value(site, 1234)
        decisions = speculate_pdg(pdg, value_profile=ValueProfile(tracer.finish()))
        assert SpeculationKind.VALUE in {d.kind for d in decisions}

    def test_thresholds_configurable(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        trace = make_biased_branch_trace("loop", bias_executions=80, other=20)
        config = PdgSpeculationConfig(control_bias_threshold=0.75)
        decisions = speculate_pdg(
            pdg, branch_profile=BranchProfile(trace), config=config
        )
        assert SpeculationKind.CONTROL in {d.kind for d in decisions}


class TestTracePlan:
    def make_profile(self, conflict_every=10, iterations=100):
        tracer = Tracer()
        for i in range(iterations):
            with tracer.task("B", i):
                tracer.work(10)
                if i % conflict_every == 0:
                    tracer.load("hot", 0)
                    tracer.store("hot", 0, value=i)
        return MemoryProfile(tracer.finish())

    def test_rare_conflicts_speculated(self):
        profile = self.make_profile(conflict_every=10)
        plan = plan_from_profile(profile)
        assert ("hot", 0) in plan.speculated
        assert plan.decisions

    def test_frequent_conflicts_synchronized(self):
        profile = self.make_profile(conflict_every=1)
        plan = plan_from_profile(profile)
        assert ("hot", 0) in plan.synchronized
        assert plan.synchronizations

    def test_forced_synchronization_overrides(self):
        profile = self.make_profile(conflict_every=10)
        plan = plan_from_profile(profile, forced_synchronized=[("hot", 0)])
        assert ("hot", 0) in plan.synchronized

    def test_forced_speculation_overrides(self):
        profile = self.make_profile(conflict_every=1)
        plan = plan_from_profile(profile, forced_speculated=[("hot", 0)])
        assert ("hot", 0) in plan.speculated

    def test_commutative_groups_reported(self):
        tracer = Tracer()
        with tracer.task("B", 0):
            tracer.work(1)
            with tracer.commutative("alloc"):
                tracer.store("arena", 0, value=1)
        profile = MemoryProfile(tracer.finish())
        plan = plan_from_profile(profile)
        assert plan.commutative_groups == ["alloc"]


class TestMisspeculation:
    def test_rate_counts_iterations_hit(self):
        tracer = Tracer()
        for i in range(10):
            with tracer.task("B", i):
                tracer.work(1)
                if i % 2 == 0:
                    tracer.load("hot", 0)
                    tracer.store("hot", 0, value=i)
        profile = MemoryProfile(tracer.finish())
        plan = plan_from_profile(profile, forced_speculated=[("hot", 0)])
        report = analyze_misspeculation(profile, plan)
        # iterations 2,4,6,8 read a value written by an earlier iteration
        assert report.misspeculated_iterations == 4
        assert report.rate == pytest.approx(0.4)
        assert report.worst_locations()[0][0] == ("hot", 0)

    def test_windowed_rates_expose_phase_behavior(self):
        tracer = Tracer()
        for i in range(100):
            with tracer.task("B", i):
                tracer.work(1)
                if i < 50:  # hot early phase, like vpr's early annealing
                    tracer.load("grid", 0)
                    tracer.store("grid", 0, value=i)
        profile = MemoryProfile(tracer.finish())
        plan = plan_from_profile(profile, forced_speculated=[("grid", 0)])
        report = analyze_misspeculation(profile, plan)
        windows = report.windowed_rates(window=50)
        assert windows[0] > 0.9
        assert windows[1] == 0.0

    def test_no_speculation_no_misspec(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.task("B", i):
                tracer.work(1)
        profile = MemoryProfile(tracer.finish())
        plan = plan_from_profile(profile)
        report = analyze_misspeculation(profile, plan)
        assert report.rate == 0.0
        assert report.events == []
