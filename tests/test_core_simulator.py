"""Tests for the task graph, execution plans and the pipeline simulator."""

import pytest

from repro.core.plan import ExecutionPlan
from repro.core.simulator import PipelineSimulator
from repro.core.tasks import Phase, SerializationEdge, Task, TaskGraph
from repro.hw.machine import MachineConfig


def make_graph(iterations=20, a=2, b=50, c=3, edges=()):
    tasks = []
    index = 0
    for i in range(iterations):
        for phase, cost in (("A", a), ("B", b), ("C", c)):
            tasks.append(Task(index, Phase(phase), i, cost))
            index += 1
    return TaskGraph(tasks, edges)


class TestTaskGraph:
    def test_indices_must_be_sequential(self):
        with pytest.raises(ValueError, match="sequential order"):
            TaskGraph([Task(1, Phase.A, 0, 1)])

    def test_backward_edge_rejected(self):
        graph = make_graph(2)
        with pytest.raises(ValueError, match="forward"):
            graph.add_edge(SerializationEdge(3, 1, "misspeculation"))

    def test_total_and_phase_costs(self):
        graph = make_graph(10, a=2, b=50, c=3)
        assert graph.total_cost() == 10 * 55
        assert graph.phase_cost(Phase.B) == 500

    def test_iterations(self):
        assert make_graph(7).iterations() == 7


class TestExecutionPlan:
    def test_one_core_sequential(self):
        plan = ExecutionPlan.for_machine(MachineConfig(cores=1))
        assert plan.is_sequential

    def test_two_cores_shares_sequential_phases(self):
        plan = ExecutionPlan.for_machine(MachineConfig(cores=2))
        assert plan.a_core == plan.c_core == 0
        assert plan.b_cores == [1]
        assert not plan.is_sequential

    def test_many_cores_dedicated_endpoints(self):
        plan = ExecutionPlan.for_machine(MachineConfig(cores=32))
        assert plan.a_core == 0
        assert plan.c_core == 31
        assert plan.replication_width == 30

    def test_missing_phases_free_cores(self):
        plan = ExecutionPlan.for_machine(MachineConfig(cores=4), has_a=False, has_c=False)
        assert plan.replication_width == 4


class TestPipelineSimulator:
    def test_single_core_time_equals_total(self):
        graph = make_graph()
        result = PipelineSimulator(MachineConfig(cores=1)).simulate(graph)
        assert result.makespan == graph.total_cost()
        assert result.speedup == 1.0

    def test_speedup_bounded_by_core_count(self):
        graph = make_graph(iterations=100)
        for cores in (2, 4, 8, 16, 32):
            result = PipelineSimulator(MachineConfig(cores=cores)).simulate(graph)
            assert result.speedup <= cores + 1e-9

    def test_perfectly_parallel_scales(self):
        graph = make_graph(iterations=300, a=1, b=100, c=1)
        result = PipelineSimulator(MachineConfig(cores=12)).simulate(graph)
        # 10 B cores; B dominates => speedup close to 10.
        assert result.speedup > 8.5

    def test_sequential_phase_bounds_speedup(self):
        # A as heavy as B: pipeline can never beat total/sum(A).
        graph = make_graph(iterations=100, a=50, b=50, c=1)
        result = PipelineSimulator(MachineConfig(cores=32)).simulate(graph)
        bound = graph.total_cost() / graph.phase_cost(Phase.A)
        assert result.speedup <= bound + 1e-9
        assert result.speedup > 0.8 * bound

    def test_serialization_chain_limits_speedup(self):
        # Every B depends on the previous B: no parallelism at all.
        iterations = 50
        edges = []
        for i in range(1, iterations):
            source = (i - 1) * 3 + 1  # B of iteration i-1
            target = i * 3 + 1
            edges.append(SerializationEdge(source, target, "misspeculation"))
        graph = make_graph(iterations, edges=edges)
        result = PipelineSimulator(MachineConfig(cores=16)).simulate(graph)
        assert result.speedup < 1.3
        assert result.serialization_wait_time > 0

    def test_misspeculation_charges_no_extra_cost(self):
        # A fully serialized B chain on many cores must cost exactly the
        # sequential B time plus pipeline fill, never more.
        iterations = 50
        edges = [
            SerializationEdge((i - 1) * 3 + 1, i * 3 + 1, "misspeculation")
            for i in range(1, iterations)
        ]
        graph = make_graph(iterations, a=1, b=20, c=1, edges=edges)
        result = PipelineSimulator(MachineConfig(cores=8)).simulate(graph)
        b_total = graph.phase_cost(Phase.B)
        assert result.makespan <= b_total + iterations * 2 + 50

    def test_queue_capacity_throttles_runahead(self):
        # Tiny queues + slow consumer: producer must stall.
        machine = MachineConfig(cores=3, queue_capacity=2)
        graph = make_graph(iterations=40, a=1, b=1, c=30)
        result = PipelineSimulator(machine).simulate(graph)
        assert result.queue_stall_time > 0

    def test_commutative_lock_serializes_sections(self):
        # Each B task spends ALL its time in one group's section: the lock
        # forces full serialization despite many cores.
        tasks = []
        index = 0
        for i in range(30):
            task = Task(index, Phase.B, i, 10, section_costs={"alloc": 10})
            tasks.append(task)
            index += 1
        graph = TaskGraph(tasks)
        result = PipelineSimulator(MachineConfig(cores=16)).simulate(graph)
        assert result.speedup < 1.5
        assert result.lock_wait_time > 0

    def test_small_sections_barely_hurt(self):
        tasks = []
        for i in range(64):
            tasks.append(Task(i, Phase.B, i, 100, section_costs={"alloc": 1}))
        graph = TaskGraph(tasks)
        result = PipelineSimulator(MachineConfig(cores=16)).simulate(graph)
        assert result.speedup > 10

    def test_communication_latency_slows_pipeline(self):
        graph = make_graph(iterations=50, a=5, b=5, c=5)
        fast = PipelineSimulator(MachineConfig(cores=4)).simulate(graph)
        slow = PipelineSimulator(
            MachineConfig(cores=4, communication_latency=20)
        ).simulate(graph)
        assert slow.makespan >= fast.makespan

    def test_two_b_tasks_same_iteration_rejected(self):
        tasks = [
            Task(0, Phase.B, 0, 1),
            Task(1, Phase.B, 0, 1),
        ]
        graph = TaskGraph(tasks)
        with pytest.raises(ValueError, match="two B tasks"):
            PipelineSimulator(MachineConfig(cores=4)).simulate(graph)

    def test_utilization_and_busy_accounting(self):
        graph = make_graph(iterations=100, a=1, b=50, c=1)
        result = PipelineSimulator(MachineConfig(cores=8)).simulate(graph)
        assert 0 < result.utilization <= 1.0
        assert sum(result.core_busy_time.values()) == graph.total_cost()

    def test_makespan_at_least_critical_path(self):
        graph = make_graph(iterations=10, a=1, b=30, c=1)
        result = PipelineSimulator(MachineConfig(cores=32)).simulate(graph)
        # One iteration's A+B+C chain is a lower bound.
        assert result.makespan >= 32
