"""Tests for PDG construction and SCC condensation."""

import pytest

from repro.pdg.builder import build_loop_pdg
from repro.pdg.graph import PDG, PDGEdge
from repro.pdg.scc import condense
from repro.ir.builder import ProgramBuilder
from repro.ir.loops import find_loops
from repro.ir.types import IntType


class TestPDGGraph:
    def test_edges_require_known_nodes(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        with pytest.raises(KeyError):
            pdg.add_edge(PDGEdge(999999, 999998, "register"))

    def test_speculated_edges_excluded_from_effective(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        edge = pdg.edges[0]
        before = len(pdg.effective_edges())
        pdg.speculate_edge(edge, "alias")
        assert len(pdg.effective_edges()) == before - 1
        assert pdg.is_speculated(edge)
        assert pdg.speculation_technique(edge) == "alias"

    def test_loop_carried_edges_present(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        assert pdg.loop_carried_edges()

    def test_total_cost_matches_instructions(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        assert pdg.total_cost() == sum(i.cost for i in counter_loop.instructions())


class TestPDGBuilder:
    def test_control_edges_from_loop_branch(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        control = [e for e in pdg.edges if e.kind == "control"]
        assert control
        branch = counter_loop.function.block("loop").terminator
        assert all(e.source == branch.id for e in control)

    def test_ybranch_induces_no_control_edges(self):
        pb = ProgramBuilder()
        g = pb.global_variable("g")
        fb = pb.function("main")
        fb.block("entry")
        fb.jump("loop")
        fb.block("loop")
        v = fb.load(g, [g], name="v")
        fb.store(fb.add(v, 1), g, [g])
        cond = fb.compare("lt", v, 10, name="cond")
        fb.ybranch(cond, "loop", "exit", probability=0.01)
        fb.block("exit")
        fb.ret()
        program = pb.finish()
        loop = find_loops(program.function("main")).outermost()
        pdg = build_loop_pdg(program, loop)
        assert [e for e in pdg.edges if e.kind == "control"] == []


class TestSCCCondensation:
    def test_counter_loop_forms_memory_cycle(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        dag = condense(pdg)
        # load->add->store->load(carried) must collapse into one SCC.
        sizes = sorted(len(scc) for scc in dag.sccs)
        assert max(sizes) >= 3

    def test_condensation_is_acyclic(self, pipeline_program, pipeline_loop):
        pdg = build_loop_pdg(pipeline_program, pipeline_loop)
        dag = condense(pdg)
        order = dag.topological_order()  # raises on cycle
        position = {scc.index: i for i, scc in enumerate(order)}
        for a, b in dag.edges:
            assert position[a] < position[b]

    def test_pure_compute_scc_is_doall(self, pipeline_program, pipeline_loop):
        pdg = build_loop_pdg(pipeline_program, pipeline_loop)
        dag = condense(pdg)
        heavy = max(dag.sccs, key=lambda s: s.cost)
        assert heavy.doall
        assert heavy.cost >= 50

    def test_accumulator_scc_not_doall(self, pipeline_program, pipeline_loop):
        pdg = build_loop_pdg(pipeline_program, pipeline_loop)
        dag = condense(pdg)
        store = next(
            i for i in pipeline_loop.instructions() if i.opcode() == "store"
        )
        assert not dag.scc_of(store.id).doall

    def test_speculation_enables_doall(self, counter_program, counter_loop):
        pdg = build_loop_pdg(counter_program, counter_loop)
        before = condense(pdg)
        assert not any(scc.doall and scc.cost > 1 for scc in before.sccs)
        for edge in pdg.loop_carried_edges():
            pdg.speculate_edge(edge, "alias")
        after = condense(pdg)
        assert len(after.sccs) > len(before.sccs) or any(
            scc.doall and scc.cost > 1 for scc in after.sccs
        )

    def test_costs_partition_total(self, pipeline_program, pipeline_loop):
        pdg = build_loop_pdg(pipeline_program, pipeline_loop)
        dag = condense(pdg)
        assert dag.total_cost() == pdg.total_cost()
        node_count = sum(len(scc) for scc in dag.sccs)
        assert node_count == len(pdg)
