"""Reusable example-program builders for tests, benchmarks and docs.

These construct small IR programs with well-understood dependence shapes:

- :func:`build_pipeline_loop` — the canonical A/B/C shape (cheap induction,
  heavy pure compute, accumulator);
- :func:`build_two_hump_loop` — two heavy DOALL regions split by a
  sequential recurrence, the shape where multi-stage PS-DSWP beats the
  paper's 3-phase plan;
- :func:`build_counter_loop` — a single fully-serial memory recurrence.
"""

from __future__ import annotations

from typing import Tuple

from repro.ir.builder import ProgramBuilder
from repro.ir.loops import Loop, find_loops
from repro.ir.program import Program
from repro.ir.types import IntType


def build_counter_loop(trip_count: int = 100) -> Tuple[Program, Loop]:
    """One global counter incremented per iteration: a pure recurrence."""
    pb = ProgramBuilder("counter")
    counter = pb.global_variable("counter")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    value = fb.load(counter, [counter], name="value")
    incremented = fb.add(value, 1, name="incremented")
    fb.store(incremented, counter, [counter])
    done = fb.compare("lt", incremented, trip_count, name="done")
    fb.branch(done, "loop", "exit")
    fb.block("exit")
    fb.ret(0)
    program = pb.finish()
    return program, find_loops(program.function("main")).outermost()


def build_pipeline_loop(
    trip_count: int = 1000, compute_cost: int = 50
) -> Tuple[Program, Loop]:
    """Induction (A) -> heavy pure compute (B) -> accumulator (C)."""
    pb = ProgramBuilder("pipeline")
    total = pb.global_variable("total")
    data = pb.global_variable("data")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    i = fb.phi(IntType(64), [(0, "entry")], name="i")
    element = fb.load(data, [data], name="element", cost=2)
    squared = fb.mul(element, element, name="squared", cost=compute_cost)
    running = fb.load(total, [total], name="running", cost=1)
    fb.store(fb.add(running, squared, name="updated", cost=1), total, [total], cost=1)
    next_i = fb.add(i, 1, name="next_i", cost=1)
    phi = fb.function.block("loop").phis()[0]
    phi.operands.append(next_i)
    phi.incoming_blocks.append("loop")
    fb.branch(fb.compare("lt", next_i, trip_count, name="cond"), "loop", "exit")
    fb.block("exit")
    fb.ret()
    program = pb.finish()
    return program, find_loops(program.function("main")).outermost()


def build_caller_callee_loop(
    trip_count: int = 1000, callee_cost: int = 80, commutative_helper: bool = False
) -> Tuple[Program, Loop]:
    """A loop whose heavy compute hides behind a function call.

    The whole-program-scope case (Section 2.2): until the call is inlined,
    the partitioner sees one opaque node; after ``inline_loop_calls`` the
    callee's pure compute becomes the parallel stage.
    """
    pb = ProgramBuilder("scoped")
    total = pb.global_variable("total")
    data = pb.global_variable("data")

    helper = pb.function("heavy", [IntType(64)], ["x"])
    helper.block("entry")
    squared = helper.mul(helper.param(0), helper.param(0), name="squared",
                         cost=callee_cost)
    helper.ret(squared)
    if commutative_helper:
        helper.function.mark_commutative(group="heavy")

    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    i = fb.phi(IntType(64), [(0, "entry")], name="i")
    element = fb.load(data, [data], name="element", cost=2)
    call = fb.call("heavy", [element], name="result", cost=1)
    running = fb.load(total, [total], name="running", cost=1)
    fb.store(fb.add(running, call.result), total, [total], cost=1)
    next_i = fb.add(i, 1, name="next_i")
    phi = fb.function.block("loop").phis()[0]
    phi.operands.append(next_i)
    phi.incoming_blocks.append("loop")
    fb.branch(fb.compare("lt", next_i, trip_count, name="cond"), "loop", "exit")
    fb.block("exit")
    fb.ret()
    program = pb.finish()
    program.set_main("main")
    return program, find_loops(program.function("main")).outermost()


def build_two_hump_loop(
    trip_count: int = 100000, hump_cost: int = 100
) -> Tuple[Program, Loop]:
    """B1 (heavy, pure) -> S (carried recurrence) -> B2 (heavy, pure).

    B2 consumes S's per-iteration output, so no topological order can merge
    the humps — the multi-stage planner's motivating shape.
    """
    pb = ProgramBuilder("two_hump")
    mid = pb.global_variable("mid")
    out = pb.global_variable("out")
    data = pb.global_variable("data")
    fb = pb.function("main")
    fb.block("entry")
    fb.jump("loop")
    fb.block("loop")
    i = fb.phi(IntType(64), [(0, "entry")], name="i")
    element = fb.load(data, [data], name="element", cost=2)
    hump1 = fb.mul(element, element, name="hump1", cost=hump_cost)
    carried = fb.load(mid, [mid], name="carried", cost=1)
    mixed = fb.add(carried, hump1, name="mixed", cost=1)
    fb.store(mixed, mid, [mid], cost=1)
    hump2 = fb.mul(mixed, 3, name="hump2", cost=hump_cost)
    acc = fb.load(out, [out], name="acc", cost=1)
    fb.store(fb.add(acc, hump2, name="acc2", cost=1), out, [out], cost=1)
    next_i = fb.add(i, 1, name="next_i")
    phi = fb.function.block("loop").phis()[0]
    phi.operands.append(next_i)
    phi.incoming_blocks.append("loop")
    fb.branch(fb.compare("lt", next_i, trip_count, name="cond"), "loop", "exit")
    fb.block("exit")
    fb.ret()
    program = pb.finish()
    return program, find_loops(program.function("main")).outermost()
