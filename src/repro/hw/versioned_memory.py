"""Executable versioned memory (Vachharajani et al. [33], Section 3.1).

The paper's simulator "assumes a versioned memory hardware subsystem,
allowing for privatization of data and memory alias speculation".  This
module makes the subsystem executable so its invariants can be tested
directly (and property-tested with hypothesis):

- every speculative *epoch* (one loop iteration / one task) sees its own
  private version of each location, seeded from the latest committed state
  and from *eagerly forwarded* values of earlier uncommitted epochs;
- a write is buffered in the epoch's version (privatization);
- conflict detection: when epoch *e* commits, any younger epoch that read a
  location *e* wrote — and read a value other than *e*'s — has
  misspeculated and must be squashed;
- *silent stores* ([15], Section 2.1) are detected at write time: a write of
  the already-visible value is recorded but never triggers conflicts;
- commit strictly in epoch order; rollback discards the version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

Location = Tuple[str, Hashable]


class EpochState(Enum):
    """Lifecycle of a speculative epoch."""

    RUNNING = "running"
    COMMITTED = "committed"
    SQUASHED = "squashed"


class ConflictError(RuntimeError):
    """Raised when commit order or version discipline is violated."""


@dataclass
class Epoch:
    """One speculative execution context (a loop iteration / task).

    ``reads`` maps each location to ``(value, source_epoch_number)`` — the
    version the read observed.  Conflict detection is version-based: a read
    is stale only if a committing older epoch wrote the location *and* the
    read's source version is older than the committer (the read bypassed the
    committer's write).
    """

    number: int
    state: EpochState = EpochState.RUNNING
    reads: Dict[Location, Tuple[Any, int]] = field(default_factory=dict)
    writes: Dict[Location, Any] = field(default_factory=dict)
    silent_writes: Set[Location] = field(default_factory=set)

    def __hash__(self) -> int:
        return hash(self.number)


class VersionedMemory:
    """The versioned memory subsystem.

    Epochs are created with :meth:`begin_epoch`, numbered in program order.
    :meth:`read`/:meth:`write` operate on an epoch's private version.
    :meth:`commit` must be called in epoch order; it returns the set of
    younger epochs that misspeculated and were squashed.  Squashed epochs
    must be re-executed in a fresh epoch via :meth:`reissue`.
    """

    def __init__(self, eager_forwarding: bool = True) -> None:
        #: committed architectural state
        self._memory: Dict[Location, Any] = {}
        #: epoch number that committed each location's current value
        self._committed_version: Dict[Location, int] = {}
        self._epochs: Dict[int, Epoch] = {}
        self._next_commit = 0
        self._next_number = 0
        self.eager_forwarding = eager_forwarding
        self.conflicts_detected = 0
        self.silent_stores_suppressed = 0
        #: chaos-harness hook: called at commit time as
        #: ``injector(committing_epoch_number, younger_epoch) -> bool``;
        #: a True verdict force-squashes the younger epoch exactly as a real
        #: conflict would (cascades included), so sequential equivalence can
        #: be tested under arbitrary forced misspeculation.
        self.conflict_injector: Optional[Any] = None
        self.injected_conflicts = 0

    # -- epoch lifecycle --------------------------------------------------------

    def begin_epoch(self) -> Epoch:
        epoch = Epoch(self._next_number)
        self._epochs[epoch.number] = epoch
        self._next_number += 1
        return epoch

    def reissue(self, squashed: Epoch) -> Epoch:
        """Create a fresh epoch to re-execute a squashed one's work.

        The fresh epoch takes the squashed epoch's *commit slot* so commit
        order matches original iteration order.
        """
        if squashed.state is not EpochState.SQUASHED:
            raise ConflictError(f"epoch {squashed.number} is not squashed")
        fresh = Epoch(squashed.number)
        fresh.state = EpochState.RUNNING
        self._epochs[squashed.number] = fresh
        return fresh

    # -- accesses -------------------------------------------------------------------

    def read(self, epoch: Epoch, obj: str, key: Hashable = None) -> Any:
        self._check_running(epoch)
        location: Location = (obj, key)
        value, source = self._visible_value(epoch, location)
        # The read *set* keeps the first observation per location: later
        # reads may be satisfied by the epoch's own write, but the epoch's
        # fate still hinges on the version it originally speculated on.
        if location not in epoch.reads:
            epoch.reads[location] = (value, source)
        return value

    def write(self, epoch: Epoch, obj: str, key: Hashable, value: Any) -> None:
        self._check_running(epoch)
        location: Location = (obj, key)
        visible, _ = self._visible_value(epoch, location)
        if visible == value and location not in epoch.writes:
            # Silent store: record for completeness, never a conflict source.
            epoch.silent_writes.add(location)
            self.silent_stores_suppressed += 1
        epoch.writes[location] = value

    def _visible_value(self, epoch: Epoch, location: Location) -> Tuple[Any, int]:
        """(value, source epoch number) visible to ``epoch`` at ``location``."""
        # Own version first.
        if location in epoch.writes:
            return epoch.writes[location], epoch.number
        # Eager forwarding: newest write of the closest older running epoch
        # (Section 2.1: "stored values should be eagerly forwarded to later
        # threads to avoid misspeculation" [10]).
        if self.eager_forwarding:
            for number in range(epoch.number - 1, self._next_commit - 1, -1):
                older = self._epochs.get(number)
                if older is None or older.state is not EpochState.RUNNING:
                    continue
                if location in older.writes:
                    return older.writes[location], number
        return self._memory.get(location), self._committed_version.get(location, -1)

    # -- commit / rollback -----------------------------------------------------------

    def commit(self, epoch: Epoch) -> List[Epoch]:
        """Commit ``epoch``; squash and return misspeculated younger epochs."""
        self._check_running(epoch)
        if epoch.number != self._next_commit:
            raise ConflictError(
                f"epoch {epoch.number} cannot commit before epoch {self._next_commit}"
            )
        squashed: List[Epoch] = []
        effective_writes = {
            location: value
            for location, value in epoch.writes.items()
            if location not in epoch.silent_writes
        }
        for number in sorted(self._epochs):
            if number <= epoch.number:
                continue
            younger = self._epochs[number]
            if younger.state is not EpochState.RUNNING:
                continue
            for location, (seen, source) in younger.reads.items():
                if location not in effective_writes:
                    continue
                # Version check: the read is stale only if it bypassed this
                # commit's write (its source version is older than us).
                if source < epoch.number and seen != effective_writes[location]:
                    younger.state = EpochState.SQUASHED
                    self.conflicts_detected += 1
                    squashed.append(younger)
                    break
        # Forced misspeculation (chaos harness): squash additional younger
        # epochs on the injector's verdict, before cascades propagate.
        if self.conflict_injector is not None:
            for number in sorted(self._epochs):
                if number <= epoch.number:
                    continue
                younger = self._epochs[number]
                if younger.state is not EpochState.RUNNING:
                    continue
                if self.conflict_injector(epoch.number, younger):
                    younger.state = EpochState.SQUASHED
                    self.injected_conflicts += 1
                    squashed.append(younger)
        # Cascade: an epoch that forwarded a value out of a now-squashed
        # epoch read a version that will never commit — squash it too.
        frontier = list(squashed)
        while frontier:
            bad = frontier.pop()
            for number in sorted(self._epochs):
                if number <= bad.number:
                    continue
                younger = self._epochs[number]
                if younger.state is not EpochState.RUNNING:
                    continue
                if any(source == bad.number for _, source in younger.reads.values()):
                    younger.state = EpochState.SQUASHED
                    self.conflicts_detected += 1
                    squashed.append(younger)
                    frontier.append(younger)
        self._memory.update(epoch.writes)
        for location in epoch.writes:
            self._committed_version[location] = epoch.number
        epoch.state = EpochState.COMMITTED
        self._next_commit += 1
        return squashed

    def rollback(self, epoch: Epoch) -> None:
        """Discard an epoch's version without committing."""
        if epoch.state is EpochState.COMMITTED:
            raise ConflictError(f"epoch {epoch.number} already committed")
        epoch.state = EpochState.SQUASHED
        epoch.writes.clear()
        epoch.silent_writes.clear()

    # -- queries -----------------------------------------------------------------------

    def committed_value(self, obj: str, key: Hashable = None) -> Any:
        return self._memory.get((obj, key))

    def architectural_state(self) -> Dict[Location, Any]:
        return dict(self._memory)

    @property
    def next_commit_number(self) -> int:
        return self._next_commit

    def _check_running(self, epoch: Epoch) -> None:
        current = self._epochs.get(epoch.number)
        if current is not epoch:
            raise ConflictError(
                f"epoch {epoch.number} was reissued; stale handle used"
            )
        if epoch.state is not EpochState.RUNNING:
            raise ConflictError(f"epoch {epoch.number} is {epoch.state.value}")
