"""Machine configuration: the paper's simulated multi-core (Section 3.1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the simulated machine.

    Defaults mirror the paper: studies from 1 to 32 cores, and "the simulator
    accurately modeled full and empty conditions on 256 32-entry queues".
    ``communication_latency`` is the cost (in the same abstract units as task
    costs) of a value crossing a core-to-core queue; the paper does not model
    micro-architectural effects, so it defaults to zero and an ablation bench
    explores nonzero values.
    """

    cores: int = 32
    queue_count: int = 256
    queue_capacity: int = 32
    communication_latency: int = 0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"need at least one core, got {self.cores}")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be positive")
        if self.queue_count < 1:
            raise ValueError("queue count must be positive")
        if self.communication_latency < 0:
            raise ValueError("communication latency cannot be negative")

    def with_cores(self, cores: int) -> "MachineConfig":
        return MachineConfig(
            cores=cores,
            queue_count=self.queue_count,
            queue_capacity=self.queue_capacity,
            communication_latency=self.communication_latency,
        )
