"""A small deterministic discrete-event kernel.

Ordering is total: (time, priority, sequence number).  Used by the TLS
runtime and available to user code; the DSWP performance simulator uses
direct recurrences (its schedule is computable in one in-order pass) but the
kernel backs the ablation that cross-checks the two.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

Event = Tuple[int, int, int, Callable[[], None]]


class EventKernel:
    """A priority-queue driven event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self.now = 0
        self.events_processed = 0

    def schedule(self, time: int, action: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``action`` at ``time`` (must not be in the past)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time}, now is {self.now}")
        heapq.heappush(self._queue, (time, priority, next(self._sequence), action))

    def schedule_after(self, delay: int, action: Callable[[], None], priority: int = 0) -> None:
        self.schedule(self.now + delay, action, priority)

    def run(self, until: Optional[int] = None) -> int:
        """Drain the queue (optionally stopping after time ``until``); return final time."""
        while self._queue:
            time, priority, seq, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            self.events_processed += 1
            action()
        return self.now

    def step(self) -> bool:
        """Process one event; return False when the queue is empty."""
        if not self._queue:
            return False
        time, priority, seq, action = heapq.heappop(self._queue)
        self.now = time
        self.events_processed += 1
        action()
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)
