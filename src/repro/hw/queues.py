"""Core-to-core communication queues.

Three views of the same hardware:

- :class:`BoundedQueue` — an executable FIFO with capacity semantics, used
  by the runtime-correctness tests and the DSWP multithreaded-code-generation
  examples (a producer stage blocks on full, a consumer on empty — the
  "synchronization array" behaviour of Rangan et al. [26]);
- :class:`BlockingBoundedQueue` — the same FIFO wrapped in condition
  variables so real threads genuinely *block* on full/empty instead of
  receiving an error; this is the queue the executable pipeline runtimes
  (:mod:`repro.dswp.runtime` and :mod:`repro.exec`) stand on;
- :class:`TimedQueueModel` — the performance-simulation view: given the
  *times* of produces and consumes it answers "when may the k-th produce
  complete?" under the capacity bound, which is exactly the full/empty
  condition the paper's simulator models on its 256 32-entry queues.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

T = TypeVar("T")


class QueueFullError(RuntimeError):
    """Non-blocking produce on a full queue."""


class QueueEmptyError(RuntimeError):
    """Non-blocking consume on an empty queue."""


class BoundedQueue(Generic[T]):
    """An executable bounded FIFO with occupancy statistics."""

    def __init__(self, capacity: int = 32, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.produces = 0
        self.consumes = 0
        self.full_rejections = 0
        self.empty_rejections = 0
        self.max_occupancy = 0

    def produce(self, item: T) -> None:
        if self.full:
            self.full_rejections += 1
            raise QueueFullError(f"queue {self.name or id(self)} full at {self.capacity}")
        self._items.append(item)
        self.produces += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))

    def try_produce(self, item: T) -> bool:
        if self.full:
            self.full_rejections += 1
            return False
        self._items.append(item)
        self.produces += 1
        self.max_occupancy = max(self.max_occupancy, len(self._items))
        return True

    def consume(self) -> T:
        if self.empty:
            self.empty_rejections += 1
            raise QueueEmptyError(f"queue {self.name or id(self)} empty")
        self.consumes += 1
        return self._items.popleft()

    def try_consume(self) -> Optional[T]:
        if self.empty:
            self.empty_rejections += 1
            return None
        self.consumes += 1
        return self._items.popleft()

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"BoundedQueue({self.name!r}, {len(self._items)}/{self.capacity})"


class BlockingBoundedQueue(Generic[T]):
    """A :class:`BoundedQueue` with real blocking full/empty semantics.

    A produce on a full queue and a consume on an empty queue *wait* (the
    synchronization-array behaviour) instead of raising, which is what the
    executable runtimes need: the threaded DSWP pipeline and the exec
    engine's in-process channels both stand on this class.  The underlying
    queue's occupancy statistics remain observable through :attr:`stats`.
    """

    def __init__(self, capacity: int = 32, name: str = "") -> None:
        self._queue: BoundedQueue[T] = BoundedQueue(capacity=capacity, name=name)
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)

    @property
    def capacity(self) -> int:
        return self._queue.capacity

    @property
    def stats(self) -> BoundedQueue:
        """The wrapped queue, exposing produces/consumes/max_occupancy."""
        return self._queue

    def put(self, item: T) -> None:
        """Produce ``item``, blocking while the queue is full."""
        with self._not_full:
            while self._queue.full:
                self._not_full.wait()
            self._queue.produce(item)
            self._not_empty.notify()

    def get(self) -> T:
        """Consume the oldest item, blocking while the queue is empty."""
        with self._not_empty:
            while self._queue.empty:
                self._not_empty.wait()
            item = self._queue.consume()
            self._not_full.notify()
            return item

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def __repr__(self) -> str:
        return f"Blocking{self._queue!r}"


class TimedQueueModel:
    """Occupancy-over-time model of one bounded queue.

    The performance simulator records the time of each produce and each
    consume.  The capacity bound means produce *k* (0-based) may not complete
    before consume *k - capacity* has happened: the producer stalls on a full
    queue.  Symmetrically consume *k* may not happen before produce *k*.

    The model is intentionally order-strict (FIFO tokens); the DSWP execution
    plans produce and consume iteration tokens in order per queue.
    """

    def __init__(self, capacity: int = 32, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._produce_times: List[int] = []
        self._consume_times: List[int] = []
        self.stall_time = 0

    def earliest_produce_completion(self, ready_time: int) -> int:
        """When the next produce may complete, given it is ready at ``ready_time``."""
        k = len(self._produce_times)
        blocked_until = ready_time
        backlog_index = k - self.capacity
        if backlog_index >= 0:
            if backlog_index >= len(self._consume_times):
                raise QueueFullError(
                    f"queue {self.name}: produce {k} needs consume {backlog_index} "
                    "which has not been recorded — deadlocked schedule"
                )
            blocked_until = max(blocked_until, self._consume_times[backlog_index])
        return blocked_until

    def record_produce(self, ready_time: int) -> int:
        """Record a produce that became ready at ``ready_time``; return its completion time."""
        completion = self.earliest_produce_completion(ready_time)
        self.stall_time += completion - ready_time
        self._produce_times.append(completion)
        return completion

    def earliest_consume(self, ready_time: int) -> int:
        """When the next consume may happen, given the consumer is ready then."""
        k = len(self._consume_times)
        if k >= len(self._produce_times):
            raise QueueEmptyError(
                f"queue {self.name}: consume {k} precedes produce {k} — "
                "deadlocked schedule"
            )
        return max(ready_time, self._produce_times[k])

    def record_consume(self, ready_time: int) -> int:
        moment = self.earliest_consume(ready_time)
        self._consume_times.append(moment)
        return moment

    @property
    def produced(self) -> int:
        return len(self._produce_times)

    @property
    def consumed(self) -> int:
        return len(self._consume_times)

    def occupancy_at_end(self) -> int:
        return self.produced - self.consumed

    def __repr__(self) -> str:
        return (
            f"TimedQueueModel({self.name!r}, produced={self.produced}, "
            f"consumed={self.consumed}, capacity={self.capacity})"
        )
