"""The hardware substrate the paper's simulator assumes (Section 3.1).

"The model assumes that tasks communicate via shared memory and core-to-core
communication queues.  It further assumes a versioned memory hardware
subsystem, allowing for privatization of data and memory alias speculation.
... the simulator accurately modeled full and empty conditions on 256
32-entry queues."

- :mod:`repro.hw.machine` — the machine description (cores, queues, latency);
- :mod:`repro.hw.queues` — bounded core-to-core queues with full/empty
  blocking semantics, in two forms: an executable queue for runtime tests
  and a timestamped occupancy model for the performance simulator;
- :mod:`repro.hw.versioned_memory` — an executable versioned-memory model:
  per-epoch speculative versions, privatization, conflict detection, eager
  forwarding, silent-store suppression, in-order commit and rollback;
- :mod:`repro.hw.events` — a small deterministic discrete-event kernel.
"""

from repro.hw.events import EventKernel
from repro.hw.machine import MachineConfig
from repro.hw.queues import (
    BlockingBoundedQueue,
    BoundedQueue,
    QueueEmptyError,
    QueueFullError,
    TimedQueueModel,
)
from repro.hw.versioned_memory import (
    ConflictError,
    Epoch,
    EpochState,
    VersionedMemory,
)

__all__ = [
    "BlockingBoundedQueue",
    "BoundedQueue",
    "ConflictError",
    "Epoch",
    "EpochState",
    "EventKernel",
    "MachineConfig",
    "QueueEmptyError",
    "QueueFullError",
    "TimedQueueModel",
    "VersionedMemory",
]
