"""Thread-Level Speculation: the comparison execution model (Section 2.1).

"TLS techniques speculatively execute subsequent iterations of a loop before
the current iteration finishes, attempting to extract DOALL parallelism."

- :mod:`repro.tls.epochs` — an executable TLS runtime on top of
  :class:`repro.hw.versioned_memory.VersionedMemory`: iterations run as
  speculative epochs, commit strictly in order, squash and re-execute on
  conflict.  Used to validate that speculative execution preserves
  sequential semantics (including under the Commutative rollback protocol);
- :mod:`repro.tls.scheduler` — a TLS *performance* model over the same
  profiled traces the DSWP simulator consumes, honoring the paper's
  refinements: synchronized (not speculated) high-frequency dependences and
  enough buffering that cores need not stall at commit.
"""

from repro.tls.epochs import TLSExecution, TLSMemoryView
from repro.tls.scheduler import TLSSimulationResult, simulate_tls

__all__ = [
    "TLSExecution",
    "TLSMemoryView",
    "TLSSimulationResult",
    "simulate_tls",
]
