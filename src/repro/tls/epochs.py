"""An executable TLS runtime over versioned memory.

Loop iterations execute as speculative epochs.  The runtime:

1. begins an epoch per iteration (in order);
2. runs the user's loop body against a :class:`TLSMemoryView` bound to the
   epoch (every read/write goes through the versioned memory);
3. commits epochs strictly in order; each commit may squash younger epochs
   whose reads proved stale — those are re-executed in fresh epochs;
4. runs *Commutative* side effects non-transactionally with registered
   rollback functions, per Section 2.3.2's protocol ("Commutative functions
   executed in non-transactional memory and ... a rollback function existed
   to undo the effects").

Because execution here is sequential under the hood (epochs are simulated,
not OS threads), the runtime is deterministic and the squash/replay
machinery can be tested exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.hw.versioned_memory import Epoch, EpochState, VersionedMemory


class TLSMemoryView:
    """The loop body's window onto versioned memory for one epoch."""

    def __init__(self, memory: VersionedMemory, epoch: Epoch) -> None:
        self._memory = memory
        self._epoch = epoch
        #: non-transactional (Commutative) actions with their rollbacks,
        #: applied immediately, undone if the epoch squashes.
        self._rollbacks: List[Callable[[], None]] = []

    def read(self, obj: str, key: Hashable = None) -> Any:
        return self._memory.read(self._epoch, obj, key)

    def write(self, obj: str, key: Hashable, value: Any) -> None:
        self._memory.write(self._epoch, obj, key, value)

    def commutative_call(
        self,
        action: Callable[[], Any],
        rollback: Callable[[], None],
    ) -> Any:
        """Run ``action`` non-transactionally; register ``rollback`` for squash."""
        result = action()
        self._rollbacks.append(rollback)
        return result

    def undo_commutative_effects(self) -> None:
        for rollback in reversed(self._rollbacks):
            rollback()
        self._rollbacks.clear()

    @property
    def epoch_number(self) -> int:
        return self._epoch.number


@dataclass
class TLSStatistics:
    iterations: int = 0
    squashes: int = 0
    commits: int = 0
    commutative_rollbacks: int = 0


class TLSExecution:
    """Run a loop body speculatively and return per-iteration results.

    ``body(view, iteration)`` must perform all shared-state access through
    ``view``.  The runtime window is ``max_epochs_in_flight`` (the paper's
    buffering observation: enough buffering that a core never stalls waiting
    to commit).
    """

    def __init__(self, memory: Optional[VersionedMemory] = None,
                 max_epochs_in_flight: int = 8) -> None:
        if max_epochs_in_flight < 1:
            raise ValueError("need at least one epoch in flight")
        self.memory = memory or VersionedMemory()
        self.window = max_epochs_in_flight
        self.stats = TLSStatistics()

    def execute(
        self,
        body: Callable[[TLSMemoryView, int], Any],
        iterations: int,
    ) -> List[Any]:
        results: List[Any] = [None] * iterations
        self.stats.iterations = iterations

        in_flight: List[Tuple[int, Epoch, TLSMemoryView]] = []
        next_iteration = 0

        while next_iteration < iterations or in_flight:
            # Fill the speculative window (program order).
            while next_iteration < iterations and len(in_flight) < self.window:
                epoch = self.memory.begin_epoch()
                view = TLSMemoryView(self.memory, epoch)
                results[next_iteration] = body(view, next_iteration)
                in_flight.append((next_iteration, epoch, view))
                next_iteration += 1

            # Commit the oldest epoch; squashed younger epochs re-execute.
            iteration, epoch, view = in_flight.pop(0)
            squashed = self.memory.commit(epoch)
            self.stats.commits += 1
            if squashed:
                squashed_numbers = {e.number for e in squashed}
                survivors: List[Tuple[int, Epoch, TLSMemoryView]] = []
                to_replay: List[Tuple[int, Epoch, TLSMemoryView]] = []
                for entry in in_flight:
                    if entry[1].number in squashed_numbers:
                        to_replay.append(entry)
                    else:
                        survivors.append(entry)
                # Undo Commutative effects of squashed epochs, newest first.
                for replay_iteration, old_epoch, old_view in reversed(to_replay):
                    old_view.undo_commutative_effects()
                    self.stats.commutative_rollbacks += 1
                replays: List[Tuple[int, Epoch, TLSMemoryView]] = []
                for replay_iteration, old_epoch, _ in to_replay:
                    self.stats.squashes += 1
                    fresh = self.memory.reissue(old_epoch)
                    fresh_view = TLSMemoryView(self.memory, fresh)
                    results[replay_iteration] = body(fresh_view, replay_iteration)
                    replays.append((replay_iteration, fresh, fresh_view))
                in_flight = sorted(survivors + replays, key=lambda e: e[0])
        return results
