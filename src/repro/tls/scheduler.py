"""TLS performance model over profiled traces.

Whole iterations (A+B+C cost) are the speculation unit: iteration *i* runs
on any free core, commits in order (with enough buffering that commit never
stalls the core — the Garzarán-style tradeoff the paper cites), and a
dynamic cross-iteration dependence source→target delays the target past the
source's completion — the serialization model of Section 3.1 applied to TLS.

Used as the comparison baseline in the ablation benchmarks: the paper notes
"similar parallelizations and results could be obtained with execution plans
that more closely resemble TLS" (Section 3.2), and this model lets the
benches check that claim on our traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.tasks import TaskGraph
from repro.hw.machine import MachineConfig


@dataclass
class TLSSimulationResult:
    machine: MachineConfig
    makespan: int
    sequential_time: int
    serialization_wait_time: int = 0

    @property
    def speedup(self) -> float:
        if self.makespan == 0:
            return 1.0
        return self.sequential_time / self.makespan


def simulate_tls(graph: TaskGraph, machine: MachineConfig) -> TLSSimulationResult:
    """Simulate ``graph`` under a TLS execution plan on ``machine``.

    The task graph's per-iteration tasks are fused into one speculative unit
    per iteration; serialization edges are lifted to iteration granularity.
    Commutative atomic sections serialize across iterations exactly as in the
    pipeline simulator.
    """
    iterations = graph.iterations()
    iteration_cost: List[int] = [0] * iterations
    section_costs: List[Dict[str, int]] = [dict() for _ in range(iterations)]
    iteration_of_task: Dict[int, int] = {}
    for task in graph.tasks:
        iteration_cost[task.iteration] += task.cost
        iteration_of_task[task.index] = task.iteration
        for group, cost in task.section_costs.items():
            section_costs[task.iteration][group] = (
                section_costs[task.iteration].get(group, 0) + cost
            )

    # Lift serialization edges to iteration pairs.
    iteration_sources: List[List[int]] = [[] for _ in range(iterations)]
    for edge in graph.edges:
        source_iter = iteration_of_task[edge.source]
        target_iter = iteration_of_task[edge.target]
        if source_iter < target_iter:
            iteration_sources[target_iter].append(source_iter)

    sequential_time = graph.total_cost()
    cores = machine.cores
    if cores == 1:
        return TLSSimulationResult(machine, sequential_time, sequential_time)

    core_free = [0] * cores
    iteration_end = [0] * iterations
    lock_free: Dict[str, int] = {}
    serialization_wait = 0

    for i in range(iterations):
        core = min(range(cores), key=lambda c: (core_free[c], c))
        start = core_free[core]
        constrained = start
        for source in iteration_sources[i]:
            constrained = max(constrained, iteration_end[source])
        serialization_wait += constrained - start
        # Commutative sections: group-exclusive slices inside the iteration.
        wait_total = 0
        for group in sorted(section_costs[i]):
            section = section_costs[i][group]
            acquire_at = max(constrained + wait_total, lock_free.get(group, 0))
            wait_total += acquire_at - (constrained + wait_total)
            lock_free[group] = acquire_at + section
        end = constrained + iteration_cost[i] + wait_total
        iteration_end[i] = end
        core_free[core] = end

    makespan = max(iteration_end) if iterations else 0
    return TLSSimulationResult(
        machine=machine,
        makespan=makespan,
        sequential_time=sequential_time,
        serialization_wait_time=serialization_wait,
    )
