"""Speculation selection for both framework routes.

IR route — :func:`speculate_pdg` walks a loop PDG and marks edges speculated:

- **control speculation** on branches whose profile bias exceeds a threshold
  (and on every Y-branch, whose edges the PDG builder already omits);
- **value speculation** on register edges whose defining site's value profile
  is highly predictable;
- **alias speculation** on loop-carried memory edges whose dynamic conflict
  rate is low;
- **silent-store exemption** on memory edges sourced at stores flagged
  ``maybe_silent``.

Trace route — :func:`plan_from_profile` decides, per profiled memory
location with cross-iteration conflicts, whether to *speculate* it (only the
actual dynamic dependences serialize), *synchronize* it (all accesses keep
sequential order — chosen when misspeculation would be excessive), or note
that a *Commutative* annotation already erased it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.pdg.graph import PDG, PDGEdge
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.memory_profile import DynamicDependence, MemoryProfile
from repro.profiling.value_profile import ValueProfile
from repro.speculation.base import (
    Location,
    SpeculationDecision,
    SpeculationKind,
    SynchronizationDecision,
)


# --------------------------------------------------------------------------------
# IR route
# --------------------------------------------------------------------------------

@dataclass
class PdgSpeculationConfig:
    """Thresholds controlling how aggressive the IR-route speculation is."""

    control_bias_threshold: float = 0.99
    value_predictability_threshold: float = 0.95
    alias_conflict_rate_threshold: float = 0.05
    speculate_carried_memory_without_profile: bool = False


def speculate_pdg(
    pdg: PDG,
    branch_profile: Optional[BranchProfile] = None,
    value_profile: Optional[ValueProfile] = None,
    memory_conflict_rates: Optional[Dict[Tuple[int, int], float]] = None,
    config: Optional[PdgSpeculationConfig] = None,
) -> List[SpeculationDecision]:
    """Mark breakable PDG edges as speculated; return the decision list.

    ``memory_conflict_rates`` maps (source id, target id) to the observed
    fraction of iterations on which the memory dependence actually occurred;
    pairs absent from the map are treated per
    ``config.speculate_carried_memory_without_profile``.
    """
    config = config or PdgSpeculationConfig()
    decisions: List[SpeculationDecision] = []

    for edge in list(pdg.effective_edges()):
        if edge.kind == "control":
            decision = _try_control(edge, branch_profile, config)
        elif edge.kind == "register":
            decision = _try_value(edge, value_profile, config)
        elif edge.kind == "memory":
            decision = _try_alias(edge, pdg, memory_conflict_rates, config)
        else:
            decision = None
        if decision is not None:
            pdg.speculate_edge(edge, decision.kind.value)
            decisions.append(decision)
    return decisions


def _try_control(
    edge: PDGEdge,
    profile: Optional[BranchProfile],
    config: PdgSpeculationConfig,
) -> Optional[SpeculationDecision]:
    if profile is None:
        return None
    site = edge.detail  # PDG builder stores the branch block name here
    try:
        summary = profile.summary(site)
    except KeyError:
        return None
    if summary.bias >= config.control_bias_threshold:
        return SpeculationDecision(
            SpeculationKind.CONTROL,
            target=f"branch {site}",
            expected_rate=1.0 - summary.bias,
            note=f"bias {summary.bias:.4f}",
        )
    return None


def _try_value(
    edge: PDGEdge,
    profile: Optional[ValueProfile],
    config: PdgSpeculationConfig,
) -> Optional[SpeculationDecision]:
    if profile is None or not edge.loop_carried:
        return None
    site = edge.detail  # register name doubles as the value site
    predictability = profile.predictability(site)
    if predictability >= config.value_predictability_threshold:
        return SpeculationDecision(
            SpeculationKind.VALUE,
            target=f"register {site}",
            expected_rate=1.0 - predictability,
            note=f"predictability {predictability:.4f}",
        )
    return None


def _try_alias(
    edge: PDGEdge,
    pdg: PDG,
    rates: Optional[Dict[Tuple[int, int], float]],
    config: PdgSpeculationConfig,
) -> Optional[SpeculationDecision]:
    if not edge.loop_carried:
        return None
    source_instruction = pdg.node(edge.source).instruction
    if getattr(source_instruction, "maybe_silent", False):
        return SpeculationDecision(
            SpeculationKind.SILENT_STORE,
            target=f"store {edge.source}",
            expected_rate=0.0,
            note="silent store never triggers alias misspeculation",
        )
    if rates is not None:
        rate = rates.get((edge.source, edge.target))
        if rate is not None and rate <= config.alias_conflict_rate_threshold:
            return SpeculationDecision(
                SpeculationKind.ALIAS,
                target=f"{edge.source}->{edge.target}",
                expected_rate=rate,
                note=f"profiled conflict rate {rate:.4f}",
            )
        return None
    if config.speculate_carried_memory_without_profile:
        return SpeculationDecision(
            SpeculationKind.ALIAS,
            target=f"{edge.source}->{edge.target}",
            expected_rate=0.0,
            note="no profile; speculated by configuration",
        )
    return None


# --------------------------------------------------------------------------------
# Trace route
# --------------------------------------------------------------------------------

@dataclass
class SpeculationPlan:
    """What the parallelization does about each conflicting memory location.

    Attributes:
        speculated: locations whose static dependence is broken; the
            simulator serializes only their *actual* dynamic dependences.
        synchronized: locations kept in sequential order (every pair of
            accessing tasks is ordered as in the original program).
        commutative: locations erased by a Commutative annotation, by group.
        decisions / synchronizations: the human-readable audit trail.
    """

    speculated: Set[Location] = field(default_factory=set)
    synchronized: Set[Location] = field(default_factory=set)
    commutative_groups: List[str] = field(default_factory=list)
    decisions: List[SpeculationDecision] = field(default_factory=list)
    synchronizations: List[SynchronizationDecision] = field(default_factory=list)

    def is_speculated(self, location: Location) -> bool:
        return location in self.speculated

    def serialization_dependences(self, profile: MemoryProfile) -> List[DynamicDependence]:
        """The dynamic dependences the simulator must honor.

        Speculated locations contribute their actual occurrences (the
        misspeculation-as-serialization model); synchronized locations also
        contribute their actual occurrences, *plus* the plan records that
        accessing tasks may not be reordered — the execution plan handles
        that by pinning them to a sequential phase.
        """
        keep = self.speculated | self.synchronized
        return [d for d in profile.dependences if d.location in keep]

    def misspeculation_events(self, profile: MemoryProfile) -> List[DynamicDependence]:
        """Actual occurrences of speculated true dependences, cross-iteration.

        Only RAW counts: the versioned memory renames anti/output
        dependences away, so they can never cause a squash.
        """
        tasks = profile.trace.tasks
        return [
            d for d in profile.dependences
            if d.kind == "raw"
            and d.location in self.speculated
            and d.cross_iteration(tasks)
        ]


def plan_from_profile(
    profile: MemoryProfile,
    *,
    synchronize_rate_threshold: float = 0.6,
    forced_synchronized: Sequence[Location] = (),
    forced_speculated: Sequence[Location] = (),
) -> SpeculationPlan:
    """Build a :class:`SpeculationPlan` from the memory profile.

    Per location with cross-iteration dependences, compute the conflict
    rate — conflicting iteration pairs over total iterations.  Speculate
    below ``synchronize_rate_threshold``; synchronize at or above it (the
    paper: "some dependences must be synchronized, rather than speculated,
    to avoid excessive misspeculation").  ``forced_*`` lets case studies
    override, exactly as the paper's authors did by hand.
    """
    plan = SpeculationPlan()
    plan.commutative_groups = sorted(profile.commutative_sections)

    iterations = max(profile.trace.iteration_count, 1)
    by_location: Dict[Location, List[DynamicDependence]] = defaultdict(list)
    for dependence in profile.cross_iteration_dependences():
        by_location[dependence.location].append(dependence)

    forced_sync = set(forced_synchronized)
    forced_spec = set(forced_speculated)

    for location in sorted(by_location, key=str):
        dependences = by_location[location]
        conflicting_iterations = {
            profile.trace.tasks[d.target_index].iteration for d in dependences
        }
        rate = len(conflicting_iterations) / iterations
        if location in forced_sync:
            plan.synchronized.add(location)
            plan.synchronizations.append(
                SynchronizationDecision(str(location), reason="forced by case study", to_phase="A")
            )
        elif location in forced_spec or rate < synchronize_rate_threshold:
            plan.speculated.add(location)
            plan.decisions.append(
                SpeculationDecision(
                    SpeculationKind.ALIAS,
                    target=str(location),
                    expected_rate=rate,
                    note=f"{len(dependences)} dynamic dependences across "
                         f"{len(conflicting_iterations)} iterations",
                )
            )
        else:
            plan.synchronized.add(location)
            plan.synchronizations.append(
                SynchronizationDecision(
                    str(location),
                    reason=f"conflict rate {rate:.2%} >= threshold; "
                           "speculation would be excessive",
                )
            )
    return plan
