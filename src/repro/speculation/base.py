"""Common vocabulary for speculation decisions."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Optional, Tuple

Location = Tuple[str, Hashable]


class SpeculationKind(Enum):
    """The paper's speculation techniques (Sections 2.1, 4.x)."""

    ALIAS = "alias"              # assume two memory operations do not conflict
    VALUE = "value"              # predict a variable's value (e.g. STATUS=NORMAL)
    CONTROL = "control"          # predict a biased branch direction
    SILENT_STORE = "silent-store"  # stores of unchanged values conflict with nobody
    COMMUTATIVE = "commutative"  # annotation: any call order is legal
    YBRANCH = "ybranch"          # annotation: true path always legal


@dataclass(frozen=True)
class SpeculationDecision:
    """One choice to break a dependence.

    ``target`` identifies what was speculated — a profiled memory location
    for the trace route or an edge description for the IR route.
    ``expected_rate`` is the profile-predicted fraction of iterations on
    which the broken dependence will actually occur (the misspeculation
    rate the plan accepts).
    """

    kind: SpeculationKind
    target: str
    expected_rate: float = 0.0
    note: str = ""

    def __str__(self) -> str:
        rate = f", expect {self.expected_rate:.2%} misspec" if self.expected_rate else ""
        return f"{self.kind.value}({self.target}{rate})"


@dataclass(frozen=True)
class SynchronizationDecision:
    """A dependence deliberately synchronized rather than speculated.

    Section 2.1: "some dependences must be synchronized, rather than
    speculated, to avoid excessive misspeculation."  ``to_phase`` optionally
    names the phase the involved code is moved to (the parser case study
    moves command handling into phase A, Section 4.3.2).
    """

    target: str
    reason: str = ""
    to_phase: Optional[str] = None
