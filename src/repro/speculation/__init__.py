"""Speculation: breaking dependences the profile says rarely matter.

Section 2.1: "Both TLS and DSWP require judicious use of speculation to
break infrequent or easily predictable dependences inhibiting
parallelization.  This involves not only alias speculation, but also value
speculation and control speculation."

Two consumers, two interfaces:

- the **IR route** marks PDG edges as speculated
  (:func:`repro.speculation.manager.speculate_pdg`), guided by branch bias,
  value predictability and silent-store information;
- the **trace route** builds a :class:`~repro.speculation.manager.SpeculationPlan`
  over profiled memory *locations*
  (:func:`repro.speculation.manager.plan_from_profile`): each conflicting
  location is either speculated (only its *actual* dynamic dependences
  serialize — the paper's misspeculation-as-serialization model, Section
  3.1), synchronized (all accesses keep sequential order), or erased by a
  *Commutative* annotation.
"""

from repro.speculation.base import (
    SpeculationDecision,
    SpeculationKind,
    SynchronizationDecision,
)
from repro.speculation.manager import (
    SpeculationPlan,
    plan_from_profile,
    speculate_pdg,
)
from repro.speculation.misspec import MisspeculationReport, analyze_misspeculation

__all__ = [
    "MisspeculationReport",
    "SpeculationDecision",
    "SpeculationKind",
    "SpeculationPlan",
    "SynchronizationDecision",
    "analyze_misspeculation",
    "plan_from_profile",
    "speculate_pdg",
]
