"""Misspeculation accounting.

The simulator models misspeculation as *serialization* — a speculated
dependence that actually occurred forces the dependent task to wait for the
source task, but no additional rollback cost is charged (Section 3.1: "this
effectively models serialization ... but imposes no additional cost to
misspeculation").  This module condenses the events into the rates the case
studies quote (vpr's ">80% early, <20% late", gap's GC-driven misspec, ...).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.profiling.memory_profile import DynamicDependence, MemoryProfile
from repro.speculation.base import Location
from repro.speculation.manager import SpeculationPlan


@dataclass
class MisspeculationReport:
    """Summary of how often speculation actually failed."""

    total_iterations: int
    misspeculated_iterations: int
    events: List[DynamicDependence] = field(default_factory=list)
    by_location: Dict[Location, int] = field(default_factory=dict)

    @property
    def rate(self) -> float:
        """Fraction of iterations that suffered at least one misspeculation."""
        if self.total_iterations == 0:
            return 0.0
        return self.misspeculated_iterations / self.total_iterations

    def worst_locations(self, count: int = 5) -> List[Tuple[Location, int]]:
        ranked = sorted(self.by_location.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:count]

    def windowed_rates(self, window: int) -> List[float]:
        """Misspeculation rate per window of iterations.

        Exposes phase behaviour like vpr's annealing schedule, where early
        windows misspeculate >80% and late windows <20% (Section 4.4? 4.3.4).
        """
        if window <= 0:
            raise ValueError("window must be positive")
        bad_iterations = {ev for ev in self._misspeculated_iteration_set()}
        rates: List[float] = []
        for start in range(0, self.total_iterations, window):
            end = min(start + window, self.total_iterations)
            bad = sum(1 for i in range(start, end) if i in bad_iterations)
            rates.append(bad / (end - start))
        return rates

    def _misspeculated_iteration_set(self):
        return {iteration for iteration in self._iterations_hit}

    # populated by analyze_misspeculation
    _iterations_hit: List[int] = field(default_factory=list)


def analyze_misspeculation(profile: MemoryProfile, plan: SpeculationPlan,
                           window: int = 32) -> MisspeculationReport:
    """Count actual occurrences of speculated dependences.

    Only dependences whose source lies within ``window`` iterations of the
    target count as misspeculation: a dependence on an iteration that
    committed long ago is satisfied by architectural state, never by a
    speculative version, so it cannot squash anything.  The default window
    matches the deepest speculation the 32-core machine can have in flight.
    """
    tasks = profile.trace.tasks
    events = [
        e for e in plan.misspeculation_events(profile)
        if tasks[e.target_index].iteration - tasks[e.source_index].iteration <= window
    ]
    iterations_hit = sorted({tasks[e.target_index].iteration for e in events})
    by_location: Dict[Location, int] = defaultdict(int)
    for event in events:
        by_location[event.location] += 1
    report = MisspeculationReport(
        total_iterations=profile.trace.iteration_count,
        misspeculated_iterations=len(iterations_hit),
        events=events,
        by_location=dict(by_location),
    )
    report._iterations_hit = iterations_hit
    return report
