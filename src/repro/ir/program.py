"""Programs: whole-program containers giving the framework its global scope."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.function import Function
from repro.ir.values import GlobalVariable


class Program:
    """A whole program: functions plus global memory objects.

    Section 2.2 of the paper argues that parallelism in SPEC CINT2000 lives
    "at or close to the outermost application loop", so the compiler needs the
    whole program in view.  :class:`Program` is the unit every interprocedural
    analysis (call graph, points-to, side-effect summaries) and transformation
    (inlining, region formation) operates on.
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._functions: Dict[str, Function] = {}
        self._globals: Dict[str, GlobalVariable] = {}
        self.main_name: Optional[str] = None

    # -- functions ---------------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self._functions:
            raise ValueError(f"duplicate function {function.name!r}")
        function.program = self
        self._functions[function.name] = function
        if self.main_name is None and not function.is_external:
            self.main_name = function.name
        return function

    def function(self, name: str) -> Function:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no function {name!r} in program {self.name}") from None

    def has_function(self, name: str) -> bool:
        return name in self._functions

    @property
    def functions(self) -> List[Function]:
        return list(self._functions.values())

    @property
    def main(self) -> Function:
        if self.main_name is None:
            raise ValueError(f"program {self.name} has no functions")
        return self._functions[self.main_name]

    def set_main(self, name: str) -> None:
        if name not in self._functions:
            raise KeyError(f"no function {name!r}")
        self.main_name = name

    # -- globals -----------------------------------------------------------------

    def add_global(self, name: str, *, field: str = "") -> GlobalVariable:
        key = f"{name}.{field}" if field else name
        if key in self._globals:
            return self._globals[key]
        var = GlobalVariable(name, field=field)
        self._globals[key] = var
        return var

    def global_variable(self, name: str, *, field: str = "") -> GlobalVariable:
        key = f"{name}.{field}" if field else name
        try:
            return self._globals[key]
        except KeyError:
            raise KeyError(f"no global {key!r} in program {self.name}") from None

    @property
    def globals(self) -> List[GlobalVariable]:
        return list(self._globals.values())

    # -- whole-program queries ------------------------------------------------------

    def instructions(self) -> Iterator:
        for function in self.functions:
            if not function.is_external:
                yield from function.instructions()

    def commutative_functions(self) -> List[Function]:
        """All functions carrying the *Commutative* annotation."""
        return [f for f in self.functions if f.commutative_group is not None]

    def commutative_group_members(self, group: str) -> List[Function]:
        """Functions sharing internal state under one Commutative group."""
        return [f for f in self.functions if f.commutative_group == group]

    def verify(self) -> None:
        for function in self.functions:
            function.verify()
            for call in function.call_sites():
                if call.callee is not None and call.callee not in self._functions:
                    raise ValueError(
                        f"{function.name} calls unknown function {call.callee!r}"
                    )

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self._functions)} functions, "
            f"{len(self._globals)} globals)"
        )
