"""Classic scalar optimization passes over the IR.

These are the "single pass of optimizations, though some optimizations are
applied multiple times" that dominate 176.gcc's runtime (Section 4.2.1) —
and they are real transformations, usable on any :class:`repro.ir.Function`:

- :func:`constant_fold` — evaluate operations over constants;
- :func:`eliminate_dead_code` — drop unused, effect-free instructions;
- :func:`common_subexpression_elimination` — reuse identical pure
  computations within a block;
- :func:`simplify_branches` — turn constant-condition branches into jumps.

Each returns the number of changes made, so pass managers can iterate to a
fixed point.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.function import Function
from repro.ir.instructions import BinOp, Branch, Instruction, Jump, UnOp, YBranch
from repro.ir.values import Constant, Value

_FOLDABLE = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if b else 0,
    "mod": lambda a, b: a % b if b else 0,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << min(b, 63),
    "shr": lambda a, b: a >> min(b, 63),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
}


def constant_fold(function: Function) -> int:
    """Fold BinOps/UnOps whose operands are integer constants."""
    changes = 0
    for block in function.blocks:
        for instruction in list(block.instructions):
            folded = _fold_one(instruction)
            if folded is None:
                continue
            _replace_all_uses(function, instruction.result, folded)
            block.remove(instruction)
            changes += 1
    return changes


def _fold_one(instruction: Instruction):
    if isinstance(instruction, BinOp):
        lhs, rhs = instruction.operands
        if (
            isinstance(lhs, Constant) and isinstance(rhs, Constant)
            and isinstance(lhs.value, int) and isinstance(rhs.value, int)
        ):
            return Constant(_FOLDABLE[instruction.op](lhs.value, rhs.value))
    if isinstance(instruction, UnOp):
        operand = instruction.operands[0]
        if isinstance(operand, Constant) and isinstance(operand.value, int):
            value = -operand.value if instruction.op == "neg" else ~operand.value
            return Constant(value)
    return None


def eliminate_dead_code(function: Function) -> int:
    """Remove instructions whose results are never used and that have no
    side effects (no memory writes, no control flow, no calls)."""
    changes = 0
    while True:
        used = set()
        for instruction in function.instructions():
            for operand in instruction.operands:
                used.add(operand.id)
        removed_this_round = 0
        for block in function.blocks:
            for instruction in list(block.instructions):
                if instruction.is_terminator or instruction.writes_memory:
                    continue
                if instruction.opcode() in ("call", "phi"):
                    continue
                if instruction.reads_memory:
                    # Loads are pure here (no volatile), safe to drop if dead.
                    pass
                if instruction.result is not None and instruction.result.id not in used:
                    block.remove(instruction)
                    removed_this_round += 1
        changes += removed_this_round
        if not removed_this_round:
            return changes


def common_subexpression_elimination(function: Function) -> int:
    """Within each block, reuse the first of identical pure computations."""
    changes = 0
    for block in function.blocks:
        available: Dict[Tuple, Instruction] = {}
        for instruction in list(block.instructions):
            if not isinstance(instruction, (BinOp, UnOp)):
                continue
            key = (
                instruction.opcode(),
                tuple(_operand_key(op) for op in instruction.operands),
            )
            existing = available.get(key)
            if existing is None:
                available[key] = instruction
                continue
            _replace_all_uses(function, instruction.result, existing.result)
            block.remove(instruction)
            changes += 1
    return changes


def simplify_branches(function: Function) -> int:
    """Rewrite branches with constant conditions into unconditional jumps.

    Y-branches are never simplified on a *true* constant — their semantics
    already allow the true path — but a constant-false Y-branch still keeps
    both successors (the compiler may fire it), so it is left alone.
    """
    changes = 0
    for block in function.blocks:
        terminator = block.terminator
        if not isinstance(terminator, Branch) or isinstance(terminator, YBranch):
            continue
        condition = terminator.condition
        if not isinstance(condition, Constant):
            continue
        target = terminator.true_target if condition.value else terminator.false_target
        block.remove(terminator)
        block.append(Jump(target))
        changes += 1
    return changes


def run_pass_pipeline(function: Function, rounds: int = 3) -> Dict[str, int]:
    """gcc's rest_of_compilation: the standard pass order, iterated."""
    totals = {"constant_fold": 0, "cse": 0, "dce": 0, "branches": 0}
    for _ in range(rounds):
        changed = 0
        changed += (folds := constant_fold(function))
        changed += (cses := common_subexpression_elimination(function))
        changed += (branches := simplify_branches(function))
        changed += (dces := eliminate_dead_code(function))
        totals["constant_fold"] += folds
        totals["cse"] += cses
        totals["branches"] += branches
        totals["dce"] += dces
        if not changed:
            break
    return totals


def _operand_key(value: Value):
    if isinstance(value, Constant):
        return ("const", value.value)
    return ("value", value.id)


def _replace_all_uses(function: Function, old: Value, new: Value) -> None:
    if old is None:
        return
    for instruction in function.instructions():
        instruction.replace_operand(old, new)
