"""Call-site inlining: removing procedure boundaries (Section 2.2).

"By using whole program optimization, procedure boundaries can be removed,
giving the compiler the ability to both see and modify code, regardless of
location in the program."  Inlining is also how the crafty case study
"unrolls" recursion: :func:`specialize_recursion` clones ``Search`` one level
deep so both the root loop and the first recursive level expose parallelism
(Section 4.3.1).
"""

from __future__ import annotations

import itertools
from copy import copy
from typing import Dict, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloc,
    BinOp,
    Branch,
    Call,
    Instruction,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
    YBranch,
)
from repro.ir.program import Program
from repro.ir.values import Constant, Value

_inline_counter = itertools.count()


class InliningError(ValueError):
    """Raised when a call site cannot be inlined."""


def inline_call(function: Function, call: Call) -> None:
    """Inline ``call`` (which must live in ``function``) in place.

    The callee's blocks are cloned with fresh names; its parameters are
    substituted with the call's arguments; every ``Return`` is rewritten to a
    jump to a continuation block.  Single-return value flow is forwarded by
    operand substitution; multi-return callees get their result merged with a
    Phi in the continuation block.
    """
    program = function.program
    if program is None:
        raise InliningError("function is not attached to a program")
    if call.callee is None:
        raise InliningError("cannot inline an indirect call")
    callee = program.function(call.callee)
    if callee.is_external:
        raise InliningError(f"cannot inline external function {callee.name}")
    if callee.commutative_group is not None:
        raise InliningError(
            f"refusing to inline Commutative function {callee.name}: its internal "
            "dependences must stay hidden from the parallelizer"
        )
    if callee is function:
        raise InliningError("direct self-inlining requires specialize_recursion")

    site = call.block
    if site is None or site.function is not function:
        raise InliningError("call site is not inside the given function")

    tag = f"inl{next(_inline_counter)}"
    value_map: Dict[int, Value] = {}
    for parameter, argument in zip(callee.parameters, call.operands):
        value_map[parameter.id] = argument

    block_map: Dict[str, str] = {
        block.name: f"{tag}.{block.name}" for block in callee.blocks
    }
    continuation_name = f"{tag}.cont"

    # Split the call site: instructions after the call move to the continuation.
    call_index = site.instructions.index(call)
    tail = site.instructions[call_index + 1:]
    site.instructions = site.instructions[:call_index]

    returns = []
    for block in callee.blocks:
        clone = function.new_block(block_map[block.name])
        for instruction in block.instructions:
            if isinstance(instruction, Return):
                returns.append((clone, instruction, value_map))
                continue
            clone.append(_clone_instruction(instruction, value_map, block_map))

    continuation = function.new_block(continuation_name)
    for instruction in tail:
        instruction.block = continuation
        continuation.instructions.append(instruction)

    # Wire returns to the continuation, merging return values.
    return_values = []
    for clone, ret, vmap in returns:
        if ret.value is not None:
            return_values.append((_mapped(ret.value, vmap), clone.name))
        clone.append(Jump(continuation_name))

    if call.result is not None and return_values:
        if len(return_values) == 1:
            replacement = return_values[0][0]
        else:
            phi = Phi(call.result.type, return_values, name=f"{tag}.ret")
            continuation.insert(0, phi)
            replacement = phi.result
        _replace_uses(function, call.result, replacement)

    site.append(Jump(block_map[callee.entry_name]))


def specialize_recursion(function: Function, depth: int = 1) -> Function:
    """"Unroll" recursion by cloning ``function`` ``depth`` levels deep.

    Produces ``function@1 .. function@depth`` where level *k* calls level
    *k+1* and the deepest level calls the original function, exactly the
    transformation Section 4.3.1 applies to crafty's ``Search``.  Returns the
    top-level specialized clone.
    """
    if depth < 1:
        raise ValueError("specialization depth must be >= 1")
    program = function.program
    if program is None:
        raise InliningError("function is not attached to a program")

    previous_target = function.name
    top: Optional[Function] = None
    for level in range(depth, 0, -1):
        clone = clone_function(function, f"{function.name}@{level}")
        for call in clone.call_sites():
            if call.callee == function.name:
                call.callee = previous_target
        program.add_function(clone)
        previous_target = clone.name
        top = clone
    assert top is not None
    return top


def inline_loop_calls(program, loop, max_inlines: int = 16):
    """Inline eligible call sites inside ``loop``; return the refreshed loop.

    This is Section 2.2 in action: the parallelizer needs to "see and modify
    code, regardless of location in the program", so calls within the target
    loop are flattened into it before the PDG is built.  Commutative,
    external, indirect and (self-)recursive callees stay opaque.  Because
    inlining splits the call's block, the loop is re-discovered by header
    name after every inline.
    """
    from repro.ir.loops import find_loops

    function = loop.function
    program_ref = program or function.program
    header_name = loop.header.name
    inlined = 0

    while inlined < max_inlines:
        candidate = None
        for call in function.call_sites():
            if call.block is None or call.block.name not in loop.blocks:
                continue
            if call.callee is None or not program_ref.has_function(call.callee):
                continue
            callee = program_ref.function(call.callee)
            if callee.is_external or callee.commutative_group is not None:
                continue
            if callee is function:
                continue
            candidate = call
            break
        if candidate is None:
            break
        inline_call(function, candidate)
        inlined += 1
        nest = find_loops(function)
        refreshed = nest.loop_with_header(header_name)
        if refreshed is None:
            raise InliningError(
                f"loop header {header_name!r} vanished during inlining"
            )
        loop = refreshed
    return loop


def clone_function(function: Function, new_name: str) -> Function:
    """Deep-copy ``function`` under ``new_name`` with fresh registers."""
    clone = Function(
        new_name,
        [p.type for p in function.parameters],
        [p.name for p in function.parameters],
        function.return_type,
    )
    clone.commutative_group = function.commutative_group
    clone.rollback = function.rollback
    value_map: Dict[int, Value] = {
        old.id: new for old, new in zip(function.parameters, clone.parameters)
    }
    identity_blocks = {block.name: block.name for block in function.blocks}
    for block in function.blocks:
        new_block = clone.new_block(block.name)
        for instruction in block.instructions:
            new_block.append(_clone_instruction(instruction, value_map, identity_blocks))
    clone.entry_name = function.entry_name
    return clone


# -- cloning machinery -------------------------------------------------------------


def _mapped(value: Value, value_map: Dict[int, Value]) -> Value:
    return value_map.get(value.id, value)


def _replace_uses(function: Function, old: Value, new: Value) -> None:
    for instruction in function.instructions():
        instruction.replace_operand(old, new)


def _clone_instruction(
    instruction: Instruction,
    value_map: Dict[int, Value],
    block_map: Dict[str, str],
) -> Instruction:
    """Clone one instruction, remapping operands and branch targets.

    The clone's result register is recorded in ``value_map`` so later clones
    see it.
    """
    ops = [_mapped(op, value_map) for op in instruction.operands]

    if isinstance(instruction, BinOp):
        clone: Instruction = BinOp(instruction.op, ops[0], ops[1], cost=instruction.cost)
    elif isinstance(instruction, UnOp):
        clone = UnOp(instruction.op, ops[0], cost=instruction.cost)
    elif isinstance(instruction, Load):
        clone = Load(ops[0], instruction.may_access, cost=instruction.cost)
        clone.speculative_safe = instruction.speculative_safe
    elif isinstance(instruction, Store):
        clone = Store(ops[0], ops[1], instruction.may_access, cost=instruction.cost)
        clone.maybe_silent = instruction.maybe_silent
    elif isinstance(instruction, Alloc):
        clone = Alloc(cost=instruction.cost)
    elif isinstance(instruction, Call):
        clone = Call(
            instruction.callee, ops, cost=instruction.cost,
            may_call=instruction.may_call,
        )
        clone.reads = list(instruction.reads)
        clone.writes = list(instruction.writes)
    elif isinstance(instruction, Phi):
        incoming = [
            (value, block_map.get(block, block))
            for value, block in zip(ops, instruction.incoming_blocks)
        ]
        clone = Phi(instruction.result.type, incoming)
    elif isinstance(instruction, YBranch):
        clone = YBranch(
            ops[0],
            block_map.get(instruction.true_target, instruction.true_target),
            block_map.get(instruction.false_target, instruction.false_target),
            probability=instruction.probability,
            cost=instruction.cost,
        )
    elif isinstance(instruction, Branch):
        clone = Branch(
            ops[0],
            block_map.get(instruction.true_target, instruction.true_target),
            block_map.get(instruction.false_target, instruction.false_target),
            cost=instruction.cost,
        )
    elif isinstance(instruction, Jump):
        clone = Jump(block_map.get(instruction.target, instruction.target))
    elif isinstance(instruction, Return):
        clone = Return(ops[0] if ops else None)
    else:
        clone = copy(instruction)
        clone.operands = ops
        clone.block = None

    if instruction.result is not None and clone.result is not None:
        value_map[instruction.result.id] = clone.result
    return clone
