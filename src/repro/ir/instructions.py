"""IR instructions.

The instruction set is register-based with explicit loads and stores.  Two
instructions implement the paper's sequential-model extensions directly in the
IR: :class:`YBranch` (Section 2.3.1) and :class:`CommutativeMarker`
(Section 2.3.2).  Every instruction carries a ``cost`` — the abstract work
units the profiler attributes to one dynamic execution — which stands in for
the paper's pfmon cycle measurements.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from repro.ir.types import BoolType, IntType, PointerType, Type, VoidType
from repro.ir.values import Constant, MemoryObject, Value, VirtualRegister

_instruction_ids = itertools.count()

#: Binary operators understood by :class:`BinOp`.
BINARY_OPERATORS = {
    "add", "sub", "mul", "div", "mod",
    "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
}

#: Unary operators understood by :class:`UnOp`.
UNARY_OPERATORS = {"neg", "not"}

_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}


class Instruction:
    """Base class for all instructions.

    Attributes:
        operands: the values this instruction reads.
        result: the :class:`VirtualRegister` it defines, or ``None``.
        block: back-pointer to the containing basic block (set on insertion).
        cost: abstract work units for one dynamic execution (default 1).
    """

    #: Subclasses that end a basic block set this.
    is_terminator = False

    def __init__(
        self,
        operands: Sequence[Value],
        result_type: Optional[Type] = None,
        name: str = "",
        cost: int = 1,
    ) -> None:
        self.id = next(_instruction_ids)
        self.operands: List[Value] = list(operands)
        self.block = None
        self.cost = cost
        if result_type is None or isinstance(result_type, VoidType):
            self.result: Optional[VirtualRegister] = None
        else:
            self.result = VirtualRegister(result_type, name=name or f"t{self.id}")
            self.result.defining_instruction = self

    # -- structural queries used by analyses ---------------------------------

    @property
    def reads_memory(self) -> bool:
        return False

    @property
    def writes_memory(self) -> bool:
        return False

    def memory_objects(self) -> List[MemoryObject]:
        """Abstract locations this instruction may touch (empty if none)."""
        return []

    def register_uses(self) -> List[Value]:
        """The non-constant values read through registers."""
        return [op for op in self.operands if not isinstance(op, Constant)]

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every use of ``old`` with ``new``; return the count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def opcode(self) -> str:
        return type(self).__name__.lower()

    def __repr__(self) -> str:
        res = f"{self.result} = " if self.result is not None else ""
        ops = ", ".join(str(op) for op in self.operands)
        return f"{res}{self.opcode()} {ops}".strip()


class BinOp(Instruction):
    """``result = lhs <op> rhs`` for ``op`` in :data:`BINARY_OPERATORS`."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "", cost: int = 1) -> None:
        if op not in BINARY_OPERATORS:
            raise ValueError(f"unknown binary operator {op!r}")
        result_type: Type = BoolType() if op in _COMPARISONS else lhs.type
        super().__init__([lhs, rhs], result_type, name=name, cost=cost)
        self.op = op

    def opcode(self) -> str:
        return self.op


class UnOp(Instruction):
    """``result = <op> operand`` for ``op`` in :data:`UNARY_OPERATORS`."""

    def __init__(self, op: str, operand: Value, name: str = "", cost: int = 1) -> None:
        if op not in UNARY_OPERATORS:
            raise ValueError(f"unknown unary operator {op!r}")
        super().__init__([operand], operand.type, name=name, cost=cost)
        self.op = op

    def opcode(self) -> str:
        return self.op


class Load(Instruction):
    """``result = load address`` — may read any of ``may_access``.

    ``may_access`` is the static over-approximation the front end knows;
    the alias analysis refines it.  ``speculative_safe`` marks loads that a
    control-speculation transformation may hoist.
    """

    def __init__(
        self,
        address: Value,
        may_access: Sequence[MemoryObject],
        name: str = "",
        cost: int = 1,
        result_type: Optional[Type] = None,
    ) -> None:
        super().__init__([address], result_type or IntType(64), name=name, cost=cost)
        self.may_access = list(may_access)
        self.speculative_safe = False

    @property
    def reads_memory(self) -> bool:
        return True

    def memory_objects(self) -> List[MemoryObject]:
        return list(self.may_access)

    def __repr__(self) -> str:
        objs = ",".join(str(o) for o in self.may_access)
        return f"{self.result} = load {self.operands[0]} [{objs}]"


class Store(Instruction):
    """``store value -> address`` — may write any of ``may_access``.

    ``maybe_silent`` marks stores the silent-store analysis (Lepak & Lipasti,
    cited in Section 2.1) found frequently write back an unchanged value; the
    speculation manager will not count them as alias-misspeculation sources.
    """

    def __init__(
        self,
        value: Value,
        address: Value,
        may_access: Sequence[MemoryObject],
        cost: int = 1,
    ) -> None:
        super().__init__([value, address], None, cost=cost)
        self.may_access = list(may_access)
        self.maybe_silent = False

    @property
    def writes_memory(self) -> bool:
        return True

    def memory_objects(self) -> List[MemoryObject]:
        return list(self.may_access)

    def __repr__(self) -> str:
        objs = ",".join(str(o) for o in self.may_access)
        return f"store {self.operands[0]} -> {self.operands[1]} [{objs}]"


class Alloc(Instruction):
    """Allocate a fresh object; defines a pointer and a memory object.

    Each static ``Alloc`` is one allocation *site*; all objects it creates
    share one :class:`MemoryObject`, matching allocation-site-based points-to.
    """

    def __init__(self, name: str = "", cost: int = 1) -> None:
        super().__init__([], PointerType(IntType(64)), name=name, cost=cost)
        self.object = MemoryObject(name or f"alloc{self.id}", allocation_site=self)

    @property
    def writes_memory(self) -> bool:
        return True

    def memory_objects(self) -> List[MemoryObject]:
        return [self.object]

    def __repr__(self) -> str:
        return f"{self.result} = alloc {self.object}"


class Call(Instruction):
    """``result = call callee(args...)``.

    ``callee`` is a function name resolved through the program's function
    table; indirect calls carry ``callee=None`` plus a ``may_call`` set.  The
    side-effect summary (``reads``/``writes``) is filled by the interprocedural
    analysis or supplied directly for external functions.
    """

    def __init__(
        self,
        callee: Optional[str],
        args: Sequence[Value],
        name: str = "",
        result_type: Optional[Type] = None,
        cost: int = 1,
        may_call: Sequence[str] = (),
    ) -> None:
        super().__init__(list(args), result_type or IntType(64), name=name, cost=cost)
        self.callee = callee
        self.may_call = list(may_call)
        self.reads: List[MemoryObject] = []
        self.writes: List[MemoryObject] = []

    @property
    def reads_memory(self) -> bool:
        return bool(self.reads)

    @property
    def writes_memory(self) -> bool:
        return bool(self.writes)

    def memory_objects(self) -> List[MemoryObject]:
        seen = {}
        for obj in self.reads + self.writes:
            seen[obj.id] = obj
        return list(seen.values())

    def __repr__(self) -> str:
        res = f"{self.result} = " if self.result is not None else ""
        args = ", ".join(str(a) for a in self.operands)
        return f"{res}call {self.callee or '<indirect>'}({args})"


class Phi(Instruction):
    """SSA merge: ``result = phi [(value, predecessor-block-name), ...]``."""

    def __init__(self, type_: Type, incoming, name: str = "") -> None:
        values = [value for value, _ in incoming]
        super().__init__(values, type_, name=name, cost=0)
        self.incoming_blocks = [block for _, block in incoming]

    def incoming(self):
        return list(zip(self.operands, self.incoming_blocks))

    def __repr__(self) -> str:
        pairs = ", ".join(f"[{v}, {b}]" for v, b in self.incoming())
        return f"{self.result} = phi {pairs}"


class Branch(Instruction):
    """Conditional branch: ``br condition, true_target, false_target``."""

    is_terminator = True

    def __init__(self, condition: Value, true_target: str, false_target: str, cost: int = 1) -> None:
        super().__init__([condition], None, cost=cost)
        self.true_target = true_target
        self.false_target = false_target

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def targets(self) -> List[str]:
        return [self.true_target, self.false_target]

    def __repr__(self) -> str:
        return f"br {self.condition}, {self.true_target}, {self.false_target}"


class YBranch(Branch):
    """The paper's Y-branch (Section 2.3.1).

    Semantics: for *any* dynamic instance, taking the true path is legal
    regardless of the condition.  ``probability`` is the hint that tells the
    compiler how often the true path *should* fire (Figure 1 uses ``.00001``
    to mean "restart the dictionary no more than once per 100 000 input
    characters").  The partitioner uses this to break the control dependence
    this branch would otherwise induce.
    """

    def __init__(
        self,
        condition: Value,
        true_target: str,
        false_target: str,
        probability: float = 0.0,
        cost: int = 1,
    ) -> None:
        super().__init__(condition, true_target, false_target, cost=cost)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"Y-branch probability must be in [0,1], got {probability}")
        self.probability = probability

    def __repr__(self) -> str:
        return (
            f"ybranch(p={self.probability}) {self.condition}, "
            f"{self.true_target}, {self.false_target}"
        )


class CommutativeMarker(Instruction):
    """Marks a call site as calling a *Commutative* function (Section 2.3.2).

    In practice the annotation lives on the function definition
    (:class:`repro.ir.function.Function.commutative_group`); this marker exists
    for front ends that want to annotate call sites produced before the callee
    is known.  ``group`` names the shared internal state (e.g. ``"malloc"``
    groups ``malloc``/``free``).
    """

    def __init__(self, call: Call, group: str) -> None:
        super().__init__([], None, cost=0)
        self.call = call
        self.group = group

    def __repr__(self) -> str:
        return f"commutative<{self.group}> {self.call!r}"


class Jump(Instruction):
    """Unconditional branch."""

    is_terminator = True

    def __init__(self, target: str) -> None:
        super().__init__([], None, cost=1)
        self.target = target

    def targets(self) -> List[str]:
        return [self.target]

    def __repr__(self) -> str:
        return f"jmp {self.target}"


class Return(Instruction):
    """Return from the enclosing function, optionally with a value."""

    is_terminator = True

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__([value] if value is not None else [], None, cost=1)

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def targets(self) -> List[str]:
        return []

    def __repr__(self) -> str:
        return f"ret {self.value}" if self.operands else "ret"
