"""Region formation (Section 2.2).

"Through region formation, the compiler can control the amount of code to
analyze and optimize."  A :class:`Region` is a bounded slice of the whole
program: a root loop plus, transitively, the bodies of functions it calls up
to a budget.  Analyses and the partitioner take a region, never a raw
program, which keeps outer-loop parallelization tractable.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.ir.instructions import Call, Instruction
from repro.ir.loops import Loop
from repro.ir.program import Program


class Region:
    """A bounded analysis/optimization scope.

    Attributes:
        program: the owning whole program.
        loop: the root loop (the paper's "loop close to the outermost
            application loop").
        functions: names of functions whose bodies are inside the region.
        instructions: flattened instruction list, loop body first, then
            callee bodies in discovery order.  Call sites whose callees fall
            outside the region stay opaque (summaries only).
    """

    def __init__(self, program: Program, loop: Loop, functions: Set[str],
                 instructions: List[Instruction]) -> None:
        self.program = program
        self.loop = loop
        self.functions = functions
        self.instructions = instructions

    def contains(self, instruction: Instruction) -> bool:
        return any(existing is instruction for existing in self.instructions)

    def total_cost(self) -> int:
        return sum(instruction.cost for instruction in self.instructions)

    def call_sites(self) -> List[Call]:
        return [i for i in self.instructions if isinstance(i, Call)]

    def opaque_call_sites(self) -> List[Call]:
        """Calls whose callee body is outside the region."""
        return [
            call for call in self.call_sites()
            if call.callee is None or call.callee not in self.functions
        ]

    def __repr__(self) -> str:
        return (
            f"Region(loop={self.loop.header.name!r}, "
            f"{len(self.functions)} functions, {len(self.instructions)} instructions)"
        )


def form_loop_region(
    program: Program,
    loop: Loop,
    max_functions: int = 64,
    max_instructions: int = 100_000,
) -> Region:
    """Grow a region from ``loop`` outward through its call sites.

    Callee bodies are pulled in breadth-first until either budget is hit;
    external and *Commutative* functions are never expanded — Commutative
    bodies must stay opaque because the annotation's whole point is that the
    internal dependence recurrence is hidden from the parallelizer.
    """
    instructions: List[Instruction] = list(loop.instructions())
    functions: Set[str] = {loop.function.name}
    worklist: List[str] = _callees_of(instructions, program)

    while worklist and len(functions) < max_functions and len(instructions) < max_instructions:
        name = worklist.pop(0)
        if name in functions or not program.has_function(name):
            continue
        callee = program.function(name)
        if callee.is_external or callee.commutative_group is not None:
            continue
        functions.add(name)
        body = [i for block in callee.blocks for i in block.instructions]
        instructions.extend(body)
        worklist.extend(_callees_of(body, program))

    return Region(program, loop, functions, instructions)


def _callees_of(instructions: List[Instruction], program: Program) -> List[str]:
    names: List[str] = []
    for instruction in instructions:
        if isinstance(instruction, Call):
            if instruction.callee is not None:
                names.append(instruction.callee)
            else:
                names.extend(instruction.may_call)
    return names
