"""Functions: named CFGs with parameters and annotation metadata."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Call, Instruction
from repro.ir.types import IntType, Type
from repro.ir.values import Parameter


class Function:
    """A function: an entry block plus a set of named basic blocks.

    Annotation metadata carried here (rather than at call sites) matches the
    paper's design: "the programmer annotates Commutative based on the
    definition of a function and not the many call sites it may have"
    (Section 2.3.2).

    Attributes:
        commutative_group: if not ``None``, this function is *Commutative*;
            functions sharing the string share internal state and must execute
            atomically with respect to one another (e.g. ``"malloc"`` for
            ``malloc``/``free``).
        rollback: name of the function that undoes this one's effects, needed
            when Commutative functions run under speculation (Section 2.3.2's
            malloc → free example).
        is_external: body-less functions (library calls) modelled only by the
            side-effect summaries on their call sites.
    """

    def __init__(
        self,
        name: str,
        parameter_types: Sequence[Type] = (),
        parameter_names: Sequence[str] = (),
        return_type: Optional[Type] = None,
    ) -> None:
        self.name = name
        names = list(parameter_names) or [f"arg{i}" for i in range(len(parameter_types))]
        if len(names) != len(parameter_types):
            raise ValueError("parameter_names and parameter_types length mismatch")
        self.parameters: List[Parameter] = [
            Parameter(t, n, i) for i, (t, n) in enumerate(zip(parameter_types, names))
        ]
        self.return_type = return_type or IntType(64)
        self._blocks: Dict[str, BasicBlock] = {}
        self._block_order: List[str] = []
        self.entry_name: Optional[str] = None
        self.program = None  # back-pointer, set by Program.add_function
        self.commutative_group: Optional[str] = None
        self.rollback: Optional[str] = None
        self.is_external = False

    # -- block management -----------------------------------------------------

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self._blocks:
            raise ValueError(f"duplicate block name {block.name!r} in {self.name}")
        block.function = self
        self._blocks[block.name] = block
        self._block_order.append(block.name)
        if self.entry_name is None:
            self.entry_name = block.name
        return block

    def new_block(self, name: str) -> BasicBlock:
        return self.add_block(BasicBlock(name))

    def block(self, name: str) -> BasicBlock:
        try:
            return self._blocks[name]
        except KeyError:
            raise KeyError(f"no block {name!r} in function {self.name}") from None

    def has_block(self, name: str) -> bool:
        return name in self._blocks

    @property
    def blocks(self) -> List[BasicBlock]:
        return [self._blocks[name] for name in self._block_order]

    @property
    def entry(self) -> BasicBlock:
        if self.entry_name is None:
            raise ValueError(f"function {self.name} has no blocks")
        return self._blocks[self.entry_name]

    # -- whole-function queries -------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def call_sites(self) -> List[Call]:
        return [i for i in self.instructions() if isinstance(i, Call)]

    def mark_commutative(self, group: Optional[str] = None, rollback: Optional[str] = None) -> None:
        """Apply the *Commutative* annotation (Section 2.3.2)."""
        self.commutative_group = group if group is not None else self.name
        self.rollback = rollback

    def verify(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        if self.is_external:
            return
        if self.entry_name is None:
            raise ValueError(f"function {self.name} has no entry block")
        for block in self.blocks:
            if block.terminator is None:
                raise ValueError(f"block {block.name} in {self.name} has no terminator")
            for index, instruction in enumerate(block.instructions):
                if instruction.is_terminator and index != len(block.instructions) - 1:
                    raise ValueError(
                        f"terminator {instruction!r} not last in block {block.name}"
                    )
            for successor in block.successor_names():
                if successor not in self._blocks:
                    raise ValueError(
                        f"block {block.name} branches to unknown block {successor!r}"
                    )

    def __repr__(self) -> str:
        tag = " commutative" if self.commutative_group else ""
        return f"Function({self.name!r}, {len(self._blocks)} blocks{tag})"
