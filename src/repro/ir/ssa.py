"""SSA construction (mem2reg) and loop-invariant code motion.

Front ends like the mini-C lowerer keep local variables in memory objects
(one load/store per mention).  That is simple but pessimizes everything
downstream: the PDG sees memory dependences where there is only scalar
dataflow.  :func:`promote_memory_to_registers` is the classic mem2reg:

1. find *promotable* objects — accessed only by whole-object loads/stores
   whose address operand is the object itself (no escaping pointers);
2. place phi nodes at the iterated dominance frontier of the defining
   blocks (Cytron et al.);
3. rename along the dominator tree, replacing loads with the reaching
   definition and deleting the stores.

:func:`hoist_loop_invariants` then moves computations whose operands are
loop-invariant into a preheader — the other classic enabling transformation
for the paper's outer-loop parallelization scope.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dominators import DominatorTree
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import BinOp, Instruction, Jump, Load, Phi, Store, UnOp
from repro.ir.loops import Loop
from repro.ir.types import IntType
from repro.ir.values import Constant, MemoryObject, UndefValue, Value


def promotable_objects(function: Function) -> List[MemoryObject]:
    """Objects safe to promote: every access is a direct load/store of the
    object, and the object's address is never used any other way."""
    direct: Dict[int, MemoryObject] = {}
    disqualified: Set[int] = set()

    for instruction in function.instructions():
        if isinstance(instruction, Load):
            address = instruction.operands[0]
            objects = instruction.may_access
            if (
                len(objects) == 1
                and isinstance(address, MemoryObject)
                and address is objects[0]
            ):
                direct[objects[0].id] = objects[0]
            else:
                disqualified.update(o.id for o in objects)
        elif isinstance(instruction, Store):
            value, address = instruction.operands
            objects = instruction.may_access
            if (
                len(objects) == 1
                and isinstance(address, MemoryObject)
                and address is objects[0]
                and value is not objects[0]
            ):
                direct[objects[0].id] = objects[0]
            else:
                disqualified.update(o.id for o in objects)
            if isinstance(value, MemoryObject):
                disqualified.add(value.id)  # address escapes through a store
        else:
            for operand in instruction.operands:
                if isinstance(operand, MemoryObject):
                    disqualified.add(operand.id)

    from repro.ir.values import GlobalVariable

    return [
        obj
        for oid, obj in sorted(direct.items())
        if oid not in disqualified and not isinstance(obj, GlobalVariable)
    ]


def promote_memory_to_registers(function: Function) -> int:
    """Run mem2reg over every promotable object; return how many promoted."""
    objects = promotable_objects(function)
    if not objects:
        return 0
    dom = DominatorTree(function)
    frontiers = dom.frontier()

    for target in objects:
        _promote_one(function, dom, frontiers, target)
    return len(objects)


def _promote_one(
    function: Function,
    dom: DominatorTree,
    frontiers: Dict[str, List[str]],
    target: MemoryObject,
) -> None:
    defining_blocks = {
        instruction.block.name
        for instruction in function.instructions()
        if isinstance(instruction, Store)
        and len(instruction.may_access) == 1
        and instruction.may_access[0] is target
    }

    # Iterated dominance frontier: phi placement sites.
    phi_blocks: Set[str] = set()
    worklist = list(defining_blocks)
    while worklist:
        block_name = worklist.pop()
        for frontier_block in frontiers.get(block_name, []):
            if frontier_block not in phi_blocks:
                phi_blocks.add(frontier_block)
                worklist.append(frontier_block)

    phis: Dict[str, Phi] = {}
    for block_name in sorted(phi_blocks):
        block = function.block(block_name)
        placeholders = [
            (UndefValue(IntType(64)), predecessor.name)
            for predecessor in block.predecessors()
        ]
        phi = Phi(IntType(64), placeholders, name=f"{target.name}.phi")
        block.insert(len(block.phis()), phi)
        phis[block_name] = phi

    # Rename along the dominator tree.
    def rename(block_name: str, reaching: Value) -> None:
        block = function.block(block_name)
        if block_name in phis:
            reaching = phis[block_name].result
        for instruction in list(block.instructions):
            if (
                isinstance(instruction, Load)
                and len(instruction.may_access) == 1
                and instruction.may_access[0] is target
            ):
                _replace_uses(function, instruction.result, reaching)
                block.remove(instruction)
            elif (
                isinstance(instruction, Store)
                and len(instruction.may_access) == 1
                and instruction.may_access[0] is target
            ):
                reaching = instruction.operands[0]
                block.remove(instruction)
        for successor in block.successors():
            phi = phis.get(successor.name)
            if phi is not None:
                for index, incoming_block in enumerate(phi.incoming_blocks):
                    if incoming_block == block_name:
                        phi.operands[index] = reaching
        for child in dom.children(block_name):
            rename(child, reaching)

    rename(function.entry_name, UndefValue(IntType(64)))


def hoist_loop_invariants(function: Function, loop: Loop) -> int:
    """Move loop-invariant pure computations into a fresh preheader.

    An instruction is invariant when it is a pure BinOp/UnOp whose operands
    are constants, values defined outside the loop, or other already-hoisted
    invariants.  Returns the number of instructions hoisted.
    """
    body_ids = {instruction.id for instruction in loop.instructions()}
    defined_inside = {
        instruction.result.id
        for instruction in loop.instructions()
        if instruction.result is not None
    }

    invariant: List[Instruction] = []
    invariant_results: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for instruction in loop.instructions():
            if instruction.id in {i.id for i in invariant}:
                continue
            if not isinstance(instruction, (BinOp, UnOp)):
                continue
            if all(
                isinstance(op, Constant)
                or op.id not in defined_inside
                or op.id in invariant_results
                for op in instruction.operands
            ):
                invariant.append(instruction)
                if instruction.result is not None:
                    invariant_results.add(instruction.result.id)
                changed = True
    if not invariant:
        return 0

    preheader = _make_preheader(function, loop)
    for instruction in invariant:
        instruction.block.remove(instruction)
        preheader.insert(len(preheader.instructions) - 1, instruction)
    return len(invariant)


def _make_preheader(function: Function, loop: Loop) -> BasicBlock:
    """Insert a preheader block on every entry edge into the loop header."""
    header = loop.header
    preheader = function.new_block(f"{header.name}.preheader")
    latch_names = {latch.name for latch in loop.latches}
    for predecessor in header.predecessors():
        if predecessor.name in latch_names or predecessor is preheader:
            continue
        terminator = predecessor.terminator
        if isinstance(terminator, Jump):
            terminator.target = preheader.name
        else:
            if getattr(terminator, "true_target", None) == header.name:
                terminator.true_target = preheader.name
            if getattr(terminator, "false_target", None) == header.name:
                terminator.false_target = preheader.name
        # Phi incoming edges move to the preheader.
        for phi in header.phis():
            for index, block_name in enumerate(phi.incoming_blocks):
                if block_name == predecessor.name:
                    phi.incoming_blocks[index] = preheader.name
    preheader.append(Jump(header.name))
    return preheader


def _replace_uses(function: Function, old: Value, new: Value) -> None:
    if old is None:
        return
    for instruction in function.instructions():
        instruction.replace_operand(old, new)
