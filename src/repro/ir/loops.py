"""Natural-loop discovery and loop-nest trees.

The framework must "find, analyze, and optimize a loop without regard to its
position in the code" (Section 2.2), so loops are first-class: a
:class:`Loop` knows its header, body blocks, back edges, exits, and nesting.
Detection uses the classic dominator-based natural-loop construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


class Loop:
    """One natural loop.

    Attributes:
        header: the unique entry block.
        blocks: all blocks in the loop body (header included).
        latches: blocks with a back edge to the header.
        parent: enclosing loop, or ``None`` for top-level loops.
        children: immediately nested loops.
    """

    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: Set[str] = {header.name}
        self.latches: List[BasicBlock] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def function(self) -> Function:
        return self.header.function

    def contains_block(self, name: str) -> bool:
        return name in self.blocks

    def body_blocks(self) -> List[BasicBlock]:
        function = self.function
        return [function.block(name) for name in sorted(self.blocks)]

    def exit_edges(self) -> List[tuple]:
        """(from_block, to_block_name) pairs leaving the loop."""
        edges = []
        for block in self.body_blocks():
            for successor in block.successor_names():
                if successor not in self.blocks:
                    edges.append((block, successor))
        return edges

    @property
    def depth(self) -> int:
        depth, loop = 0, self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def instructions(self):
        for block in self.body_blocks():
            yield from block.instructions

    def __repr__(self) -> str:
        return f"Loop(header={self.header.name!r}, {len(self.blocks)} blocks, depth={self.depth})"


class LoopNest:
    """All loops of one function, organized as a forest by nesting."""

    def __init__(self, function: Function, loops: List[Loop]) -> None:
        self.function = function
        self.loops = loops

    @property
    def top_level(self) -> List[Loop]:
        return [loop for loop in self.loops if loop.parent is None]

    def loop_with_header(self, header_name: str) -> Optional[Loop]:
        for loop in self.loops:
            if loop.header.name == header_name:
                return loop
        return None

    def innermost_containing(self, block_name: str) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in self.loops:
            if loop.contains_block(block_name):
                if best is None or loop.depth > best.depth:
                    best = loop
        return best

    def outermost(self) -> Optional[Loop]:
        """The largest top-level loop — where Section 2.2 says parallelism lives."""
        candidates = self.top_level
        if not candidates:
            return None
        return max(candidates, key=lambda loop: len(loop.blocks))

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)


def find_loops(function: Function) -> LoopNest:
    """Discover all natural loops of ``function``.

    A back edge is an edge ``latch -> header`` where ``header`` dominates
    ``latch``; the natural loop is the header plus all blocks that reach the
    latch without passing through the header.  Loops sharing a header are
    merged (as in LLVM), and nesting is established by body containment.
    """
    # Imported here, not at module top: repro.analysis depends on repro.ir,
    # so a top-level import would be circular.
    from repro.analysis.dominators import DominatorTree

    dom = DominatorTree(function)
    loops_by_header: Dict[str, Loop] = {}

    for block in function.blocks:
        for successor in block.successors():
            if dom.dominates(successor.name, block.name):
                loop = loops_by_header.setdefault(successor.name, Loop(successor))
                loop.latches.append(block)
                _grow_natural_loop(loop, block, successor)

    loops = list(loops_by_header.values())
    _establish_nesting(loops)
    return LoopNest(function, loops)


def _grow_natural_loop(loop: Loop, latch: BasicBlock, header: BasicBlock) -> None:
    """Add to ``loop`` every block that reaches ``latch`` avoiding ``header``."""
    stack = [latch]
    while stack:
        block = stack.pop()
        if block.name in loop.blocks:
            continue
        loop.blocks.add(block.name)
        for predecessor in block.predecessors():
            if predecessor.name != header.name:
                stack.append(predecessor)


def _establish_nesting(loops: List[Loop]) -> None:
    """Set parent/children pointers: the parent is the smallest strict superset."""
    for loop in loops:
        parent: Optional[Loop] = None
        for candidate in loops:
            if candidate is loop:
                continue
            if loop.blocks < candidate.blocks:
                if parent is None or candidate.blocks < parent.blocks:
                    parent = candidate
        loop.parent = parent
        if parent is not None:
            parent.children.append(loop)
