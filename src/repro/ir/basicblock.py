"""Basic blocks: maximal straight-line instruction sequences."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.ir.instructions import Instruction, Phi


class BasicBlock:
    """A named block of instructions ending in at most one terminator.

    Predecessor/successor edges are stored by block *name* and resolved
    through the owning function, which keeps them trivially consistent under
    transformations that clone or rename blocks (inlining, specialization).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[Instruction] = []
        self.function = None  # back-pointer, set by Function.add_block

    # -- construction ---------------------------------------------------------

    def append(self, instruction: Instruction) -> Instruction:
        if self.terminator is not None:
            raise ValueError(
                f"block {self.name!r} already terminated by {self.terminator!r}"
            )
        instruction.block = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        instruction.block = self
        self.instructions.insert(index, instruction)
        return instruction

    def remove(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)
        instruction.block = None

    # -- queries ---------------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successor_names(self) -> List[str]:
        term = self.terminator
        if term is None:
            return []
        return term.targets()

    def successors(self) -> List["BasicBlock"]:
        if self.function is None:
            return []
        return [self.function.block(name) for name in self.successor_names()]

    def predecessors(self) -> List["BasicBlock"]:
        if self.function is None:
            return []
        return [
            block
            for block in self.function.blocks
            if self.name in block.successor_names()
        ]

    def phis(self) -> List[Phi]:
        return [i for i in self.instructions if isinstance(i, Phi)]

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, Phi)]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.name!r}, {len(self.instructions)} instructions)"
