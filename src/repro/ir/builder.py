"""Fluent construction helpers for IR programs.

Used pervasively by tests and examples, and by the mini-C front end in the
gcc workload analog.  The builder keeps a *current block* insertion point and
offers one method per instruction kind.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloc,
    BinOp,
    Branch,
    Call,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
    YBranch,
)
from repro.ir.program import Program
from repro.ir.types import IntType, Type
from repro.ir.values import Constant, MemoryObject, Value

Operand = Union[Value, int, bool]


def _as_value(operand: Operand) -> Value:
    if isinstance(operand, Value):
        return operand
    if isinstance(operand, bool):
        return Constant(int(operand))
    if isinstance(operand, int):
        return Constant(operand)
    raise TypeError(f"cannot use {operand!r} as an IR operand")


class FunctionBuilder:
    """Builds one function, block by block."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._current: Optional[BasicBlock] = None

    # -- block management -------------------------------------------------------

    def block(self, name: str) -> BasicBlock:
        """Create block ``name`` (or fetch it) and make it the insertion point."""
        if self.function.has_block(name):
            self._current = self.function.block(name)
        else:
            self._current = self.function.new_block(name)
        return self._current

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise ValueError("no current block; call .block(name) first")
        return self._current

    def param(self, index: int):
        return self.function.parameters[index]

    # -- instructions ------------------------------------------------------------

    def binop(self, op: str, lhs: Operand, rhs: Operand, name: str = "", cost: int = 1):
        instruction = BinOp(op, _as_value(lhs), _as_value(rhs), name=name, cost=cost)
        self.current.append(instruction)
        return instruction.result

    def add(self, lhs, rhs, name="", cost=1):
        return self.binop("add", lhs, rhs, name=name, cost=cost)

    def sub(self, lhs, rhs, name="", cost=1):
        return self.binop("sub", lhs, rhs, name=name, cost=cost)

    def mul(self, lhs, rhs, name="", cost=1):
        return self.binop("mul", lhs, rhs, name=name, cost=cost)

    def compare(self, op: str, lhs, rhs, name="", cost=1):
        return self.binop(op, lhs, rhs, name=name, cost=cost)

    def unop(self, op: str, operand: Operand, name: str = "", cost: int = 1):
        instruction = UnOp(op, _as_value(operand), name=name, cost=cost)
        self.current.append(instruction)
        return instruction.result

    def load(self, address: Operand, may_access: Sequence[MemoryObject], name="", cost=1):
        instruction = Load(_as_value(address), may_access, name=name, cost=cost)
        self.current.append(instruction)
        return instruction.result

    def store(self, value: Operand, address: Operand, may_access: Sequence[MemoryObject], cost=1):
        instruction = Store(_as_value(value), _as_value(address), may_access, cost=cost)
        self.current.append(instruction)
        return instruction

    def alloc(self, name: str = "", cost: int = 1):
        instruction = Alloc(name=name, cost=cost)
        self.current.append(instruction)
        return instruction

    def call(self, callee: str, args: Sequence[Operand] = (), name="", cost=1,
             reads: Sequence[MemoryObject] = (), writes: Sequence[MemoryObject] = ()):
        instruction = Call(callee, [_as_value(a) for a in args], name=name, cost=cost)
        instruction.reads = list(reads)
        instruction.writes = list(writes)
        self.current.append(instruction)
        return instruction

    def phi(self, type_: Type, incoming, name: str = ""):
        resolved = [(_as_value(v), b) for v, b in incoming]
        instruction = Phi(type_, resolved, name=name)
        # Phis must precede non-phi instructions.
        position = len(self.current.phis())
        self.current.insert(position, instruction)
        return instruction.result

    def branch(self, condition: Operand, true_target: str, false_target: str, cost=1):
        instruction = Branch(_as_value(condition), true_target, false_target, cost=cost)
        self.current.append(instruction)
        return instruction

    def ybranch(self, condition: Operand, true_target: str, false_target: str,
                probability: float = 0.0, cost: int = 1):
        """Insert the paper's Y-branch (Section 2.3.1)."""
        instruction = YBranch(
            _as_value(condition), true_target, false_target,
            probability=probability, cost=cost,
        )
        self.current.append(instruction)
        return instruction

    def jump(self, target: str):
        instruction = Jump(target)
        self.current.append(instruction)
        return instruction

    def ret(self, value: Optional[Operand] = None):
        instruction = Return(_as_value(value) if value is not None else None)
        self.current.append(instruction)
        return instruction


class ProgramBuilder:
    """Builds a whole program: functions, globals, annotations."""

    def __init__(self, name: str = "program") -> None:
        self.program = Program(name)

    def global_variable(self, name: str, *, field: str = "") -> MemoryObject:
        return self.program.add_global(name, field=field)

    def function(
        self,
        name: str,
        parameter_types: Sequence[Type] = (),
        parameter_names: Sequence[str] = (),
        return_type: Optional[Type] = None,
    ) -> FunctionBuilder:
        function = Function(name, parameter_types, parameter_names, return_type)
        self.program.add_function(function)
        return FunctionBuilder(function)

    def external_function(self, name: str, parameter_types: Sequence[Type] = ()) -> Function:
        function = Function(name, parameter_types)
        function.is_external = True
        self.program.add_function(function)
        return function

    def int_type(self, bits: int = 64) -> IntType:
        return IntType(bits)

    def finish(self) -> Program:
        self.program.verify()
        return self.program
