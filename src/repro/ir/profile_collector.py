"""Execution-based profile collection for the IR route.

The trace route profiles live Python workloads; this module does the same
for IR programs: run the program through the interpreter with an observer
attached and harvest exactly the three profiles
:func:`repro.speculation.manager.speculate_pdg` consumes:

- **branch bias** per branch block (control speculation candidates);
- **value predictability** per defining register (value speculation);
- **loop-carried memory conflict rates** per (store, load) instruction pair
  of the target loop — the fraction of the loop's iterations on which the
  load actually consumed a value stored in an *earlier* iteration, which is
  precisely the misspeculation rate alias speculation would pay.

The collected profiles are packaged in the same classes the trace route
uses (:class:`~repro.profiling.branch_profile.BranchProfile`,
:class:`~repro.profiling.value_profile.ValueProfile`), so one speculation
engine serves both front doors.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instruction, YBranch
from repro.ir.interp import Interpreter
from repro.ir.loops import Loop
from repro.ir.program import Program
from repro.profiling.branch_profile import BranchProfile
from repro.profiling.tracer import Tracer
from repro.profiling.value_profile import ValueProfile


class ProfileObserver:
    """Interpreter observer accumulating raw events for one target loop."""

    #: A dependence on a store more than this many iterations back is served
    #: by committed state, not a speculative version — it cannot misspeculate
    #: (matches the speculation window of the 32-core machine).
    window = 32

    def __init__(self, loop: Optional[Loop]) -> None:
        self.loop = loop
        self._loop_function = loop.function if loop is not None else None
        self._header = loop.header.name if loop is not None else None
        self._body_ids = (
            {i.id for i in loop.instructions()} if loop is not None else set()
        )
        self.iteration = 0
        self.branch_outcomes: Dict[str, List[bool]] = defaultdict(list)
        self.value_observations: Dict[str, List[int]] = defaultdict(list)
        #: location -> (iteration, store instruction id) of the last write
        self._last_store: Dict[Tuple[str, object], Tuple[int, int]] = {}
        #: (store id, load id) -> set of iterations where the dependence
        #: crossed an iteration boundary
        self.carried_conflicts: Dict[Tuple[int, int], set] = defaultdict(set)

    # -- Interpreter protocol -------------------------------------------------------

    def on_block(self, function: Function, block_name: str) -> None:
        if self._loop_function is function and block_name == self._header:
            self.iteration += 1

    def on_branch(self, instruction, taken: bool) -> None:
        block = instruction.block
        if block is None:
            return
        site = block.name
        self.branch_outcomes[site].append(taken)

    def on_define(self, instruction: Instruction, value: int) -> None:
        if instruction.result is None or instruction.id not in self._body_ids:
            return
        self.value_observations[instruction.result.name].append(value)

    def on_memory(self, instruction: Instruction, location, is_store: bool) -> None:
        if is_store:
            self._last_store[location] = (self.iteration, instruction.id)
            return
        writer = self._last_store.get(location)
        if writer is None:
            return
        writer_iteration, writer_id = writer
        if (
            writer_iteration < self.iteration
            and self.iteration - writer_iteration <= self.window
            and writer_id in self._body_ids
            and instruction.id in self._body_ids
        ):
            self.carried_conflicts[(writer_id, instruction.id)].add(self.iteration)


@dataclass
class IRProfiles:
    """Everything speculate_pdg needs, harvested from one execution."""

    branch_profile: BranchProfile
    value_profile: ValueProfile
    memory_conflict_rates: Dict[Tuple[int, int], float]
    iterations: int
    return_value: Optional[int] = None


def collect_profiles(
    program: Program,
    loop: Loop,
    *,
    entry: Optional[str] = None,
    arguments: Sequence[int] = (),
    max_steps: int = 5_000_000,
) -> IRProfiles:
    """Run ``program`` (from ``entry`` or its main) and profile ``loop``.

    Branch bias covers the whole run; value observations and conflict rates
    are scoped to the loop's body instructions.  Loop-carried conflict rates
    are occurrences / iterations — the alias-speculation misspeculation
    rate.
    """
    observer = ProfileObserver(loop)
    interpreter = Interpreter(program, max_steps=max_steps, observer=observer)
    target = program.function(entry) if entry else program.main
    result = interpreter.run_function(target, list(arguments))

    # Package the raw events through the trace-route profile classes.
    tracer = Tracer()
    with tracer.task("B", 0):
        tracer.work(1)
        for site, outcomes in observer.branch_outcomes.items():
            for taken in outcomes:
                tracer.branch(site, taken)
        for site, values in observer.value_observations.items():
            for value in values:
                tracer.value(site, value)
    trace = tracer.finish()

    iterations = max(observer.iteration, 1)
    rates = {
        pair: len(iterations_hit) / iterations
        for pair, iterations_hit in observer.carried_conflicts.items()
    }
    return IRProfiles(
        branch_profile=BranchProfile(trace),
        value_profile=ValueProfile(trace),
        memory_conflict_rates=rates,
        iterations=observer.iteration,
        return_value=result,
    )
