"""Compiler intermediate representation.

The framework of the paper requires "whole program optimization [32]" scope
(Section 2.2): the compiler must be able to see and transform code at any loop
level, across procedure boundaries.  This package provides the IR that makes
that possible:

- :mod:`repro.ir.values` / :mod:`repro.ir.instructions` — a small, typed,
  register-based instruction set with explicit memory operations;
- :mod:`repro.ir.basicblock` / :mod:`repro.ir.function` /
  :mod:`repro.ir.program` — the containers, with CFG edges kept consistent;
- :mod:`repro.ir.builder` — a fluent construction API used by tests, examples
  and the mini-C front end in the gcc workload;
- :mod:`repro.ir.loops` — natural-loop discovery and loop-nest trees;
- :mod:`repro.ir.region` — region formation (Section 2.2) to bound the scope
  handed to analysis and partitioning;
- :mod:`repro.ir.inline` — call-site inlining, the mechanism for removing
  procedure boundaries;
- :mod:`repro.ir.printer` — a stable textual dump used in tests and docs.
"""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloc,
    BinOp,
    Branch,
    Call,
    CommutativeMarker,
    Instruction,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
    YBranch,
)
from repro.ir.loops import Loop, LoopNest, find_loops
from repro.ir.program import Program
from repro.ir.region import Region, form_loop_region
from repro.ir.types import BoolType, FloatType, IntType, PointerType, Type, VoidType
from repro.ir.values import Constant, GlobalVariable, MemoryObject, Parameter, Value, VirtualRegister

__all__ = [
    "Alloc",
    "BasicBlock",
    "BinOp",
    "BoolType",
    "Branch",
    "Call",
    "CommutativeMarker",
    "Constant",
    "FloatType",
    "Function",
    "FunctionBuilder",
    "GlobalVariable",
    "Instruction",
    "IntType",
    "Jump",
    "Load",
    "Loop",
    "LoopNest",
    "MemoryObject",
    "Parameter",
    "Phi",
    "PointerType",
    "Program",
    "ProgramBuilder",
    "Region",
    "Return",
    "Store",
    "Type",
    "UnOp",
    "Value",
    "VirtualRegister",
    "VoidType",
    "YBranch",
    "find_loops",
    "form_loop_region",
]
