"""Values: the operands and results of IR instructions.

A :class:`Value` is anything an instruction may read: constants, virtual
registers (instruction results), function parameters, and the addresses of
memory objects.  Memory itself is modelled through :class:`MemoryObject`
abstract locations — the granularity at which the alias analysis and the
versioned-memory model reason.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.ir.types import IntType, PointerType, Type

_value_ids = itertools.count()


class Value:
    """Base class for everything that can appear as an operand."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        self.id = next(_value_ids)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name or self.id})"


class Constant(Value):
    """An immediate constant."""

    def __init__(self, value, type_: Optional[Type] = None) -> None:
        if type_ is None:
            type_ = IntType(64)
        super().__init__(type_, name=str(value))
        self.value = value

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.value == self.value
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash(("Constant", self.value, self.type))


class VirtualRegister(Value):
    """The SSA-style result of an instruction.

    Registers are written exactly once by their defining instruction in
    well-formed functions (Phi nodes provide the merge points); the register
    dependence analysis relies on this.
    """

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, name=name or f"v{next(_value_ids)}")
        self.defining_instruction = None  # set by Instruction.__init__

    def __str__(self) -> str:
        return f"%{self.name}"


class Parameter(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name=name)
        self.index = index

    def __str__(self) -> str:
        return f"%{self.name}"


class MemoryObject(Value):
    """An abstract memory location.

    One :class:`MemoryObject` stands for a set of concrete addresses that the
    analyses never need to distinguish: a global variable, all cells of one
    array, one allocation site's objects, or one field of a structure when the
    front end chooses field-sensitive modelling (the paper's gcc case study
    splits bit-flag fields into separate objects for exactly this reason).
    """

    def __init__(self, name: str, *, field: str = "", allocation_site=None) -> None:
        super().__init__(PointerType(IntType(64)), name=name)
        self.field = field
        self.allocation_site = allocation_site

    def __str__(self) -> str:
        if self.field:
            return f"@{self.name}.{self.field}"
        return f"@{self.name}"


class GlobalVariable(MemoryObject):
    """A named global; its address is a compile-time constant."""

    def __init__(self, name: str, *, field: str = "") -> None:
        super().__init__(name, field=field)


class UndefValue(Value):
    """An undefined value; reading one is a program error the verifier flags."""

    def __init__(self, type_: Type) -> None:
        super().__init__(type_, name="undef")

    def __str__(self) -> str:
        return "undef"
