"""A reference interpreter for the IR.

Gives the IR executable semantics, which the test suite uses to prove that
the :mod:`repro.ir.transforms` passes are behavior-preserving (compile the
same function optimized and unoptimized, compare results) and that the gcc
workload's generated code computes what its source says.

Memory is a flat ``{(object name, key): value}`` store; loads and stores use
the *first* declared may-access object as the concrete location (the
front ends built here always declare exact objects).  Calls dispatch through
the program's function table.  Y-branches honor their condition (sequential
semantics) unless a ``ybranch_forced_true`` predicate is supplied.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    Alloc,
    BinOp,
    Branch,
    Call,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
    YBranch,
)
from repro.ir.program import Program
from repro.ir.values import Constant, Parameter, UndefValue, Value

_BINARY = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a // b if b else 0,
    "mod": lambda a, b: a % b if b else 0,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
}


class InterpreterError(RuntimeError):
    """Raised on ill-formed IR or runaway execution."""


class Interpreter:
    """Executes IR functions against a shared memory dictionary."""

    def __init__(
        self,
        program: Optional[Program] = None,
        memory: Optional[Dict[Tuple[str, Hashable], int]] = None,
        max_steps: int = 1_000_000,
        ybranch_forced_true: Optional[Callable[[YBranch, int], bool]] = None,
        observer=None,
    ) -> None:
        """``observer``, when given, receives execution events — see
        :class:`repro.ir.profile_collector.ProfileObserver` for the protocol
        (``on_block``, ``on_branch``, ``on_define``, ``on_memory``)."""
        self.program = program
        self.memory: Dict[Tuple[str, Hashable], int] = memory if memory is not None else {}
        self.max_steps = max_steps
        self.steps = 0
        self.ybranch_forced_true = ybranch_forced_true
        self.observer = observer
        self._ybranch_instances: Dict[int, int] = {}

    def run_function(self, function: Function, arguments: List[int]) -> Optional[int]:
        if len(arguments) != len(function.parameters):
            raise InterpreterError(
                f"{function.name} expects {len(function.parameters)} arguments"
            )
        registers: Dict[int, int] = {}
        for parameter, argument in zip(function.parameters, arguments):
            registers[parameter.id] = argument

        block = function.entry
        previous_block_name: Optional[str] = None

        while True:
            # Phis evaluate simultaneously against the incoming edge.
            phi_values: Dict[int, int] = {}
            for phi in block.phis():
                value = None
                for incoming_value, incoming_block in phi.incoming():
                    if incoming_block == previous_block_name:
                        value = self._value(incoming_value, registers)
                        break
                if value is None and previous_block_name is not None:
                    raise InterpreterError(
                        f"phi {phi!r} has no incoming value from {previous_block_name}"
                    )
                phi_values[phi.result.id] = value if value is not None else 0
            registers.update(phi_values)

            jump_target: Optional[str] = None
            for instruction in block.non_phi_instructions():
                self.steps += 1
                if self.steps > self.max_steps:
                    raise InterpreterError("step budget exhausted (endless loop?)")

                if isinstance(instruction, BinOp):
                    lhs = self._value(instruction.operands[0], registers)
                    rhs = self._value(instruction.operands[1], registers)
                    result = _BINARY[instruction.op](lhs, rhs)
                    registers[instruction.result.id] = result
                    if self.observer is not None:
                        self.observer.on_define(instruction, result)
                elif isinstance(instruction, UnOp):
                    operand = self._value(instruction.operands[0], registers)
                    result = -operand if instruction.op == "neg" else ~operand
                    registers[instruction.result.id] = result
                    if self.observer is not None:
                        self.observer.on_define(instruction, result)
                elif isinstance(instruction, Load):
                    location = self._location(instruction, registers)
                    result = self.memory.get(location, 0)
                    registers[instruction.result.id] = result
                    if self.observer is not None:
                        self.observer.on_memory(instruction, location, is_store=False)
                        self.observer.on_define(instruction, result)
                elif isinstance(instruction, Store):
                    location = self._location(instruction, registers)
                    self.memory[location] = self._value(instruction.operands[0], registers)
                    if self.observer is not None:
                        self.observer.on_memory(instruction, location, is_store=True)
                elif isinstance(instruction, Alloc):
                    registers[instruction.result.id] = instruction.object.id
                elif isinstance(instruction, Call):
                    result = self._call(instruction, registers)
                    if instruction.result is not None:
                        registers[instruction.result.id] = result if result is not None else 0
                elif isinstance(instruction, YBranch):
                    condition = bool(self._value(instruction.condition, registers))
                    count = self._ybranch_instances.get(instruction.id, 0) + 1
                    self._ybranch_instances[instruction.id] = count
                    forced = (
                        self.ybranch_forced_true is not None
                        and self.ybranch_forced_true(instruction, count)
                    )
                    taken = condition or forced
                    jump_target = instruction.true_target if taken else instruction.false_target
                    break
                elif isinstance(instruction, Branch):
                    condition = self._value(instruction.condition, registers)
                    if self.observer is not None:
                        self.observer.on_branch(instruction, bool(condition))
                    jump_target = (
                        instruction.true_target if condition else instruction.false_target
                    )
                    break
                elif isinstance(instruction, Jump):
                    jump_target = instruction.target
                    break
                elif isinstance(instruction, Return):
                    if instruction.value is None:
                        return None
                    return self._value(instruction.value, registers)
                else:
                    raise InterpreterError(f"cannot interpret {instruction!r}")

            if jump_target is None:
                raise InterpreterError(f"block {block.name} fell through")
            previous_block_name = block.name
            block = function.block(jump_target)
            if self.observer is not None:
                self.observer.on_block(function, block.name)

    def _call(self, call: Call, registers: Dict[int, int]) -> Optional[int]:
        if self.program is None or call.callee is None:
            raise InterpreterError(f"cannot resolve call {call!r}")
        callee = self.program.function(call.callee)
        if callee.is_external:
            raise InterpreterError(f"cannot interpret external {callee.name}")
        arguments = [self._value(op, registers) for op in call.operands]
        return self.run_function(callee, arguments)

    def _value(self, value: Value, registers: Dict[int, int]) -> int:
        if isinstance(value, Constant):
            return value.value
        if isinstance(value, UndefValue):
            raise InterpreterError("read of undef value")
        if value.id in registers:
            return registers[value.id]
        raise InterpreterError(f"use of undefined value {value!r}")

    def _location(self, instruction, registers) -> Tuple[str, Hashable]:
        objects = instruction.memory_objects()
        if not objects:
            raise InterpreterError(f"{instruction!r} declares no memory object")
        target = objects[0]
        return (target.name, target.field or None)


def run_program(program: Program, arguments: List[int] = (),
                function: Optional[str] = None) -> Optional[int]:
    """Convenience: interpret ``function`` (default: main) of ``program``."""
    interpreter = Interpreter(program)
    target = program.function(function) if function else program.main
    return interpreter.run_function(target, list(arguments))
