"""Stable textual dumps of IR, for tests, debugging and documentation."""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.program import Program


def format_function(function: Function) -> str:
    """Render a function as readable pseudo-assembly."""
    params = ", ".join(f"{p.type} %{p.name}" for p in function.parameters)
    lines: List[str] = []
    tags = []
    if function.commutative_group is not None:
        tags.append(f"commutative({function.commutative_group})")
    if function.rollback:
        tags.append(f"rollback={function.rollback}")
    if function.is_external:
        tags.append("external")
    suffix = ("  ; " + " ".join(tags)) if tags else ""
    lines.append(f"func {function.name}({params}) -> {function.return_type}{suffix}")
    if function.is_external:
        return "\n".join(lines)
    for block in function.blocks:
        marker = " (entry)" if block.name == function.entry_name else ""
        lines.append(f"{block.name}:{marker}")
        for instruction in block.instructions:
            lines.append(f"  {instruction!r}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render a whole program, globals first."""
    lines: List[str] = [f"; program {program.name}"]
    for var in program.globals:
        lines.append(f"global {var}")
    for function in program.functions:
        lines.append("")
        lines.append(format_function(function))
    return "\n".join(lines)
