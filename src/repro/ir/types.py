"""A deliberately small type system for the IR.

The paper's framework operates on C programs; the analyses it needs (alias,
value-range, dependence) care about three distinctions only: integral values,
pointers (and what they may point to), and booleans produced by comparisons.
The type objects here are immutable and interned where it is cheap to do so.
"""

from __future__ import annotations


class Type:
    """Base class for IR types.  Types compare by structure."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self).__name__)

    def __repr__(self) -> str:
        return type(self).__name__

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)


class VoidType(Type):
    """The type of instructions that produce no value (stores, branches)."""

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """A signed integer of a given bit width (default 64)."""

    def __init__(self, bits: int = 64) -> None:
        if bits <= 0:
            raise ValueError(f"integer width must be positive, got {bits}")
        self.bits = bits

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("IntType", self.bits))

    def __str__(self) -> str:
        return f"i{self.bits}"

    def __repr__(self) -> str:
        return f"IntType({self.bits})"


class FloatType(Type):
    """A double-precision floating point value."""

    def __str__(self) -> str:
        return "f64"


class BoolType(Type):
    """The result of comparisons; the condition operand of branches."""

    def __str__(self) -> str:
        return "i1"


class PointerType(Type):
    """A pointer to a value of ``pointee`` type."""

    def __init__(self, pointee: Type) -> None:
        self.pointee = pointee

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("PointerType", self.pointee))

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def __repr__(self) -> str:
        return f"PointerType({self.pointee!r})"


#: Shared singletons for the common cases.
VOID = VoidType()
I64 = IntType(64)
I32 = IntType(32)
I8 = IntType(8)
I1 = BoolType()
F64 = FloatType()
PTR = PointerType(I64)
