"""The shared-memory metrics registry: live counters without locks.

PR 4's spools answer *what happened* after the run; this registry answers
*what is happening now*.  Producer, workers, and the committer write
monotonic counters, gauges, and fixed-bucket latency histograms into one
shared-memory block, and a monitor thread in the parent samples it at any
moment — mid-run, mid-storm, mid-crash — without stopping anything.

The write discipline reuses PR 3's shared-counter idiom: **one writer per
slot, one atomic slot store per update, no locks on the hot path**.  Every
traced process owns a private row of the counter/histogram arrays
(``writer`` index), so an update is a plain aligned-int64 store — readers
may observe a value a few stores stale, never a torn or double-counted
one.  Batched producers amortize further: one ``add(..., n=len(chunk))``
per dispatched frame, exactly like the channels' credit counters.

Snapshot consistency is by *read order*, not locking.  The pipeline's
causal chain is ``produced -> claimed -> executed/committed``: an item is
produced before any worker can claim it, and claimed before the committer
can commit it.  Because every counter is monotone, reading the chain in
**reverse causal order** (committed, then executed, then claimed, then
produced) guarantees each snapshot satisfies
``committed <= claimed <= produced`` on any healthy run — the invariant
the property tests hammer — without ever pausing a writer.

Histograms use fixed power-of-two bucket bounds (1 µs .. ~67 s plus an
overflow bucket) so a bucket index is a few integer compares; percentile
estimates interpolate linearly inside the landing bucket.  The layout maps
one-to-one onto the Prometheus histogram exposition
(:mod:`repro.obs.serve`), cumulative ``le`` buckets included.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Monotonic counters, one row per writer.  Order is the public schema —
#: :data:`SNAPSHOT_READ_ORDER` depends on these names.
COUNTER_NAMES = (
    "produced",         # phase-A items dispatched to the work channel
    "claimed",          # work items claimed by phase-B workers
    "executed",         # phase-B task executions completed in a worker
    "committed",        # iterations committed, in order, exactly once
    "conflicts",        # commit-time validation failures (misspeculation)
    "serial_reexec",    # committer-side serial re-executions
    "soft_faults",      # worker-reported task exceptions
    "worker_crashes",   # nonzero worker exits detected
    "worker_timeouts",  # hung workers killed
    "respawns",         # replacement workers spawned
    "checkpoints",      # committed-prefix checkpoints taken
    "chaos_injections", # chaos events the run weathered (all codes)
)

#: Point-in-time values; each gauge has a single designated writer.
GAUGE_NAMES = (
    "watermark",        # commit frontier (next iteration to commit)
    "window",           # current speculative window (throttle)
    "work_occupancy",   # items in flight on the work channel
    "done_occupancy",   # items in flight on the done channel
    "workers_alive",    # live phase-B processes
    "iterations",       # the run's total (constant; makes /metrics self-scaling)
)

#: Latency series recorded into shared fixed-bucket histograms.
HISTOGRAM_NAMES = (
    "task_b_seconds",       # per-task worker execution time
    "commit_lag_seconds",   # claim arrival -> commit, per iteration
)

#: Power-of-two bucket upper bounds in seconds: 1 µs, 2 µs, ... ~33.5 s.
#: The final (overflow) bucket is implicit (+Inf).
BUCKET_BOUNDS: Tuple[float, ...] = tuple(1e-6 * (1 << k) for k in range(26))
_N_BUCKETS = len(BUCKET_BOUNDS) + 1  # + overflow

#: Reverse-causal read order for the snapshot (see module docstring).
#: Names not listed are read afterwards in schema order.
SNAPSHOT_READ_ORDER = ("committed", "executed", "claimed", "produced")

#: Well-known writer rows.  Workers use ``WRITER_WORKER0 + worker_id``
#: (respawned replacements get fresh ids, hence fresh rows).
WRITER_PRODUCER = 0
WRITER_COMMITTER = 1
WRITER_WORKER0 = 2

_COUNTER_INDEX = {name: i for i, name in enumerate(COUNTER_NAMES)}
_GAUGE_INDEX = {name: i for i, name in enumerate(GAUGE_NAMES)}
_HISTOGRAM_INDEX = {name: i for i, name in enumerate(HISTOGRAM_NAMES)}


def bucket_index(seconds: float) -> int:
    """The histogram bucket a sample lands in (last = overflow)."""
    # Branchless-ish scan is overkill: 26 compares worst case, and the
    # common sub-millisecond samples exit within ~10.
    for i, bound in enumerate(BUCKET_BOUNDS):
        if seconds <= bound:
            return i
    return _N_BUCKETS - 1


@dataclass(frozen=True)
class HistogramSnapshot:
    """One shared histogram, frozen: per-bucket counts plus exact sum."""

    buckets: Tuple[int, ...]
    total: float

    @property
    def count(self) -> int:
        return sum(self.buckets)

    @property
    def mean(self) -> float:
        count = self.count
        return self.total / count if count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimated q-th percentile (0..100) by linear interpolation
        inside the landing bucket; ``None`` while the histogram is empty
        — the guard that keeps live renderings from printing degenerate
        p50=p99=0 rows for a stage that has committed nothing yet."""
        count = self.count
        if not count:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        rank = (q / 100.0) * count
        seen = 0
        for i, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                low = 0.0 if i == 0 else BUCKET_BOUNDS[i - 1]
                high = (
                    BUCKET_BOUNDS[i]
                    if i < len(BUCKET_BOUNDS)
                    else BUCKET_BOUNDS[-1] * 2
                )
                fraction = (rank - seen) / bucket_count
                return low + (high - low) * fraction
            seen += bucket_count
        return BUCKET_BOUNDS[-1] * 2  # unreachable in practice

    def to_json(self) -> dict:
        data = {"count": self.count, "sum": round(self.total, 6)}
        if self.count:
            data["mean"] = round(self.mean, 6)
            for q in (50, 95, 99):
                data[f"p{q}"] = round(self.percentile(q), 6)
        return data


@dataclass(frozen=True)
class RegistrySnapshot:
    """One consistent sample of the registry (see read-order contract)."""

    counters: Dict[str, int]
    gauges: Dict[str, int]
    histograms: Dict[str, HistogramSnapshot]
    #: ``time.monotonic()`` at sampling — rate math between snapshots.
    monotonic_s: float
    #: ``time.time()`` at sampling — wall-clock labelling only.
    unix_s: float = field(default=0.0)

    @property
    def misspeculation_rate(self) -> float:
        committed = self.counters.get("committed", 0)
        if not committed:
            return 0.0
        return self.counters.get("conflicts", 0) / committed

    def to_json(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_json()
                for name, hist in self.histograms.items()
            },
            "misspeculation_rate": round(self.misspeculation_rate, 4),
            "sampled_unix_s": round(self.unix_s, 3),
        }


class MetricsRegistry:
    """Shared-memory counters/gauges/histograms for one engine run.

    Construct with :meth:`create` in the parent *before* forking/spawning
    children; the instance is picklable through ``multiprocessing``'s
    process-args machinery (the shared arrays travel by handle, so every
    process addresses the same memory).

    Writers call :meth:`add`, :meth:`observe`, and :meth:`set_gauge` with
    their own ``writer`` row; the sampler calls :meth:`snapshot`.  Counters
    are monotone for the whole *run* so Prometheus scrapes compose; the
    worker-pool runtime (``repro.service``) reuses one registry across
    many runs and calls :meth:`reset` between leases, while the slot is
    quiescent, so each job's watchdog sees counters that start at zero.
    """

    def __init__(self, counters, hist_buckets, hist_sums, gauges, writers: int):
        self._counters = counters
        self._hist_buckets = hist_buckets
        self._hist_sums = hist_sums
        self._gauges = gauges
        self.writers = writers

    @classmethod
    def create(cls, ctx, writers: int) -> "MetricsRegistry":
        """Allocate the shared block for up to ``writers`` writer rows."""
        if writers < 1:
            raise ValueError("need at least one writer row")
        counters = ctx.RawArray("q", writers * len(COUNTER_NAMES))
        hist_buckets = ctx.RawArray(
            "q", writers * len(HISTOGRAM_NAMES) * _N_BUCKETS
        )
        hist_sums = ctx.RawArray("d", writers * len(HISTOGRAM_NAMES))
        gauges = ctx.RawArray("q", len(GAUGE_NAMES))
        return cls(counters, hist_buckets, hist_sums, gauges, writers)

    # -- hot path (single writer per row; one store per update) -----------------

    def add(self, writer: int, counter: str, n: int = 1) -> None:
        index = writer * len(COUNTER_NAMES) + _COUNTER_INDEX[counter]
        self._counters[index] += n

    def observe(self, writer: int, histogram: str, seconds: float) -> None:
        """Record one latency sample: one bucket store plus one sum store."""
        h = _HISTOGRAM_INDEX[histogram]
        base = (writer * len(HISTOGRAM_NAMES) + h) * _N_BUCKETS
        self._hist_buckets[base + bucket_index(seconds)] += 1
        self._hist_sums[writer * len(HISTOGRAM_NAMES) + h] += seconds

    def set_gauge(self, gauge: str, value: int) -> None:
        self._gauges[_GAUGE_INDEX[gauge]] = int(value)

    def reset(self) -> None:
        """Zero every counter, histogram, and gauge.

        Only legal while no writer is active (the pool resets a slot's
        registry after all leased workers have released and before the
        next job starts).  Mid-run resets would tear the monotonicity
        contract the snapshot read-order depends on.
        """
        for i in range(len(self._counters)):
            self._counters[i] = 0
        for i in range(len(self._hist_buckets)):
            self._hist_buckets[i] = 0
        for i in range(len(self._hist_sums)):
            self._hist_sums[i] = 0.0
        for i in range(len(self._gauges)):
            self._gauges[i] = 0

    # -- sampling ----------------------------------------------------------------

    def counter_total(self, counter: str) -> int:
        offset = _COUNTER_INDEX[counter]
        stride = len(COUNTER_NAMES)
        counters = self._counters
        return sum(
            counters[w * stride + offset] for w in range(self.writers)
        )

    def gauge_value(self, gauge: str) -> int:
        return self._gauges[_GAUGE_INDEX[gauge]]

    def histogram_snapshot(self, histogram: str) -> HistogramSnapshot:
        h = _HISTOGRAM_INDEX[histogram]
        stride = len(HISTOGRAM_NAMES) * _N_BUCKETS
        buckets = [0] * _N_BUCKETS
        total = 0.0
        for w in range(self.writers):
            base = w * stride + h * _N_BUCKETS
            for i in range(_N_BUCKETS):
                buckets[i] += self._hist_buckets[base + i]
            total += self._hist_sums[w * len(HISTOGRAM_NAMES) + h]
        return HistogramSnapshot(buckets=tuple(buckets), total=total)

    def snapshot(self) -> RegistrySnapshot:
        """Sample everything, reading the causal chain in reverse order so
        ``committed <= claimed <= produced`` holds on healthy runs."""
        counters: Dict[str, int] = {}
        for name in SNAPSHOT_READ_ORDER:
            counters[name] = self.counter_total(name)
        for name in COUNTER_NAMES:
            if name not in counters:
                counters[name] = self.counter_total(name)
        gauges = {name: self.gauge_value(name) for name in GAUGE_NAMES}
        histograms = {
            name: self.histogram_snapshot(name) for name in HISTOGRAM_NAMES
        }
        return RegistrySnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            monotonic_s=time.monotonic(),
            unix_s=time.time(),
        )


def writers_for(workers: int, max_respawns: int) -> int:
    """Writer rows one engine run can need: producer + committer + every
    worker that could ever exist (originals plus the respawn budget), with
    a little headroom so an off-by-one can never alias two writers."""
    return WRITER_WORKER0 + workers + max_respawns + 2
