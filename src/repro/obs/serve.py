"""The run's HTTP face: ``/metrics``, ``/snapshot``, ``/health``.

A stdlib :class:`http.server.ThreadingHTTPServer` in the engine's process
serves three read-only endpoints over the live monitor:

``/metrics``
    Prometheus text exposition, format version 0.0.4: ``# HELP``/``# TYPE``
    preambles, escaped label values, counters suffixed ``_total``, shared
    histograms exported with cumulative ``le`` buckets.  Counter values
    come straight off the monotone registry, so successive scrapes never
    go backwards (the golden/property tests pin both).

``/snapshot``
    The full registry snapshot plus derived liveness (items/sec, progress,
    watchdog events) as JSON — the debugging endpoint.

``/health``
    The liveness probe: HTTP 200 + ``{"status": "ok"}`` while the watchdog
    is content, HTTP 503 + ``{"status": "degraded"|"aborted", ...}`` while
    a stall, saturation, or misspeculation storm is in progress.  This is
    the contract a load balancer or CI smoke test polls.

Everything is read-only and single-run: the server binds loopback by
default and dies with the engine.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable, Optional, Tuple

from repro.obs.live import HealthState, LiveMonitor
from repro.obs.registry import (
    BUCKET_BOUNDS,
    COUNTER_NAMES,
    GAUGE_NAMES,
    RegistrySnapshot,
)

logger = logging.getLogger(__name__)

#: The content type Prometheus scrapers expect for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAMESPACE = "repro"

_COUNTER_HELP = {
    "produced": "Phase-A items dispatched to the work channel.",
    "claimed": "Work items claimed by phase-B workers.",
    "executed": "Phase-B task executions completed in a worker.",
    "committed": "Iterations committed in order, exactly once.",
    "conflicts": "Commit-time validation failures (misspeculation).",
    "serial_reexec": "Committer-side serial re-executions.",
    "soft_faults": "Worker-reported task exceptions.",
    "worker_crashes": "Nonzero worker exits detected.",
    "worker_timeouts": "Hung workers killed by the committer.",
    "respawns": "Replacement workers spawned.",
    "checkpoints": "Committed-prefix checkpoints taken.",
    "chaos_injections": "Chaos injections the run weathered.",
}

_GAUGE_HELP = {
    "watermark": "Commit frontier (next iteration to commit).",
    "window": "Current speculative window published to workers.",
    "work_occupancy": "Items in flight on the work channel.",
    "done_occupancy": "Items in flight on the done channel.",
    "workers_alive": "Live phase-B worker processes.",
    "iterations": "Total iterations this run will commit.",
}

_HISTOGRAM_HELP = {
    "task_b_seconds": "Per-task phase-B execution time in seconds.",
    "commit_lag_seconds": "Claim arrival to commit, per iteration.",
}

_WATCHDOG_COUNTERS = (
    ("watchdog_stalls", "Commit-stall episodes the watchdog flagged."),
    ("watchdog_saturations", "Work-channel saturation episodes flagged."),
    ("watchdog_storms", "Misspeculation storms flagged."),
)


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, double quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """HELP-line escaping: backslash and newline only (quotes are legal)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: Iterable[Tuple[str, str]]) -> str:
    pairs = [
        f'{name}="{escape_label_value(value)}"' for name, value in labels
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_bound(bound: float) -> str:
    """``le`` label values: shortest exact decimal repr (no float noise)."""
    text = repr(bound)
    return text


def prometheus_exposition(
    snapshot: RegistrySnapshot,
    *,
    labels: Optional[Iterable[Tuple[str, str]]] = None,
    watchdog: Optional[dict] = None,
    namespace: str = _NAMESPACE,
) -> str:
    """Render one registry snapshot as Prometheus text exposition.

    ``labels`` are constant labels attached to every sample (the CLI
    attaches ``workload``); ``watchdog`` is the monitor's summary dict,
    exported as health gauges and escalation counters.
    """
    base_labels = tuple(labels or ())
    label_text = _format_labels(base_labels)
    lines = []

    def header(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for counter in COUNTER_NAMES:
        name = f"{namespace}_{counter}_total"
        header(name, "counter", _COUNTER_HELP.get(counter, counter))
        lines.append(f"{name}{label_text} {snapshot.counters.get(counter, 0)}")

    for gauge in GAUGE_NAMES:
        name = f"{namespace}_{gauge}"
        header(name, "gauge", _GAUGE_HELP.get(gauge, gauge))
        lines.append(f"{name}{label_text} {snapshot.gauges.get(gauge, 0)}")

    for series, hist in snapshot.histograms.items():
        name = f"{namespace}_{series}"
        header(name, "histogram", _HISTOGRAM_HELP.get(series, series))
        cumulative = 0
        for bound, bucket_count in zip(BUCKET_BOUNDS, hist.buckets):
            cumulative += bucket_count
            bucket_labels = _format_labels(
                base_labels + (("le", _format_bound(bound)),)
            )
            lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
        inf_labels = _format_labels(base_labels + (("le", "+Inf"),))
        lines.append(f"{name}_bucket{inf_labels} {hist.count}")
        lines.append(f"{name}_sum{label_text} {hist.total:.9g}")
        lines.append(f"{name}_count{label_text} {hist.count}")

    if watchdog is not None:
        name = f"{namespace}_healthy"
        header(
            name, "gauge",
            "1 while the watchdog reports ok, 0 while degraded/aborted.",
        )
        healthy = 1 if watchdog.get("health") == HealthState.OK.value else 0
        lines.append(f"{name}{label_text} {healthy}")
        for key, help_text in _WATCHDOG_COUNTERS:
            metric = f"{namespace}_{key}_total"
            header(metric, "counter", help_text)
            short = key.replace("watchdog_", "")
            lines.append(f"{metric}{label_text} {watchdog.get(short, 0)}")

    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`MetricsServer`."""

    server_version = "repro-obs/1"

    # Set by the server factory.
    monitor: LiveMonitor = None
    labels: Tuple[Tuple[str, str], ...] = ()

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("http %s", format % args)

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802 - stdlib naming
        try:
            if self.path in ("/metrics", "/metrics/"):
                self._metrics()
            elif self.path in ("/snapshot", "/snapshot/"):
                self._snapshot()
            elif self.path in ("/health", "/health/", "/healthz"):
                self._health()
            else:
                self._send(
                    404, "application/json",
                    b'{"error": "unknown path", '
                    b'"endpoints": ["/metrics", "/snapshot", "/health"]}',
                )
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    # Handlers use ``peek()`` — a pure registry read — never ``sample()``:
    # the watchdog and rate window are single-threaded state owned by the
    # monitor thread, while scrapes arrive on server threads.  Counter
    # freshness (and therefore scrape-to-scrape monotonicity) comes from
    # the registry itself, which is always current.

    def _metrics(self) -> None:
        monitor = self.monitor
        snapshot = monitor.peek()
        body = prometheus_exposition(
            snapshot,
            labels=self.labels,
            watchdog=monitor.watchdog.summary(),
        ).encode("utf-8")
        self._send(200, PROMETHEUS_CONTENT_TYPE, body)

    def _snapshot(self) -> None:
        monitor = self.monitor
        body = json.dumps(
            monitor.status_json(monitor.peek()), indent=2, sort_keys=True
        ).encode("utf-8")
        self._send(200, "application/json", body)

    def _health(self) -> None:
        monitor = self.monitor
        health = monitor.health
        payload = {
            "status": health.value,
            "committed": monitor.peek().counters.get("committed", 0),
            "iterations": monitor.iterations,
            "watchdog": monitor.watchdog.summary(),
        }
        status = 200 if health == HealthState.OK else 503
        self._send(
            status, "application/json",
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )


class MetricsServer:
    """The telemetry endpoint for one engine run.

    ``port=0`` binds an ephemeral port (tests, and parallel runs on one
    box); the bound port is available as :attr:`port` after
    :meth:`start`.  The serving thread is a daemon and is also stopped
    explicitly by the engine's teardown.
    """

    def __init__(
        self,
        monitor: LiveMonitor,
        host: str = "127.0.0.1",
        port: int = 0,
        labels: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> None:
        self.monitor = monitor
        self.host = host
        self.requested_port = port
        self.labels = tuple(labels or ())
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    def start(self) -> "MetricsServer":
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"monitor": self.monitor, "labels": self.labels},
        )
        self._server = ThreadingHTTPServer(
            (self.host, self.requested_port), handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-serve",
            daemon=True,
        )
        self._thread.start()
        logger.info(
            "serving /metrics /snapshot /health on http://%s:%d",
            self.host, self.port,
        )
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
