"""Job-plane causal tracing: one Perfetto timeline per service job.

PR 4 made a single engine run observable — per-process ring spools merged
onto one wall-clock axis.  The job server in front of that engine was
dark: a job's life *before* ``ExecutionEngine.run`` (admission, quota
wait, the scheduler's pick, lease dispatch) and *after* it (artifact
persist, retry backoff) happened between timestamps nobody recorded.
This module closes the gap with the same machinery, not a parallel one:

- :class:`TraceContext` is minted at ``POST /jobs`` — job id, tenant,
  attempt, and a per-job spool directory — journaled with the submission
  and carried through scheduler → pool lease → engine;
- :class:`JobTrace` is the server-side spool for that job: a
  :class:`~repro.obs.spool.SpoolWriter` under the ``service`` role writing
  ADMIT / QUEUE_WAIT / SCHED_PICK / LEASE_DISPATCH / ARTIFACT_PERSIST /
  RETRY_BACKOFF spans into the *same* directory the engine's producer,
  workers, and committer spool into, so the existing merger stitches
  service stages onto A/B/C spans with zero new merge logic.  Unlike the
  engine spools (one writer per process), service spans come from the
  HTTP handler, the dispatcher, the retry sweep, and the job's runner
  thread — so this writer is lock-wrapped; the job plane records a few
  dozen events per job, not one per item, and can afford it;
- :func:`build_timeline` reduces a merged trace to the compact JSON
  phase view served by ``GET /jobs/<id>/timeline`` and stored next to
  the Chrome trace in the artifact store;
- :class:`FlightRecorder` is the post-mortem side: a bounded ring of
  recent service events (admissions, leases, failures, throttle moves)
  that the server snapshots into a bundle whenever a job fails,
  dead-letters, or a tenant degrades — the crash context that a
  request-scoped trace alone cannot carry;
- :func:`aggregate_report` / :func:`format_report` back the
  ``python -m repro obs report`` CLI: per-tenant, per-stage latency
  percentiles across every stored trace artifact.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.clock import now_ns
from repro.obs.events import EventKind, SERVICE_KINDS, TraceConfig
from repro.obs.hist import LatencyHistogram
from repro.obs.merge import MergedTrace
from repro.obs.spool import open_tracer

#: The spool role the server writes under (engine roles are ``producer``,
#: ``worker-N``, ``committer``; the merger treats them all alike).
SERVICE_ROLE = "service"

#: Name of the per-job spool directory under the artifact store job dir.
TRACE_DIR_NAME = "trace"

#: Stage names (timeline/report vocabulary) for the service span kinds.
STAGE_NAMES = {
    EventKind.ADMIT: "admit",
    EventKind.QUEUE_WAIT: "queue_wait",
    EventKind.SCHED_PICK: "sched_pick",
    EventKind.LEASE_DISPATCH: "lease_dispatch",
    EventKind.ARTIFACT_PERSIST: "artifact_persist",
    EventKind.RETRY_BACKOFF: "retry_backoff",
}

#: Engine-side histogram series surfaced in the compact timeline.
ENGINE_SERIES = (
    "task_a", "task_b", "task_c", "serial_reexec", "gate_wait", "commit_lag",
)


@dataclass(frozen=True)
class TraceContext:
    """The causal identity a traced job carries end to end.

    Picklable plain data: it rides in journal records (as JSON via
    :meth:`to_json`) and its :attr:`config` crosses the process boundary
    to pool workers inside the lease message.
    """

    job_id: str
    tenant: str
    attempt: int = 0
    config: Optional[TraceConfig] = None

    def for_attempt(self, attempt: int) -> "TraceContext":
        return replace(self, attempt=attempt)

    def to_json(self) -> dict:
        return {
            "job": self.job_id,
            "tenant": self.tenant,
            "attempt": self.attempt,
            "spool_dir": self.config.spool_dir if self.config else None,
        }


class JobTrace:
    """The server-side spool for one job, plus cross-thread span marks.

    A service stage often *begins* on one thread and *ends* on another
    (QUEUE_WAIT opens in the HTTP handler after the journal fsync and
    closes in the dispatcher at scheduler pick), so open spans are kept as
    named marks and closed with :meth:`end`.  All methods are safe to call
    concurrently and degrade to no-ops when the spool could not be opened
    — tracing must never take down the job it observes.
    """

    def __init__(self, context: TraceContext) -> None:
        self.context = context
        self._writer = open_tracer(context.config, SERVICE_ROLE)
        self._lock = threading.Lock()
        self._marks: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self._writer is not None

    @property
    def spool_dir(self) -> Optional[str]:
        return self.context.config.spool_dir if self.context.config else None

    def span(
        self,
        kind: EventKind,
        t0_ns: int,
        t1_ns: int,
        arg: int = 0,
        arg2: int = 0,
        detail: int = 0,
    ) -> None:
        if self._writer is None:
            return
        with self._lock:
            self._writer.record(int(kind), t0_ns, t1_ns, arg, arg2, detail)

    def instant(
        self, kind: EventKind, arg: int = 0, arg2: int = 0, detail: int = 0
    ) -> None:
        ts = now_ns()
        self.span(kind, ts, ts, arg, arg2, detail)

    # -- cross-thread span marks -------------------------------------------------

    def begin(self, name: str, at_ns: Optional[int] = None) -> None:
        """Open the named span (idempotent: a re-begin moves the mark)."""
        if self._writer is None:
            return
        with self._lock:
            self._marks[name] = at_ns if at_ns is not None else now_ns()

    def end(
        self,
        name: str,
        kind: EventKind,
        arg: int = 0,
        arg2: int = 0,
        detail: int = 0,
        at_ns: Optional[int] = None,
    ) -> float:
        """Close the named span; returns its duration in seconds (0.0 when
        the mark was never opened or tracing is off)."""
        if self._writer is None:
            return 0.0
        t1 = at_ns if at_ns is not None else now_ns()
        with self._lock:
            t0 = self._marks.pop(name, None)
            if t0 is None:
                return 0.0
            self._writer.record(int(kind), t0, t1, arg, arg2, detail)
        return (t1 - t0) / 1e9

    def flush(self) -> None:
        if self._writer is None:
            return
        with self._lock:
            self._writer.flush()

    def close(self) -> None:
        if self._writer is None:
            return
        with self._lock:
            self._writer.close()


def open_job_trace(
    job_id: str,
    tenant: str,
    spool_dir: str,
    max_events: int = 1 << 16,
) -> JobTrace:
    """Mint a :class:`TraceContext` and open the service spool for it."""
    os.makedirs(spool_dir, exist_ok=True)
    config = TraceConfig(spool_dir=spool_dir, max_events=max_events)
    return JobTrace(TraceContext(job_id=job_id, tenant=tenant, config=config))


# -- compact timeline ----------------------------------------------------------------


def build_timeline(
    merged: MergedTrace,
    job_id: str = "",
    tenant: str = "",
    attempts: int = 0,
) -> dict:
    """The compact phase view of one job's merged trace.

    Service stages keep every span verbatim (a job has a handful); engine
    phases are summarized through the merger's per-series histograms.
    This is both the ``GET /jobs/<id>/timeline`` response and the
    ``timeline.json`` artifact the ``obs report`` CLI aggregates.
    """
    phases: List[dict] = []
    for span in merged.spans:
        if span.kind not in SERVICE_KINDS:
            continue
        phases.append(
            {
                "stage": STAGE_NAMES[span.kind],
                "start_us": round(span.start_ns / 1000.0, 3),
                "duration_s": round(span.seconds, 9),
                "attempt": span.arg,
            }
        )
    phases.sort(key=lambda p: (p["start_us"], p["stage"]))
    service_series = frozenset(STAGE_NAMES.values())
    engine = {
        name: hist.summary()
        for name, hist in sorted(merged.histograms.items())
        if hist.count and name not in service_series
    }
    return {
        "job": job_id,
        "tenant": tenant,
        "attempts": attempts,
        "origin_wall_ns": merged.origin_wall_ns,
        "phases": phases,
        "engine": engine,
        "span_count": merged.span_count,
        "dropped_events": merged.dropped_events,
        "aborted_spans": merged.aborted_spans,
    }


# -- flight recorder -----------------------------------------------------------------


class FlightRecorder:
    """A bounded ring of recent job-plane events for post-mortem bundles.

    The server notes every consequential transition (admission, lease,
    completion, failure, retry, degrade) here; when something goes wrong
    the last ``capacity`` events are snapshotted into the bundle — the
    service-level answer to "what was happening right before".  Append is
    O(1) under a lock; this is the control plane, not the item hot path.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    def note(self, event: str, job_id: str = "", tenant: str = "", **details) -> None:
        with self._lock:
            self._seq += 1
            self._events.append(
                {
                    "seq": self._seq,
                    "unix_s": round(time.time(), 6),
                    "event": event,
                    "job": job_id,
                    "tenant": tenant,
                    **({"details": details} if details else {}),
                }
            )

    def snapshot(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    @property
    def events_noted(self) -> int:
        with self._lock:
            return self._seq


# -- cross-job report (``python -m repro obs report``) -------------------------------


def iter_job_traces(
    artifact_root: str, warnings: Optional[List[str]] = None
) -> Iterable[Tuple[str, dict, Optional[dict]]]:
    """Yield ``(job_id, timeline, chrome_trace_or_None)`` for every stored
    trace artifact under an artifact-store root.

    Untraced jobs (no timeline *and* no trace artifact) are skipped
    silently — they share the artifact root.  A job whose artifacts exist
    but cannot be read is skipped *loudly*: a message is appended to
    ``warnings`` (when given) so ``obs report`` can surface per-job
    corruption without aborting the whole aggregation.  A corrupt Chrome
    trace next to a readable timeline degrades to timeline-only (warned).
    """
    try:
        entries = sorted(os.scandir(artifact_root), key=lambda e: e.name)
    except OSError:
        return

    def warn(message: str) -> None:
        if warnings is not None:
            warnings.append(message)

    for entry in entries:
        if not entry.is_dir() or entry.name.startswith("."):
            continue
        timeline_path = os.path.join(entry.path, "timeline.json")
        trace_path = os.path.join(entry.path, "trace.json")
        has_timeline = os.path.exists(timeline_path)
        has_trace = os.path.exists(trace_path)
        if not has_timeline and not has_trace:
            continue  # untraced job
        timeline = None
        if has_timeline:
            try:
                with open(timeline_path) as handle:
                    timeline = json.load(handle)
            except (OSError, ValueError) as error:
                warn(f"job {entry.name}: unreadable timeline.json ({error})")
        if not isinstance(timeline, dict):
            if has_timeline and timeline is not None:
                warn(f"job {entry.name}: timeline.json is not an object")
            elif not has_timeline:
                warn(
                    f"job {entry.name}: trace.json present but "
                    "timeline.json missing"
                )
            continue
        trace = None
        if has_trace:
            try:
                with open(trace_path) as handle:
                    trace = json.load(handle)
            except (OSError, ValueError) as error:
                warn(
                    f"job {entry.name}: unreadable trace.json ({error}); "
                    "falling back to timeline summaries"
                )
                trace = None
        yield entry.name, timeline, trace


def aggregate_report(
    traces: Iterable[Tuple[str, dict, Optional[dict]]],
    tenant_filter: Optional[str] = None,
) -> dict:
    """Fold stored trace artifacts into per-tenant per-stage histograms.

    Service-stage samples come from the timeline's verbatim phase spans
    (exact).  Engine-stage samples come from the Chrome trace's ``X``
    events when present (exact over retained spans), falling back to the
    timeline's per-job means when the trace artifact is missing.
    """
    tenants: Dict[str, Dict[str, LatencyHistogram]] = {}
    jobs = 0

    def series(tenant: str, stage: str) -> LatencyHistogram:
        stages = tenants.setdefault(tenant, {})
        hist = stages.get(stage)
        if hist is None:
            hist = stages[stage] = LatencyHistogram()
        return hist

    engine_names = {"A": "task_a", "B": "task_b", "C": "task_c",
                    "reexec": "serial_reexec", "wait:gate": "gate_wait"}
    for job_id, timeline, trace in traces:
        tenant = timeline.get("tenant") or "unknown"
        if tenant_filter is not None and tenant != tenant_filter:
            continue
        jobs += 1
        for phase in timeline.get("phases", ()):
            stage = phase.get("stage")
            duration = phase.get("duration_s")
            if isinstance(stage, str) and isinstance(duration, (int, float)):
                series(tenant, stage).add(float(duration))
        if trace is not None:
            for event in trace.get("traceEvents", ()):
                if event.get("ph") != "X":
                    continue
                stage = engine_names.get(event.get("name"))
                if stage is None:
                    continue
                duration = event.get("dur")
                if isinstance(duration, (int, float)):
                    series(tenant, stage).add(duration / 1e6)
        else:
            for name, summary in timeline.get("engine", {}).items():
                mean = summary.get("mean")
                if isinstance(mean, (int, float)):
                    series(tenant, name).add(float(mean))
    return {"jobs": jobs, "tenants": tenants}


#: Report row order: job-plane stages first, in causal order, then engine.
_STAGE_ORDER = (
    "admit", "queue_wait", "sched_pick", "lease_dispatch",
    "artifact_persist", "retry_backoff",
    "task_a", "task_b", "task_c", "serial_reexec", "gate_wait",
)


def format_report(aggregate: dict) -> str:
    """Human-readable per-tenant per-stage percentile table."""
    lines = [f"jobs with trace artifacts: {aggregate['jobs']}"]
    if not aggregate["tenants"]:
        lines.append("(no trace artifacts found — run jobs with tracing on)")
        return "\n".join(lines)

    def stage_rank(name: str) -> Tuple[int, str]:
        try:
            return (_STAGE_ORDER.index(name), name)
        except ValueError:
            return (len(_STAGE_ORDER), name)

    for tenant in sorted(aggregate["tenants"]):
        lines.append(f"tenant {tenant}:")
        stages = aggregate["tenants"][tenant]
        width = max(len(name) for name in stages)
        for name in sorted(stages, key=stage_rank):
            hist = stages[name]
            lines.append(f"  {name:<{width}}  {hist.format_line()}")
    return "\n".join(lines)


def run_report(
    state_dir: str, tenant: Optional[str] = None
) -> Tuple[str, int]:
    """The ``obs report`` entry point: returns (text, exit_code).

    Accepts either a service ``--state-dir`` (artifacts live under
    ``artifacts/``) or an artifact root directly.  Per-job artifact
    corruption is reported as a warning, not an abort: the exit code is
    nonzero only when *no* job could be aggregated (1), or the directory
    itself is missing (2).
    """
    root = state_dir
    nested = os.path.join(state_dir, "artifacts")
    if os.path.isdir(nested):
        root = nested
    if not os.path.isdir(root):
        return (f"obs report: no such directory: {state_dir}", 2)
    warnings: List[str] = []
    aggregate = aggregate_report(
        iter_job_traces(root, warnings), tenant_filter=tenant
    )
    text = format_report(aggregate)
    if warnings:
        text += "\n" + "\n".join(
            f"warning: {message}" for message in warnings
        )
    return (text, 0 if aggregate["jobs"] else 1)
