"""Latency distributions with exact bounded-memory percentiles.

End-of-run aggregates (total B seconds, mean occupancy) hide exactly the
tail behaviour the paper's pipeline model is sensitive to: one slow task in
a chunk stalls every chunk-mate behind it, and the committer's in-order
discipline turns a p99 outlier into pipeline-wide commit lag.
:class:`LatencyHistogram` records per-event samples and reports
p50/p90/p95/p99 with the *linear interpolation between closest ranks*
definition (numpy's default), which is exact over the retained samples.

Memory is bounded: up to ``max_samples`` raw samples are kept verbatim
(percentiles are exact there — the common case for any real run); beyond
that the histogram degrades to deterministic reservoir sampling (seeded,
so two identical runs report identical numbers) while ``count``, ``total``,
``min``/``max`` stay exact forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default sample retention: 64 Ki floats ~ 512 KiB worst case per series.
DEFAULT_MAX_SAMPLES = 65536

#: Percentiles every summary reports, in order.
SUMMARY_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def percentile(samples: List[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation between
    closest ranks — exact, deterministic, no dependency."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass
class LatencyHistogram:
    """One event series' latency distribution (samples in seconds)."""

    max_samples: int = DEFAULT_MAX_SAMPLES
    samples: List[float] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    #: Deterministic reservoir RNG, created lazily on first overflow.
    _rng: Optional[random.Random] = field(default=None, repr=False)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
            return
        # Algorithm R reservoir: every sample keeps probability k/n, with a
        # fixed seed so identical runs summarize identically.
        if self._rng is None:
            self._rng = random.Random(0xC0FFEE)
        slot = self._rng.randrange(self.count)
        if slot < self.max_samples:
            self.samples[slot] = value

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def exact(self) -> bool:
        """True while every recorded sample is retained (no reservoir)."""
        return self.count == len(self.samples)

    def percentile(self, q: float) -> float:
        return percentile(self.samples, q)

    def summary(self) -> dict:
        """The JSON shape exported by :meth:`EngineMetrics.to_json`."""
        if not self.count:
            return {"count": 0}
        data = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
            "exact": self.exact,
        }
        # A histogram can carry a count with no retained samples (counters
        # restored from a checkpoint, or a merged summary): aggregates stay
        # exact, but percentiles are unknowable — omit them rather than
        # raising or reporting a degenerate p50=p99=0.
        if self.samples:
            for q in SUMMARY_PERCENTILES:
                data[f"p{q:g}"] = self.percentile(q)
        return data

    def format_line(self) -> str:
        """One CLI summary line: ``p50 1.2ms  p95 3.4ms  p99 5.6ms ...``."""
        if not self.count:
            return "no samples"
        if not self.samples:
            return (
                f"mean {format_seconds(self.mean)}  "
                f"max {format_seconds(self.max_value)}  "
                f"n={self.count}  (no retained samples)"
            )
        parts = [
            f"p{q:g} {format_seconds(self.percentile(q))}"
            for q in SUMMARY_PERCENTILES
        ]
        parts.append(f"max {format_seconds(self.max_value)}")
        parts.append(f"n={self.count}")
        return "  ".join(parts)


def format_seconds(value: float) -> str:
    """Human scale for latencies: ns/us/ms/s with 3 significant-ish digits."""
    if value < 0:
        return f"-{format_seconds(-value)}"
    if value < 1e-6:
        return f"{value * 1e9:.0f}ns"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.3f}s"


def summarize(histograms: Dict[str, LatencyHistogram]) -> Dict[str, dict]:
    """Summaries for a dict of histograms, skipping empty series."""
    return {
        name: hist.summary()
        for name, hist in sorted(histograms.items())
        if hist.count
    }
