"""Predicted vs measured: close the loop the metrics module promises.

The simulator (:mod:`repro.core.simulator`) predicts a schedule from
abstract per-phase task costs; the engine measures what real processes
did.  This module lines the two up:

- :func:`compare_phases` — per-phase (A/B/C) busy-time *shares*:
  the simulator's abstract work units normalized against the engine's
  measured ``stage_seconds``, with the relative error per phase.  Shares,
  not absolutes: work units and wall seconds have no common scale, but a
  correct cost model must put the same *fraction* of the total work in
  each phase.
- :func:`render_measured_timeline` — the measured analog of
  :func:`repro.core.gantt.render_gantt`: one row per traced process,
  bucketed over the run, phase letters for execution, ``#`` for queue/gate
  waits, ``!`` for aborted spans.
- :func:`format_report` — the side-by-side report the CLI prints for
  ``python -m repro exec NAME --compare``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.gantt import render_gantt
from repro.core.simulator import SimulationResult
from repro.core.tasks import Phase, TaskGraph
from repro.obs.events import EventKind, Span
from repro.obs.merge import MergedTrace

_PHASES = ("A", "B", "C")


@dataclass(frozen=True)
class PhaseComparison:
    """One phase's predicted-vs-measured busy-time share."""

    phase: str
    predicted_units: int
    predicted_share: float
    measured_seconds: float
    measured_share: float

    @property
    def relative_error(self) -> Optional[float]:
        """|measured - predicted| / predicted, on shares; ``None`` when the
        simulator predicts no work at all for the phase."""
        if self.predicted_share == 0.0:
            return None if self.measured_share == 0.0 else float("inf")
        return abs(self.measured_share - self.predicted_share) / self.predicted_share


def predicted_phase_units(graph: TaskGraph) -> Dict[str, int]:
    """Total abstract work units per phase in the simulator's task graph."""
    units = {phase: 0 for phase in _PHASES}
    for task in graph.tasks:
        units[task.phase.value] += task.cost
    return units


def compare_phases(graph: TaskGraph, stage_seconds: Dict[str, float]) -> List[PhaseComparison]:
    """Per-phase share comparison between a task graph and measured stages."""
    units = predicted_phase_units(graph)
    predicted_total = sum(units.values())
    measured_total = sum(stage_seconds.get(phase, 0.0) for phase in _PHASES)
    rows = []
    for phase in _PHASES:
        predicted = units[phase]
        measured = stage_seconds.get(phase, 0.0)
        rows.append(
            PhaseComparison(
                phase=phase,
                predicted_units=predicted,
                predicted_share=(
                    predicted / predicted_total if predicted_total else 0.0
                ),
                measured_seconds=measured,
                measured_share=(
                    measured / measured_total if measured_total else 0.0
                ),
            )
        )
    return rows


def format_phase_table(rows: List[PhaseComparison]) -> str:
    lines = [
        "phase  predicted(units)  share   measured(s)  share   rel.error",
    ]
    for row in rows:
        error = row.relative_error
        error_text = "n/a" if error is None else f"{error:7.1%}"
        lines.append(
            f"  {row.phase}    {row.predicted_units:>14}  {row.predicted_share:6.1%}"
            f"   {row.measured_seconds:>9.3f}  {row.measured_share:6.1%}   {error_text}"
        )
    return "\n".join(lines)


def render_measured_timeline(
    merged: MergedTrace, width: int = 100, max_rows: int = 16
) -> str:
    """The measured Gantt: one row per traced process, like the simulator's.

    Glyphs: the phase letter (``A``/``B``/``C``) where task execution
    occupied most of the bucket, ``r`` for serial re-execution, ``#`` for
    queue/gate blocking, ``!`` for aborted spans, ``.`` idle.
    """
    total_ns = merged.duration_ns()
    if total_ns <= 0 or not merged.spans:
        return "(empty measured timeline)"
    bucket_ns = max(1, -(-total_ns // width))
    columns = -(-total_ns // bucket_ns)

    glyph_for = {
        EventKind.TASK_A: "A",
        EventKind.TASK_B: "B",
        EventKind.TASK_C: "C",
        EventKind.SERIAL_REEXEC: "r",
        EventKind.QUEUE_PUT_WAIT: "#",
        EventKind.QUEUE_GET_WAIT: "#",
        EventKind.GATE_WAIT: "#",
    }
    #: Lower number paints over higher: tasks beat waits beat idle.
    priority = {"!": 0, "A": 1, "B": 1, "C": 1, "r": 1, "#": 2, ".": 9}

    def order(role: str) -> tuple:
        head = {"producer": 0, "committer": 2}.get(role.split("-")[0], 1)
        return (head, role)

    roles = sorted({span.role for span in merged.spans}, key=order)
    if len(roles) > max_rows:
        roles = roles[: max_rows - 1] + [roles[-1]]
    rows = {role: ["."] * columns for role in roles}
    for span in merged.spans:
        row = rows.get(span.role)
        if row is None:
            continue
        glyph = "!" if span.aborted else glyph_for.get(span.kind)
        if glyph is None:
            continue
        first = span.start_ns // bucket_ns
        last = min(-(-span.end_ns // bucket_ns), columns)
        for column in range(first, max(last, first + 1)):
            if column < columns and priority[glyph] < priority[row[column]]:
                row[column] = glyph

    lines = [
        f"t = 0 .. {total_ns / 1e6:.1f}ms measured "
        f"({bucket_ns / 1e6:.2f}ms per column)"
    ]
    width_role = max(len(role) for role in roles)
    for role in roles:
        lines.append(f"{role:>{width_role}} |{''.join(rows[role])}|")
    return "\n".join(lines)


def format_report(
    name: str,
    graph: TaskGraph,
    sim_result: SimulationResult,
    stage_seconds: Dict[str, float],
    measured_speedup: Optional[float] = None,
    merged: Optional[MergedTrace] = None,
    width: int = 100,
) -> str:
    """The full side-by-side report for one workload."""
    lines = [f"=== predicted vs measured: {name} ==="]
    lines.append("")
    lines.append(f"-- simulator schedule ({sim_result.machine.cores} cores) --")
    lines.append(render_gantt(graph, sim_result, width=width))
    lines.append("")
    if merged is not None:
        lines.append("-- measured timeline --")
        lines.append(render_measured_timeline(merged, width=width))
        lines.append("")
    lines.append("-- per-phase busy-time shares --")
    rows = compare_phases(graph, stage_seconds)
    lines.append(format_phase_table(rows))
    errors = [row.relative_error for row in rows if row.relative_error is not None]
    finite = [error for error in errors if error != float("inf")]
    if finite:
        lines.append(
            f"mean per-phase relative error: {sum(finite) / len(finite):.1%}"
        )
    if measured_speedup is not None and sim_result.makespan:
        predicted = sim_result.speedup
        lines.append(
            f"speedup: predicted {predicted:.2f}x vs measured "
            f"{measured_speedup:.2f}x "
            f"(ratio {measured_speedup / predicted:.2f})"
        )
    return "\n".join(lines)
