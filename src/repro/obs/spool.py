"""Per-process binary spool files: the hot-path side of tracing.

Each traced process appends fixed-size records to its own spool file — no
pipe traffic, no cross-process locks, nothing on the execution engine's
message channels.  The file is a **ring**: slot ``seq % capacity`` holds
the record with sequence number ``seq``, so once ``capacity`` records have
been written the writer wraps and overwrites the oldest.  Sequence numbers
are embedded in the records themselves, which makes the format crash-safe
by construction:

- the merger reconstructs order by sorting on ``seq`` — no footer, no
  index, nothing that must be written at close;
- ``dropped_events`` is *derived*, not trusted: ``max_seq + 1`` records
  were written, ``len(valid slots)`` survive, the difference was dropped
  by the ring — bounded tracing with an explicit count, never silent;
- a process that dies mid-write leaves at most one torn slot, which fails
  validation (bad magic / unknown kind / absurd timestamps) and is counted
  as corrupt instead of poisoning the timeline.

Writes are buffered (~4 KiB) to keep the per-record cost to a
``struct.pack`` and a ``bytearray`` append; :meth:`SpoolWriter.flush` is
called by the engine at the same points it already flushes its channels
before a deliberate hard exit, so injected crashes lose at most one
buffer's worth of records — and the *claims* those records describe are
already on the done channel, so nothing the recovery path needs is lost.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs.clock import ClockAnchor, now_ns
from repro.obs.events import EventKind, RawRecord, SPAN_KINDS, TraceConfig

#: Spool file layout version; bump on any struct change.
_MAGIC = b"RSPOOL01"
#: Header: magic, pid, role (utf-8, zero padded), wall anchor, perf anchor,
#: ring capacity in records.
_HEADER = struct.Struct("<8sI32sQQI")
#: Record: slot magic, kind, detail, seq, arg, arg2, t0, t1.
_RECORD = struct.Struct("<HBBQqqQQ")
_RECORD_MAGIC = 0xE5A7

HEADER_SIZE = _HEADER.size
RECORD_SIZE = _RECORD.size

#: Buffered bytes before an implicit flush (~93 records).
_FLUSH_BYTES = 4096

_VALID_KINDS = frozenset(int(kind) for kind in EventKind)


class SpoolError(RuntimeError):
    """A spool file could not be parsed at all (bad magic / truncated
    header).  Per-record damage is *not* an error — it is recovered."""


class SpoolWriter:
    """The per-process trace sink.  One instance per process per run."""

    def __init__(self, config: TraceConfig, role: str) -> None:
        self.role = role
        self.capacity = config.max_events
        self.path = os.path.join(config.spool_dir, f"{role}.spool")
        self.anchor = ClockAnchor.sample()
        self._seq = 0
        self._buffer = bytearray()
        #: File offset the buffer starts at (records are contiguous
        #: between wraps, so one seek per wrap suffices).
        self._buffer_offset = HEADER_SIZE
        self._file = open(self.path, "wb", buffering=0)
        self._file.write(
            _HEADER.pack(
                _MAGIC,
                os.getpid() & 0xFFFFFFFF,
                role.encode("utf-8", "replace")[:32],
                self.anchor.wall_ns,
                self.anchor.perf_ns,
                self.capacity,
            )
        )
        self._closed = False
        #: Bound once: record() runs per pipeline item, and the attribute
        #: lookups (module global + method descriptor) cost real time there.
        self._pack = _RECORD.pack

    # -- the hot path -----------------------------------------------------------

    def record(
        self,
        kind: int,
        t0_ns: int,
        t1_ns: int,
        arg: int = 0,
        arg2: int = 0,
        detail: int = 0,
    ) -> None:
        if self._closed:
            return
        seq = self._seq
        self._seq = seq + 1
        if seq and seq % self.capacity == 0:
            # Ring wrap: everything buffered belongs before the wrap point.
            self._flush_buffer()
            self._buffer_offset = HEADER_SIZE
        buffer = self._buffer
        buffer += self._pack(
            _RECORD_MAGIC, kind, detail & 0xFF, seq, arg, arg2, t0_ns, t1_ns
        )
        if len(buffer) >= _FLUSH_BYTES:
            self._flush_buffer()

    def instant(self, kind: int, arg: int = 0, arg2: int = 0, detail: int = 0) -> None:
        ts = now_ns()
        self.record(kind, ts, ts, arg, arg2, detail)

    def span(
        self,
        kind: int,
        t0_ns: int,
        t1_ns: int,
        arg: int = 0,
        arg2: int = 0,
        detail: int = 0,
    ) -> None:
        self.record(kind, t0_ns, t1_ns, arg, arg2, detail)

    @property
    def events_written(self) -> int:
        return self._seq

    @property
    def dropped_events(self) -> int:
        """Records overwritten by the ring so far."""
        return max(0, self._seq - self.capacity)

    # -- flushing / teardown ----------------------------------------------------

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        self._file.seek(self._buffer_offset)
        self._file.write(self._buffer)
        self._buffer_offset += len(self._buffer)
        self._buffer.clear()

    def flush(self) -> None:
        """Push buffered records to the OS — called before deliberate hard
        exits, mirroring the channel ``flush_and_close`` discipline."""
        if not self._closed:
            self._flush_buffer()

    def close(self) -> None:
        if self._closed:
            return
        self._flush_buffer()
        self._file.close()
        self._closed = True


def open_tracer(
    config: Optional[TraceConfig], role: str
) -> Optional[SpoolWriter]:
    """The call-site constructor every process uses.

    Returns ``None`` when tracing is off *or the spool cannot be opened* —
    observability must never take down the run it observes, so an
    unwritable spool directory silently degrades to no tracing for that
    process (the merger reports the missing spool).
    """
    if config is None or not config.enabled:
        return None
    try:
        return SpoolWriter(config, role)
    except OSError:
        return None


@dataclass
class SpoolData:
    """One spool file, parsed and recovered."""

    path: str
    role: str
    pid: int
    anchor: ClockAnchor
    capacity: int
    #: Valid records, sorted by sequence number.
    records: List[RawRecord] = field(default_factory=list)
    #: Records the ring overwrote (derived from the surviving seq range).
    dropped_events: int = 0
    #: Slots that failed validation (torn writes, garbage).
    corrupt_slots: int = 0
    #: True when the file ends in a partial record — a crash signature.
    truncated: bool = False

    @property
    def events_written(self) -> int:
        return (self.records[-1].seq + 1) if self.records else 0

    def last_timestamp_ns(self) -> Optional[int]:
        """The latest perf-clock timestamp in this spool (for closing
        aborted spans)."""
        latest = None
        for record in self.records:
            for ts in (record.t0_ns, record.t1_ns):
                if latest is None or ts > latest:
                    latest = ts
        return latest


def read_spool(path: str) -> SpoolData:
    """Parse one spool, recovering everything recoverable.

    Never raises for damage *past* the header: torn slots are skipped and
    counted, a truncated tail is flagged, out-of-order writes (impossible
    today, cheap to tolerate) are repaired by the seq sort.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < HEADER_SIZE:
        raise SpoolError(f"{path}: truncated header ({len(blob)} bytes)")
    magic, pid, role_bytes, wall_ns, perf_ns, capacity = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise SpoolError(f"{path}: bad magic {magic!r}")
    data = SpoolData(
        path=path,
        role=role_bytes.rstrip(b"\x00").decode("utf-8", "replace"),
        pid=pid,
        anchor=ClockAnchor(wall_ns=wall_ns, perf_ns=perf_ns),
        capacity=capacity,
    )
    body = blob[HEADER_SIZE:]
    whole, remainder = divmod(len(body), RECORD_SIZE)
    data.truncated = remainder != 0
    by_seq = {}
    for index in range(whole):
        fields = _RECORD.unpack_from(body, index * RECORD_SIZE)
        slot_magic, kind, detail, seq, arg, arg2, t0, t1 = fields
        if (
            slot_magic != _RECORD_MAGIC
            or kind not in _VALID_KINDS
            or t1 < t0
            or (kind in SPAN_KINDS and t1 - t0 > 24 * 3600 * 10**9)
        ):
            data.corrupt_slots += 1
            continue
        # Later writes win a slot (can only collide via torn ring wraps).
        current = by_seq.get(seq)
        if current is None:
            by_seq[seq] = RawRecord(seq, kind, detail, arg, arg2, t0, t1)
    data.records = [by_seq[seq] for seq in sorted(by_seq)]
    if data.records:
        # The ring keeps the newest ``capacity`` records; anything the
        # surviving seq range proves was written before that was dropped.
        data.dropped_events = max(0, data.records[-1].seq + 1 - capacity)
    return data
