"""The live monitor: sampling thread, stall watchdog, one-line TUI.

The registry (:mod:`repro.obs.registry`) makes the run's state readable at
any instant; this module is the reader.  A daemon thread in the engine's
process samples the registry every ``LiveConfig.interval`` seconds and

- keeps a short rate window so items/sec is a *current* rate, not a
  lifetime average;
- feeds the :class:`Watchdog`, which turns raw samples into liveness
  verdicts — commit stalls, work-channel saturation, misspeculation
  storms — and escalates exactly the way the resilience layer does:
  **log** first, then **health=degraded** while the condition persists,
  then (optionally) **abort** the run through the engine's degradation
  path, post-mortem trace flush included;
- renders the ``--watch`` status line (items/sec, commit lag p95, channel
  occupancy, throttle window, misspeculation and chaos rates, health).

Watchdog thresholds default to fractions of the engine's
:class:`~repro.exec.faults.RobustnessPolicy` (``WatchdogConfig.from_policy``)
so the live plane warns *before* the engine's own stall/timeout machinery
gives up: the policy declares a run dead after ``stall_timeout``; the
watchdog flags it unhealthy after a quarter of that.
"""

from __future__ import annotations

import logging
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

from repro.obs.hist import format_seconds
from repro.obs.registry import MetricsRegistry, RegistrySnapshot

logger = logging.getLogger(__name__)


class HealthState(str, Enum):
    """The liveness verdict served at ``/health``."""

    OK = "ok"
    DEGRADED = "degraded"
    ABORTED = "aborted"


@dataclass(frozen=True)
class WatchdogConfig:
    """When the watchdog complains, and how far it escalates.

    ``stall_seconds``        — commit frontier frozen this long => stall;
    ``saturation_fraction``  — work-channel occupancy at/above this share
    of capacity counts toward saturation;
    ``saturation_samples``   — consecutive saturated samples => flagged;
    ``storm_rate``           — misspeculation rate over a sampling window
    at/above this => storm (the paper's serialization pathology, live);
    ``storm_min_commits``    — commits a window needs before its rate is
    trusted (tiny windows are noise);
    ``abort_stall_seconds``  — optional hard escalation: a stall this long
    aborts the run through the engine's degradation path (``None`` = never).
    """

    stall_seconds: float = 5.0
    saturation_fraction: float = 0.95
    saturation_samples: int = 10
    storm_rate: float = 0.5
    storm_min_commits: int = 8
    abort_stall_seconds: Optional[float] = None

    def __post_init__(self):
        if self.stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")
        if not 0.0 < self.saturation_fraction <= 1.0:
            raise ValueError("saturation_fraction must be in (0, 1]")
        if self.saturation_samples < 1:
            raise ValueError("saturation_samples must be >= 1")
        if not 0.0 < self.storm_rate <= 1.0:
            raise ValueError("storm_rate must be in (0, 1]")
        if (
            self.abort_stall_seconds is not None
            and self.abort_stall_seconds < self.stall_seconds
        ):
            raise ValueError(
                "abort_stall_seconds cannot be below stall_seconds"
            )

    @classmethod
    def from_policy(cls, policy, **overrides) -> "WatchdogConfig":
        """Derive thresholds from a :class:`RobustnessPolicy`: warn at half
        the hung-task timeout, never later than a quarter of the stall
        deadline — the watchdog must speak before the engine acts."""
        stall = max(
            0.25,
            min(policy.task_timeout / 2, policy.stall_timeout / 4),
        )
        kwargs = {"stall_seconds": stall}
        kwargs.update(overrides)
        return cls(**kwargs)


@dataclass
class WatchdogEvent:
    """One escalation the watchdog performed."""

    kind: str       # "stall" | "saturation" | "storm" | "abort" | "recovered"
    at_s: float     # monotonic timestamp
    detail: str

    def to_json(self) -> dict:
        return {"kind": self.kind, "detail": self.detail}


class Watchdog:
    """Turns registry samples into liveness verdicts.

    Single-threaded by contract: only the monitor thread calls
    :meth:`observe`; readers (the HTTP server, the CLI) see plain
    attributes, which CPython publishes atomically.
    """

    def __init__(
        self,
        config: WatchdogConfig,
        capacity: int,
        iterations: int,
        on_abort: Optional[Callable[[], None]] = None,
    ) -> None:
        self.config = config
        self.capacity = max(1, capacity)
        self.iterations = iterations
        self.on_abort = on_abort
        self.health = HealthState.OK
        self.events: List[WatchdogEvent] = []
        self.stall_events = 0
        self.saturation_events = 0
        self.storm_events = 0
        self.aborted = False
        self.degraded_ever = False
        self._last_committed = 0
        self._last_commit_change_s: Optional[float] = None
        self._saturated_run = 0
        self._stalled = False
        self._storming = False
        self._saturation_flagged = False
        self._prev: Optional[RegistrySnapshot] = None

    # -- the one entry point -----------------------------------------------------

    def observe(self, snapshot: RegistrySnapshot) -> None:
        now = snapshot.monotonic_s
        committed = snapshot.counters.get("committed", 0)
        if self._last_commit_change_s is None:
            self._last_commit_change_s = now
        if committed != self._last_committed:
            self._last_committed = committed
            self._last_commit_change_s = now
            if self._stalled:
                self._stalled = False
                self._event("recovered", now, "commits resumed")
        self._check_stall(now, committed)
        self._check_saturation(snapshot, now)
        self._check_storm(snapshot, now)
        self._prev = snapshot
        finished = self.iterations and committed >= self.iterations
        unhealthy = self._stalled or self._storming or self._saturation_flagged
        if self.aborted:
            self.health = HealthState.ABORTED
        elif unhealthy and not finished:
            self.health = HealthState.DEGRADED
        else:
            self.health = HealthState.OK

    # -- current verdicts (read from any thread; plain attribute reads) ----------

    @property
    def stalled(self) -> bool:
        """True while the commit frontier is frozen past the threshold —
        the load-shedding input ``repro.service`` admission control reads."""
        return self._stalled

    @property
    def storming(self) -> bool:
        """True while a misspeculation storm is in progress."""
        return self._storming

    @property
    def saturated(self) -> bool:
        """True while work-channel saturation is flagged."""
        return self._saturation_flagged

    # -- detectors ---------------------------------------------------------------

    def _check_stall(self, now: float, committed: int) -> None:
        if self.iterations and committed >= self.iterations:
            return  # run complete; a quiet frontier is success, not a stall
        last_change = self._last_commit_change_s
        if last_change is None:  # not `or`: monotonic 0.0 is a real time
            last_change = now
        stalled_for = now - last_change
        if stalled_for <= self.config.stall_seconds:
            return
        if not self._stalled:
            self._stalled = True
            self.stall_events += 1
            self._event(
                "stall", now,
                f"commit frontier frozen at {committed} for "
                f"{stalled_for:.1f}s (threshold "
                f"{self.config.stall_seconds:.1f}s)",
            )
        if (
            self.config.abort_stall_seconds is not None
            and stalled_for > self.config.abort_stall_seconds
            and not self.aborted
        ):
            self.aborted = True
            self._event(
                "abort", now,
                f"stall exceeded {self.config.abort_stall_seconds:.1f}s; "
                f"aborting through the degradation path",
            )
            if self.on_abort is not None:
                self.on_abort()

    def _check_saturation(self, snapshot: RegistrySnapshot, now: float) -> None:
        occupancy = snapshot.gauges.get("work_occupancy", 0)
        threshold = self.config.saturation_fraction * self.capacity
        if occupancy >= threshold:
            self._saturated_run += 1
        else:
            self._saturated_run = 0
            self._saturation_flagged = False
        if (
            self._saturated_run >= self.config.saturation_samples
            and not self._saturation_flagged
        ):
            self._saturation_flagged = True
            self.saturation_events += 1
            self._event(
                "saturation", now,
                f"work channel at {occupancy}/{self.capacity} for "
                f"{self._saturated_run} consecutive samples",
            )

    def _check_storm(self, snapshot: RegistrySnapshot, now: float) -> None:
        if self._prev is None:
            return
        d_committed = snapshot.counters.get("committed", 0) - (
            self._prev.counters.get("committed", 0)
        )
        if d_committed < self.config.storm_min_commits:
            if d_committed > 0 and self._storming:
                # Enough commits to say something, not enough for a rate:
                # keep the current verdict.
                pass
            return
        d_bad = (
            snapshot.counters.get("conflicts", 0)
            + snapshot.counters.get("serial_reexec", 0)
            - self._prev.counters.get("conflicts", 0)
            - self._prev.counters.get("serial_reexec", 0)
        )
        rate = d_bad / d_committed
        if rate >= self.config.storm_rate:
            if not self._storming:
                self._storming = True
                self.storm_events += 1
                self._event(
                    "storm", now,
                    f"misspeculation rate {rate:.0%} over the last "
                    f"{d_committed} commits (threshold "
                    f"{self.config.storm_rate:.0%})",
                )
        elif self._storming:
            self._storming = False
            self._event("recovered", now, "misspeculation storm passed")

    def _event(self, kind: str, now: float, detail: str) -> None:
        self.events.append(WatchdogEvent(kind=kind, at_s=now, detail=detail))
        if kind in ("stall", "saturation", "storm", "abort"):
            self.degraded_ever = True
            logger.warning("watchdog %s: %s", kind, detail)
        else:
            logger.info("watchdog %s: %s", kind, detail)

    def summary(self) -> dict:
        """The JSON shape embedded in ``/snapshot``, ``/health``, and every
        history record."""
        return {
            "health": self.health.value,
            "stalls": self.stall_events,
            "saturations": self.saturation_events,
            "storms": self.storm_events,
            "aborted": self.aborted,
            "degraded_ever": self.degraded_ever,
            "events": [event.to_json() for event in self.events[-32:]],
        }


@dataclass(frozen=True)
class LiveConfig:
    """How one engine run is observed live.

    ``interval``  — monitor sampling period (seconds);
    ``serve``     — TCP port for ``/metrics`` + ``/snapshot`` + ``/health``
    (``0`` = ephemeral, ``None`` = no server);
    ``watch``     — render the one-line status TUI to stderr each sample;
    ``watchdog``  — explicit thresholds (``None`` = derived from the
    engine's robustness policy via :meth:`WatchdogConfig.from_policy`);
    ``abort_on_stall`` — escalate a long stall to an engine abort (wired
    into the watchdog's ``abort_stall_seconds`` when set).
    """

    interval: float = 0.2
    serve: Optional[int] = None
    watch: bool = False
    watchdog: Optional[WatchdogConfig] = None
    abort_on_stall: bool = False

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError("interval must be positive")


#: Samples retained for the rate window (items/sec over the recent past).
_RATE_WINDOW = 16


class LiveMonitor:
    """The sampling thread over one engine run's registry.

    Owns the watchdog and (via :mod:`repro.obs.serve`) feeds the HTTP
    endpoints; the engine starts it right after spawning the pipeline and
    stops it after teardown, so its lifetime brackets everything worth
    observing.  ``channels`` are sampled by the monitor itself — reading a
    channel's shared produce/consume counters is exactly as cheap and
    lock-free as reading the registry.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        config: LiveConfig,
        *,
        capacity: int,
        iterations: int,
        policy=None,
        channels=(),
        on_abort: Optional[Callable[[], None]] = None,
        watch_stream=None,
    ) -> None:
        self.registry = registry
        self.config = config
        self.capacity = capacity
        self.iterations = iterations
        self.channels = tuple(channels)
        watchdog_config = config.watchdog
        if watchdog_config is None:
            if policy is not None:
                watchdog_config = WatchdogConfig.from_policy(policy)
            else:
                watchdog_config = WatchdogConfig()
        if config.abort_on_stall and watchdog_config.abort_stall_seconds is None:
            stall_ceiling = (
                policy.stall_timeout / 2 if policy is not None else None
            )
            abort_after = max(
                watchdog_config.stall_seconds * 2,
                stall_ceiling or watchdog_config.stall_seconds * 2,
            )
            watchdog_config = WatchdogConfig(
                stall_seconds=watchdog_config.stall_seconds,
                saturation_fraction=watchdog_config.saturation_fraction,
                saturation_samples=watchdog_config.saturation_samples,
                storm_rate=watchdog_config.storm_rate,
                storm_min_commits=watchdog_config.storm_min_commits,
                abort_stall_seconds=abort_after,
            )
        self.watchdog = Watchdog(
            watchdog_config, capacity, iterations, on_abort=on_abort
        )
        self._watch_stream = watch_stream or sys.stderr
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._rate_window: deque = deque(maxlen=_RATE_WINDOW)
        self.samples = 0
        self.last_snapshot: Optional[RegistrySnapshot] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("monitor already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-live-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling; takes one final sample so the end state (all
        commits in, final gauges) is observable after the run.
        Idempotent — the engine's failure paths may race its happy path."""
        self._stop_event.set()
        if self._thread is None:
            return
        self._thread.join(timeout=5.0)
        self._thread = None
        self.sample()
        if self.config.watch:
            self._watch_stream.write("\n")
            self._watch_stream.flush()

    def _run(self) -> None:
        while not self._stop_event.wait(self.config.interval):
            try:
                snapshot = self.sample()
                if self.config.watch:
                    self._watch_stream.write(
                        "\r" + self.status_line(snapshot)
                    )
                    self._watch_stream.flush()
            except Exception:  # pragma: no cover - monitor must never kill a run
                logger.exception("live monitor sample failed")

    # -- sampling ----------------------------------------------------------------

    def peek(self) -> RegistrySnapshot:
        """A fresh registry read that does *not* advance the watchdog or
        the rate window — safe from any thread (the HTTP handlers use
        this; the watchdog is single-threaded by contract and only the
        monitor thread may call :meth:`sample`)."""
        return self.registry.snapshot()

    def sample(self) -> RegistrySnapshot:
        for channel in self.channels:
            occupancy = max(0, channel.produces - channel.consumes)
            gauge = f"{channel.name}_occupancy"
            try:
                self.registry.set_gauge(gauge, occupancy)
            except KeyError:  # channel without a dedicated gauge
                pass
        snapshot = self.registry.snapshot()
        self._rate_window.append(
            (snapshot.monotonic_s, snapshot.counters.get("committed", 0))
        )
        self.watchdog.observe(snapshot)
        self.samples += 1
        self.last_snapshot = snapshot
        return snapshot

    @property
    def items_per_sec(self) -> float:
        """Commit rate over the recent rate window (not lifetime mean)."""
        if len(self._rate_window) < 2:
            return 0.0
        t0, c0 = self._rate_window[0]
        t1, c1 = self._rate_window[-1]
        if t1 <= t0:
            return 0.0
        return (c1 - c0) / (t1 - t0)

    @property
    def health(self) -> HealthState:
        return self.watchdog.health

    def status_json(
        self, snapshot: Optional[RegistrySnapshot] = None
    ) -> dict:
        """The ``/snapshot`` body: registry state + derived liveness."""
        snapshot = snapshot or self.last_snapshot or self.peek()
        return {
            "snapshot": snapshot.to_json(),
            "items_per_sec": round(self.items_per_sec, 1),
            "progress": {
                "committed": snapshot.counters.get("committed", 0),
                "iterations": self.iterations,
            },
            "watchdog": self.watchdog.summary(),
        }

    def status_line(self, snapshot: Optional[RegistrySnapshot] = None) -> str:
        """One terminal line: everything a stalled-run triage needs."""
        snapshot = snapshot or self.last_snapshot
        if snapshot is None:
            return "live: warming up"
        counters = snapshot.counters
        gauges = snapshot.gauges
        lag = snapshot.histograms.get("commit_lag_seconds")
        lag_p95 = lag.percentile(95) if lag is not None else None
        lag_text = (
            format_seconds(lag_p95) if lag_p95 is not None else "-"
        )
        chaos = counters.get("chaos_injections", 0)
        return (
            f"live: {counters.get('committed', 0)}/{self.iterations} "
            f"committed  {self.items_per_sec:7.1f} items/s  "
            f"lag p95 {lag_text}  "
            f"occ {gauges.get('work_occupancy', 0)}/{self.capacity}  "
            f"win {gauges.get('window', 0)}  "
            f"misspec {snapshot.misspeculation_rate:.1%}  "
            f"chaos {chaos}  "
            f"health {self.health.value}"
        )
