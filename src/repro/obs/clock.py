"""Cross-process clock merging: the per-process epoch handshake.

Spool records carry ``time.perf_counter_ns()`` timestamps — the highest
resolution monotonic clock Python exposes — but its epoch is *per process*
(on Linux it is typically boot time, on other platforms it can be process
start).  Merging spools from the producer, N workers, and the committer
therefore needs a handshake: at spool-open time each process samples the
wall clock (``time.time_ns()``) and the perf counter *back to back* and
stores the pair in its spool header.  The merger maps every record onto the
shared wall-clock axis::

    wall_ns = record_perf_ns - anchor.perf_ns + anchor.wall_ns

All processes run on one machine, so the wall clock is common; the sampling
skew between the two calls (tens of nanoseconds) and any NTP slew during
the run bound the cross-process alignment error — far below the
microsecond granularity of the Chrome trace format the merger emits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class ClockAnchor:
    """One process's (wall clock, perf counter) correspondence point."""

    wall_ns: int
    perf_ns: int

    @classmethod
    def sample(cls) -> "ClockAnchor":
        """Sample both clocks back to back (the handshake itself)."""
        wall = time.time_ns()
        perf = time.perf_counter_ns()
        return cls(wall_ns=wall, perf_ns=perf)

    def to_wall(self, perf_ns: int) -> int:
        """Map a this-process perf-counter reading onto the wall clock."""
        return perf_ns - self.perf_ns + self.wall_ns


#: The timestamp source every tracer uses.  A direct binding (not a
#: wrapper function): this sits on the per-record hot path, and one Python
#: call frame per timestamp is measurable at engine line rate.
now_ns = time.perf_counter_ns
