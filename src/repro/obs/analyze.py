"""Critical-path analysis & what-if causal profiling over merged traces.

The paper's whole argument is quantitative: pipeline speedup is bounded by
the slowest stage plus the cost of misspeculation (§3.1).  PR 4 made runs
*recordable* (per-process span spools merged onto one wall-clock axis) and
PR 9 stitched the job plane on top — but nothing *interpreted* the result.
This module closes that gap:

- :func:`extract_chains` reconstructs each item's causal chain from the
  merged span stream: produce -> queue wait -> claim -> exec -> reorder
  wait -> commit (plus throttle gates and serial re-execution);
- :func:`compute_critical_path` walks backward from the final commit,
  always following the *binding* predecessor (the latest-finishing
  dependency), producing a gap-free segment cover of the run's wall clock;
- blame is attributed per segment across five categories — ``compute``
  (split per stage, so "stage-B compute" can be named outright),
  ``queue_wait`` (backpressure/starvation), ``serialization`` (transport
  and frame cost), ``commit_lag`` (the in-order commit discipline), and
  ``misspeculation`` (re-execution, conflicts, throttle gates);
- :func:`replay` projects *what-if virtual speedups* ("+1 B replica",
  "batch N -> 2N", "pipe -> shm", "no misspeculation") by re-running the
  measured per-item costs through a discrete-event model of the
  producer/workers/in-order-committer pipeline with the edited parameter.
  Projections are replay-relative (edited replay vs baseline replay), so
  model bias cancels; every projection is cross-checked against the §3.1
  analytic bound ``max(A_total, B_total/W, C_total)`` — the same
  slowest-stage model :mod:`repro.obs.compare` lines up against the
  simulator (:func:`crosscheck_with_graph` reuses ``compare_phases``
  directly when a task graph is at hand);
- :class:`BottleneckReport` is the machine-readable verdict: top blame
  category, blame fractions, and ranked what-if recommendations — the
  block ``EngineMetrics.to_json()`` embeds, ``history.jsonl`` records,
  ``GET /jobs/<id>/bottleneck`` serves, and the future autoscaler
  consumes.

Everything degrades gracefully: an empty trace, a service-only trace, or
a metrics JSON without any trace at all (:func:`estimate_bottleneck`, the
coarse aggregate-only estimator the engine attaches to every run) all
produce a valid — if less precise — report, never an exception.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import CHANNEL_IDS, EventKind, Instant, Span
from repro.obs.merge import MergedTrace, _build_histograms

#: Bumped on any change to the ``bottleneck`` block's shape.
BOTTLENECK_SCHEMA = 1

#: The five blame categories of the coarse rollup.
CATEGORIES = (
    "compute", "queue_wait", "serialization", "commit_lag", "misspeculation",
)

#: Detailed blame keys (compute split per stage; ``other`` = startup and
#: scheduling slack the five categories cannot claim).
BLAME_KEYS = (
    "compute:A", "compute:B", "compute:C",
    "queue_wait", "serialization", "commit_lag", "misspeculation", "other",
)

#: Measured shm-vs-batched-pipe wire-speed gate is >=5x (PR 8): the
#: ``pipe -> shm`` what-if scales serialization/transport cost by 1/5.
SHM_SERIALIZATION_SCALE = 0.2

#: Span-end matching slack (ns) when pairing reorder-buffer events.
_EPS_NS = 1_000


# -- per-item causal chains ----------------------------------------------------------


@dataclass
class ItemChain:
    """One iteration's reconstructed causal chain."""

    iteration: int
    produce: Optional[Span] = None      # TASK_A
    work: Optional[Span] = None         # the committed TASK_B attempt
    commit_span: Optional[Span] = None  # TASK_C
    reexec: Optional[Span] = None       # SERIAL_REEXEC
    gate: Optional[Span] = None         # GATE_WAIT
    claim_ns: Optional[int] = None
    commit_ns: Optional[int] = None
    #: Extra (non-committed) TASK_B attempts — wasted speculation.
    wasted_work: List[Span] = field(default_factory=list)


def extract_chains(merged: MergedTrace) -> Dict[int, ItemChain]:
    """Rebuild per-iteration chains from the merged span/instant stream."""
    chains: Dict[int, ItemChain] = {}

    def chain(iteration: int) -> ItemChain:
        found = chains.get(iteration)
        if found is None:
            found = chains[iteration] = ItemChain(iteration)
        return found

    work_attempts: Dict[int, List[Span]] = {}
    for span in merged.spans:
        if span.kind == EventKind.TASK_A:
            ch = chain(span.arg)
            if ch.produce is None or span.start_ns < ch.produce.start_ns:
                ch.produce = span
        elif span.kind == EventKind.TASK_B:
            if not span.aborted:
                work_attempts.setdefault(span.arg, []).append(span)
            else:
                chain(span.arg).wasted_work.append(span)
        elif span.kind == EventKind.TASK_C:
            ch = chain(span.arg)
            if ch.commit_span is None or span.end_ns > ch.commit_span.end_ns:
                ch.commit_span = span
        elif span.kind == EventKind.SERIAL_REEXEC:
            chain(span.arg).reexec = span
        elif span.kind == EventKind.GATE_WAIT:
            chain(span.arg).gate = span
    for instant in merged.instants:
        if instant.kind == EventKind.CLAIM:
            ch = chain(instant.arg)
            if ch.claim_ns is None:
                ch.claim_ns = instant.ts_ns
        elif instant.kind == EventKind.COMMIT:
            ch = chain(instant.arg)
            if ch.commit_ns is None:
                ch.commit_ns = instant.ts_ns
    # The committed attempt is the last one finishing at or before the
    # claim (a re-speculated item leaves earlier, wasted attempts behind).
    for iteration, attempts in work_attempts.items():
        attempts.sort(key=lambda s: s.end_ns)
        ch = chain(iteration)
        committed = None
        if ch.claim_ns is not None:
            for span in attempts:
                if span.end_ns <= ch.claim_ns + _EPS_NS:
                    committed = span
        if committed is None:
            committed = attempts[-1]
        ch.work = committed
        ch.wasted_work.extend(s for s in attempts if s is not committed)
    return chains


# -- critical path -------------------------------------------------------------------


@dataclass(frozen=True)
class PathSegment:
    """One attributed interval of the critical path."""

    blame: str
    role: str
    iteration: int
    start_ns: int
    end_ns: int

    @property
    def seconds(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9


def _wait_blame(span: Span) -> str:
    if span.kind == EventKind.GATE_WAIT:
        return "misspeculation"
    return "queue_wait"


def _waits_by_role(merged: MergedTrace) -> Dict[str, List[Span]]:
    waits: Dict[str, List[Span]] = {}
    for span in merged.spans:
        if span.kind in (
            EventKind.QUEUE_PUT_WAIT,
            EventKind.QUEUE_GET_WAIT,
            EventKind.GATE_WAIT,
        ):
            waits.setdefault(span.role, []).append(span)
    for spans in waits.values():
        spans.sort(key=lambda s: s.end_ns)
    return waits


def compute_critical_path(
    merged: MergedTrace, chains: Optional[Dict[int, ItemChain]] = None
) -> List[PathSegment]:
    """The run's critical path as a gap-free backward walk from the last
    commit, each interval attributed to a blame key.

    At every step the walk follows the *binding* predecessor — the
    dependency that actually finished last: the previous in-order commit,
    the claimed result's worker chain, the same worker's previous item, or
    the producer's serial chain.  Idle gaps are classified through the
    wait spans the blocked role recorded over that interval (queue put/get
    waits, throttle gates), with the structural fallback of the jump kind.
    """
    if chains is None:
        chains = extract_chains(merged)
    order = sorted(
        (it for it, ch in chains.items() if ch.commit_ns is not None),
        key=lambda it: chains[it].commit_ns,
    )
    if not order:
        return []
    waits = _waits_by_role(merged)
    segments: List[PathSegment] = []

    def emit(blame: str, role: str, iteration: int, start: int, end: int) -> None:
        start = max(0, start)
        if end > start:
            segments.append(PathSegment(blame, role, iteration, start, end))

    def emit_gap(
        role: str, iteration: int, g0: int, g1: int, fallback: str
    ) -> None:
        """Cover [g0, g1) with the role's recorded waits; the remainder
        takes the structural fallback blame."""
        g0 = max(0, g0)
        if g1 <= g0:
            return
        cursor_hi = g1
        for wait in reversed(waits.get(role, ())):
            if wait.end_ns <= g0:
                break
            lo = max(g0, wait.start_ns)
            hi = min(cursor_hi, wait.end_ns)
            if hi <= lo:
                continue
            if hi < cursor_hi:
                emit(fallback, role, iteration, hi, cursor_hi)
            emit(_wait_blame(wait), role, iteration, lo, hi)
            cursor_hi = lo
            if cursor_hi <= g0:
                break
        if cursor_hi > g0:
            emit(fallback, role, iteration, g0, cursor_hi)

    # Non-aborted B spans per role, sorted by end: the "previous item on
    # this worker" lookup for resource (not data) dependencies.
    b_by_role: Dict[str, List[Span]] = {}
    for span in merged.spans:
        if span.kind == EventKind.TASK_B and not span.aborted:
            b_by_role.setdefault(span.role, []).append(span)
    for spans in b_by_role.values():
        spans.sort(key=lambda s: s.end_ns)

    def previous_on_worker(span: Span) -> Optional[Span]:
        best = None
        for candidate in b_by_role.get(span.role, ()):
            if candidate is span:
                continue
            if candidate.end_ns <= span.start_ns + _EPS_NS:
                best = candidate
            else:
                break
        return best

    pos = len(order) - 1
    iteration = order[pos]
    cursor = chains[iteration].commit_ns
    mode = "commit"
    b_span: Optional[Span] = None
    budget = 4 * len(merged.spans) + 4 * len(order) + 64
    while cursor > 0 and budget > 0:
        budget -= 1
        ch = chains.get(iteration)
        if mode == "commit":
            c = ch.commit_span if ch else None
            role = c.role if c is not None else "committer"
            if c is not None:
                start_c = min(c.start_ns, cursor)
                emit("compute:C", c.role, iteration, start_c, cursor)
                cursor = start_c
            if (
                ch is not None
                and ch.reexec is not None
                and ch.reexec.end_ns <= cursor + _EPS_NS
            ):
                emit(
                    "misspeculation", ch.reexec.role, iteration,
                    min(ch.reexec.start_ns, cursor),
                    min(ch.reexec.end_ns, cursor),
                )
                cursor = min(cursor, ch.reexec.start_ns)
            prev_end = 0
            if pos > 0:
                prev_ch = chains[order[pos - 1]]
                prev_end = (
                    prev_ch.commit_span.end_ns
                    if prev_ch.commit_span is not None
                    else (prev_ch.commit_ns or 0)
                )
            # Workers claim *before* executing (crash-recovery discipline),
            # so the claim instant is not the result's arrival — execution
            # end is the earliest the result can reach the committer.
            arrival = (
                ch.work.end_ns
                if ch is not None and ch.work is not None
                else (ch.claim_ns if ch else None)
            )
            if (
                arrival is not None
                and arrival > prev_end
                and ch is not None
                and ch.work is not None
            ):
                # The committer idled for *this* item: the hop from
                # execution end to commit dispatch is the done channel's
                # flush/deserialize latency, and the chain continues on
                # the worker that executed it.
                emit(
                    "serialization", ch.work.role, iteration,
                    min(arrival, cursor), cursor,
                )
                cursor = min(cursor, arrival)
                mode, b_span = "worker", ch.work
            elif pos > 0:
                # Back-to-back commits: item sat ready in the reorder
                # buffer while the committer worked through predecessors —
                # the in-order discipline itself is the constraint.
                emit_gap(role, iteration, prev_end, cursor, "commit_lag")
                cursor = min(cursor, prev_end)
                pos -= 1
                iteration = order[pos]
            else:
                emit_gap(role, iteration, 0, cursor, "other")
                break
        elif mode == "worker":
            b = b_span
            start_b = min(b.start_ns, cursor)
            emit("compute:B", b.role, iteration, start_b, cursor)
            cursor = start_b
            produce = ch.produce if ch else None
            a_end = produce.end_ns if produce is not None else None
            prev_b = previous_on_worker(b)
            if prev_b is not None and (a_end is None or prev_b.end_ns >= a_end):
                # The worker, not the item's input, was the constraint:
                # follow the worker's previous task (resource chain).
                emit_gap(
                    b.role, iteration, min(prev_b.end_ns, cursor), cursor,
                    "other",
                )
                cursor = min(cursor, prev_b.end_ns)
                iteration = prev_b.arg
                ch = chains.get(iteration)
                b_span = prev_b
            elif produce is not None:
                # The worker starved waiting for this item: the gap is the
                # recorded get-wait plus the work-channel transport.
                emit_gap(
                    b.role, iteration, min(a_end, cursor), cursor,
                    "serialization",
                )
                cursor = min(cursor, a_end)
                mode = "producer"
            else:
                emit_gap(b.role, iteration, 0, cursor, "other")
                break
        else:  # producer
            produce = ch.produce if ch else None
            if produce is None:
                emit("other", "producer", iteration, 0, cursor)
                break
            start_a = min(produce.start_ns, cursor)
            emit("compute:A", produce.role, iteration, start_a, cursor)
            cursor = start_a
            prev = chains.get(iteration - 1)
            prev_a = prev.produce if prev is not None else None
            if iteration > 0 and prev_a is not None:
                # Between produce calls the producer serializes and
                # flushes frames (and blocks on backpressure, which its
                # recorded put-waits reclassify).
                emit_gap(
                    produce.role, iteration, min(prev_a.end_ns, cursor),
                    cursor, "serialization",
                )
                cursor = min(cursor, prev_a.end_ns)
                iteration -= 1
            else:
                emit_gap(produce.role, iteration, 0, cursor, "other")
                break
    segments.reverse()
    return segments


# -- measured per-item costs & the what-if replay ------------------------------------


@dataclass
class ChainCosts:
    """Measured per-item costs (seconds), in committed order — the input
    the discrete-event replay re-schedules under edited parameters."""

    a: List[float]
    b: List[float]
    c: List[float]
    reexec: List[float]
    gate: List[float]
    #: Producer-side serialization/transport cost per item (work channel).
    s_prod: List[float]
    #: Committer-side serialization/transport cost per item (done channel).
    s_done: List[float]

    def __len__(self) -> int:
        return len(self.a)


def _channel_serialization(metrics: Optional[dict]) -> Tuple[float, float]:
    """(work-channel, done-channel) total serialize+deserialize seconds."""
    if not metrics:
        return 0.0, 0.0
    channels = metrics.get("channels") or {}
    totals = {}
    for name, stats in channels.items():
        if not isinstance(stats, dict):
            continue
        totals[name] = float(stats.get("serialize_seconds") or 0.0) + float(
            stats.get("deserialize_seconds") or 0.0
        )
    work = totals.get("work", 0.0)
    done = totals.get("done", 0.0)
    if not totals:
        return 0.0, 0.0
    if "work" not in totals and "done" not in totals:
        # Unknown channel names: split the total evenly.
        combined = sum(totals.values())
        return combined / 2.0, combined / 2.0
    return work, done


def costs_from_chains(
    chains: Dict[int, ItemChain], metrics: Optional[dict] = None
) -> ChainCosts:
    """Per-item measured costs for every committed iteration."""
    order = sorted(
        (it for it, ch in chains.items() if ch.commit_ns is not None),
        key=lambda it: chains[it].commit_ns,
    )
    n = len(order)
    costs = ChainCosts([], [], [], [], [], [], [])
    s_work, s_done = _channel_serialization(metrics)
    per_item_work = s_work / n if n else 0.0
    per_item_done = s_done / n if n else 0.0
    for it in order:
        ch = chains[it]
        costs.a.append(ch.produce.seconds if ch.produce else 0.0)
        costs.b.append(ch.work.seconds if ch.work else 0.0)
        costs.c.append(ch.commit_span.seconds if ch.commit_span else 0.0)
        costs.reexec.append(ch.reexec.seconds if ch.reexec else 0.0)
        costs.gate.append(ch.gate.seconds if ch.gate else 0.0)
        costs.s_prod.append(per_item_work)
        costs.s_done.append(per_item_done)
    return costs


def replay(
    costs: ChainCosts,
    workers: int,
    capacity: int = 0,
    *,
    extra_workers: int = 0,
    serialization_scale: float = 1.0,
    capacity_scale: float = 1.0,
    drop_misspeculation: bool = False,
) -> float:
    """Discrete-event replay of the measured costs through the pipeline
    model: a serial producer, ``workers`` replicated B stages behind a
    bounded work queue, and an in-order committer.  Returns the projected
    wall clock in seconds."""
    n = len(costs)
    if n == 0:
        return 0.0
    count = max(1, workers + extra_workers)
    bound = max(1, int(round(capacity * capacity_scale))) if capacity else n + 1
    worker_free = [0.0] * count
    producer_t = 0.0
    commit_free = 0.0
    dequeue: List[float] = []
    for i in range(n):
        credit = dequeue[i - bound] if i >= bound else 0.0
        produced = (
            max(producer_t, credit)
            + costs.a[i]
            + costs.s_prod[i] * serialization_scale
        )
        producer_t = produced
        slot = min(range(count), key=worker_free.__getitem__)
        start_b = max(worker_free[slot], produced)
        dequeue.append(start_b)
        gate = 0.0 if drop_misspeculation else costs.gate[i]
        end_b = start_b + gate + costs.b[i]
        worker_free[slot] = end_b
        arrival = end_b + costs.s_done[i] * serialization_scale
        start_c = max(commit_free, arrival)
        reexec = 0.0 if drop_misspeculation else costs.reexec[i]
        commit_free = start_c + costs.c[i] + reexec
    return commit_free


def analytic_wall(
    costs: ChainCosts,
    workers: int,
    *,
    extra_workers: int = 0,
    serialization_scale: float = 1.0,
    drop_misspeculation: bool = False,
    **_ignored,
) -> float:
    """The §3.1 slowest-stage bound for the same edit: the pipeline can go
    no faster than its busiest stage, ``max(A, B/W, C)`` with each stage's
    serialization and misspeculation overhead folded in."""
    count = max(1, workers + extra_workers)
    gate = 0.0 if drop_misspeculation else sum(costs.gate)
    reexec = 0.0 if drop_misspeculation else sum(costs.reexec)
    a_total = sum(costs.a) + sum(costs.s_prod) * serialization_scale
    b_total = (sum(costs.b) + gate) / count
    c_total = sum(costs.c) + reexec + sum(costs.s_done) * serialization_scale
    return max(a_total, b_total, c_total)


def default_what_ifs(
    workers: int,
    capacity: int,
    batch_size: int = 1,
    transport: str = "pipe",
    has_misspeculation: bool = True,
) -> List[Tuple[str, str, Dict[str, Any]]]:
    """The standard edit set: ``(name, label, replay edits)`` triples."""
    edits: List[Tuple[str, str, Dict[str, Any]]] = [
        (
            "add_worker",
            f"+1 B replica ({workers} -> {workers + 1} workers)",
            {"extra_workers": 1},
        ),
    ]
    if batch_size:
        edits.append(
            (
                "double_batch",
                f"batch {batch_size} -> {batch_size * 2}",
                {"serialization_scale": 0.5},
            )
        )
    if transport == "pipe":
        edits.append(
            (
                "shm_transport",
                "pipe -> shm transport",
                {"serialization_scale": SHM_SERIALIZATION_SCALE},
            )
        )
    if has_misspeculation:
        edits.append(
            (
                "no_misspeculation",
                "no misspeculation (re-executions and gates removed)",
                {"drop_misspeculation": True},
            )
        )
    if capacity:
        edits.append(
            (
                "double_capacity",
                f"channel capacity {capacity} -> {capacity * 2}",
                {"capacity_scale": 2.0},
            )
        )
    return edits


def _project_what_ifs(
    costs: ChainCosts,
    workers: int,
    capacity: int,
    batch_size: int,
    transport: str,
    measured_wall: Optional[float] = None,
) -> Tuple[List[dict], float, float]:
    """Every standard edit replayed and cross-checked; returns
    ``(ranked what-ifs, baseline replay wall, baseline analytic wall)``.

    Projections are anchored to the *measured* wall, not the raw replay:
    the unexplained residual (worker spawn, teardown, scheduling slack the
    per-item model cannot see) is carried as a fixed cost into every
    edited schedule — an edit can shrink the modeled pipeline, never the
    overhead outside it.  When the replay overshoots the measurement the
    residual flips to a proportional correction instead.  Either way the
    baseline and edited walls share the same bias, so it cancels in the
    reported speedup.
    """
    baseline = replay(costs, workers, capacity)
    baseline_analytic = analytic_wall(costs, workers)
    wall = (
        measured_wall
        if measured_wall is not None and measured_wall > 0
        else baseline
    )
    residual = wall - baseline
    has_misspec = any(costs.reexec) or any(costs.gate)
    what_ifs = []
    for name, label, edits in default_what_ifs(
        workers, capacity, batch_size, transport, has_misspec
    ):
        edited = replay(costs, workers, capacity, **edits)
        if residual >= 0:
            projected = edited + residual
        elif baseline > 0:
            projected = edited * (wall / baseline)
        else:
            projected = edited
        analytic = analytic_wall(costs, workers, **edits)
        speedup = wall / projected if projected > 0 else 1.0
        analytic_speedup = (
            baseline_analytic / analytic if analytic > 0 else 1.0
        )
        what_ifs.append(
            {
                "name": name,
                "label": label,
                "projected_wall_s": round(projected, 6),
                "projected_speedup": round(speedup, 4),
                "analytic_speedup": round(analytic_speedup, 4),
                "agreement": round(
                    speedup / analytic_speedup if analytic_speedup else 1.0, 4
                ),
            }
        )
    what_ifs.sort(key=lambda w: -w["projected_speedup"])
    return what_ifs, baseline, baseline_analytic


# -- the report ----------------------------------------------------------------------


@dataclass
class BottleneckReport:
    """The analyzer's machine-readable verdict for one run."""

    source: str                       # "trace" or "metrics"
    wall_s: float
    workers: int
    capacity: int
    iterations: int
    batch_size: int = 1
    transport: str = "pipe"
    blame_seconds: Dict[str, float] = field(default_factory=dict)
    #: Total busy seconds per stage across *all* spans (not just the
    #: path) — the share vocabulary ``repro.obs.compare`` cross-checks.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    segments: List[PathSegment] = field(default_factory=list)
    what_ifs: List[dict] = field(default_factory=list)
    model: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def path_seconds(self) -> float:
        return sum(self.blame_seconds.values())

    @property
    def fractions(self) -> Dict[str, float]:
        total = self.path_seconds
        if total <= 0:
            return {key: 0.0 for key in self.blame_seconds}
        return {
            key: seconds / total
            for key, seconds in self.blame_seconds.items()
        }

    @property
    def categories(self) -> Dict[str, float]:
        """The coarse five-way rollup of :attr:`fractions`."""
        fractions = self.fractions
        rollup = {category: 0.0 for category in CATEGORIES}
        for key, value in fractions.items():
            category = key.split(":")[0]
            if category in rollup:
                rollup[category] += value
        return rollup

    @property
    def top(self) -> str:
        """The top blame key (``compute`` split per stage) — ``"other"``
        only when nothing else claimed any time at all."""
        candidates = {
            key: seconds
            for key, seconds in self.blame_seconds.items()
            if key != "other" and seconds > 0
        }
        if not candidates:
            return "other"
        return max(candidates, key=candidates.get)

    @property
    def recommendation(self) -> Optional[str]:
        return self.what_ifs[0]["name"] if self.what_ifs else None

    def to_json(self) -> dict:
        return {
            "schema": BOTTLENECK_SCHEMA,
            "source": self.source,
            "top": self.top,
            "wall_s": round(self.wall_s, 6),
            "path_s": round(self.path_seconds, 6),
            "fractions": {
                key: round(value, 4)
                for key, value in self.fractions.items()
            },
            "categories": {
                key: round(value, 4)
                for key, value in self.categories.items()
            },
            "stage_seconds": {
                key: round(value, 6)
                for key, value in self.stage_seconds.items()
            },
            "what_ifs": self.what_ifs,
            "recommendation": self.recommendation,
            "model": self.model,
            "workers": self.workers,
            "capacity": self.capacity,
            "iterations": self.iterations,
            "batch_size": self.batch_size,
            "transport": self.transport,
            "notes": list(self.notes),
        }

    def format_summary(self) -> str:
        """Human-readable verdict for the CLI."""
        fractions = self.fractions
        lines = [
            f"bottleneck: {self.top} "
            f"({fractions.get(self.top, 0.0):.0%} of the critical path) "
            f"over {self.wall_s:.3f}s wall "
            f"[{self.source}-based, {self.iterations} items, "
            f"{self.workers} worker(s)]",
        ]
        blame_bits = ", ".join(
            f"{key} {fractions[key]:.0%}"
            for key in BLAME_KEYS
            if fractions.get(key, 0.0) >= 0.005
        )
        if blame_bits:
            lines.append(f"blame             {blame_bits}")
        if self.segments:
            roles = {segment.role for segment in self.segments}
            lines.append(
                f"critical path     {len(self.segments)} segment(s) across "
                f"{len(roles)} role(s), {self.path_seconds:.3f}s attributed"
            )
        for what_if in self.what_ifs:
            lines.append(
                f"what-if           {what_if['label']:<44} "
                f"-> {what_if['projected_speedup']:.2f}x projected "
                f"(analytic {what_if['analytic_speedup']:.2f}x)"
            )
        model = self.model
        if model.get("replay_wall_s") is not None:
            error = model.get("fidelity_error")
            error_text = f" ({error:+.1%} vs measured)" if error is not None else ""
            lines.append(
                f"model             replay {model['replay_wall_s']:.3f}s, "
                f"analytic bound {model.get('analytic_wall_s', 0.0):.3f}s"
                f"{error_text}"
            )
        for note in self.notes:
            lines.append(f"note              {note}")
        return "\n".join(lines)


def _stage_busy_seconds(merged: MergedTrace) -> Dict[str, float]:
    stages = {"A": 0.0, "B": 0.0, "C": 0.0}
    kinds = {
        EventKind.TASK_A: "A", EventKind.TASK_B: "B", EventKind.TASK_C: "C",
    }
    for span in merged.spans:
        stage = kinds.get(span.kind)
        if stage is not None and not span.aborted:
            stages[stage] += span.seconds
    return stages


def analyze_trace(
    merged: MergedTrace,
    metrics: Optional[dict] = None,
    workers: Optional[int] = None,
    capacity: Optional[int] = None,
) -> BottleneckReport:
    """The tentpole entry point: causal chains -> critical path -> blame
    -> what-if projections, from one merged trace (``metrics`` — an
    ``EngineMetrics.to_json()`` dict — sharpens serialization costs and
    pipeline geometry when available)."""
    metrics = metrics or {}
    chains = extract_chains(merged)
    committed = [ch for ch in chains.values() if ch.commit_ns is not None]
    worker_roles = {
        span.role for span in merged.spans if span.kind == EventKind.TASK_B
    }
    if workers is None:
        workers = int(metrics.get("workers") or 0) or len(worker_roles) or 1
    if capacity is None:
        capacity = int(metrics.get("capacity") or 0)
    batch_size = int(metrics.get("batch_size") or 1)
    transport = str(metrics.get("transport") or "pipe")
    wall = float(metrics.get("wall_seconds") or 0.0) or (
        merged.duration_ns() / 1e9
    )
    report = BottleneckReport(
        source="trace",
        wall_s=wall,
        workers=workers,
        capacity=capacity,
        iterations=len(committed),
        batch_size=batch_size,
        transport=transport,
        stage_seconds=_stage_busy_seconds(merged),
    )
    if not committed:
        report.notes.append(
            "no committed iterations in the trace — nothing to analyze "
            "(service-only or empty trace)"
        )
        report.blame_seconds = {key: 0.0 for key in BLAME_KEYS}
        return report

    segments = compute_critical_path(merged, chains)
    blame = {key: 0.0 for key in BLAME_KEYS}
    for segment in segments:
        blame[segment.blame] = blame.get(segment.blame, 0.0) + segment.seconds
    report.blame_seconds = blame
    report.segments = segments

    costs = costs_from_chains(chains, metrics)
    if not metrics.get("channels"):
        report.notes.append(
            "no channel stats available — serialization costs estimated "
            "as zero (pass the run's metrics JSON for transport blame)"
        )
    what_ifs, baseline, baseline_analytic = _project_what_ifs(
        costs, workers, capacity, batch_size, transport, measured_wall=wall
    )
    report.what_ifs = what_ifs
    fidelity = (baseline - wall) / wall if wall > 0 else None
    report.model = {
        "replay_wall_s": round(baseline, 6),
        "analytic_wall_s": round(baseline_analytic, 6),
        "measured_wall_s": round(wall, 6),
        "fidelity_error": round(fidelity, 4) if fidelity is not None else None,
    }
    wasted = sum(
        span.seconds for ch in chains.values() for span in ch.wasted_work
    )
    if wasted > 0:
        report.notes.append(
            f"{wasted * 1e3:.1f}ms of wasted speculative work off the "
            "critical path"
        )
    return report


def crosscheck_with_graph(report: BottleneckReport, graph) -> List:
    """Line the analyzer's per-stage busy seconds up against a simulator
    :class:`~repro.core.tasks.TaskGraph` through the *same* share
    comparison ``repro.obs.compare`` uses for predicted-vs-measured — the
    §3.1 cost model validated from a third direction."""
    from repro.obs.compare import compare_phases

    return compare_phases(graph, report.stage_seconds)


# -- metrics-only estimation (no trace recorded) -------------------------------------


def estimate_bottleneck(metrics) -> dict:
    """A coarse bottleneck block from aggregate :class:`EngineMetrics`
    alone — what the engine attaches to every run, trace or not.

    Per-item costs are synthesized uniformly from stage totals, so the
    same replay/what-if machinery runs; blame comes from wall-clock
    apportionment (B busy time divided across workers) rather than a real
    critical path, and ``commit_lag`` is not separable without spans.
    Accepts an :class:`EngineMetrics` object or its ``to_json()`` dict.
    """
    data = metrics.to_json() if hasattr(metrics, "to_json") else dict(metrics)
    workers = max(1, int(data.get("workers") or 1))
    capacity = int(data.get("capacity") or 0)
    commits = int(data.get("commits") or 0)
    wall = float(data.get("wall_seconds") or 0.0)
    stage = data.get("stage_seconds") or {}
    a_total = float(stage.get("A") or 0.0)
    b_total = float(stage.get("B") or 0.0)
    c_total = float(stage.get("C") or 0.0)
    s_work, s_done = _channel_serialization(data)
    latency = data.get("latency_histograms") or {}

    def series_total(name: str) -> float:
        summary = latency.get(name) or {}
        return float(summary.get("count") or 0) * float(
            summary.get("mean") or 0.0
        )

    queue_wait = series_total("queue_wait")
    reexec_total = int(data.get("serial_reexecutions") or 0) * (
        (latency.get("task_b") or {}).get("mean") or 0.0
    )
    report = BottleneckReport(
        source="metrics",
        wall_s=wall,
        workers=workers,
        capacity=capacity,
        iterations=commits,
        batch_size=int(data.get("batch_size") or 1),
        transport=str(data.get("transport") or "pipe"),
        stage_seconds={"A": a_total, "B": b_total, "C": c_total},
    )
    blame = {key: 0.0 for key in BLAME_KEYS}
    blame["compute:A"] = a_total
    blame["compute:B"] = b_total / workers
    blame["compute:C"] = c_total
    blame["serialization"] = s_work + s_done
    blame["queue_wait"] = queue_wait
    blame["misspeculation"] = float(reexec_total)
    accounted = sum(blame.values())
    if wall > accounted:
        blame["other"] = wall - accounted
    report.blame_seconds = blame
    report.notes.append(
        "estimated from aggregate metrics (no trace): commit lag not "
        "separable, B compute averaged across workers"
    )
    if commits > 0:
        n = commits
        costs = ChainCosts(
            a=[a_total / n] * n,
            b=[b_total / n] * n,
            c=[c_total / n] * n,
            reexec=[float(reexec_total) / n] * n,
            gate=[0.0] * n,
            s_prod=[s_work / n] * n,
            s_done=[s_done / n] * n,
        )
        what_ifs, baseline, baseline_analytic = _project_what_ifs(
            costs, workers, capacity, report.batch_size, report.transport,
            measured_wall=wall,
        )
        report.what_ifs = what_ifs
        fidelity = (baseline - wall) / wall if wall > 0 else None
        report.model = {
            "replay_wall_s": round(baseline, 6),
            "analytic_wall_s": round(baseline_analytic, 6),
            "measured_wall_s": round(wall, 6),
            "fidelity_error": (
                round(fidelity, 4) if fidelity is not None else None
            ),
        }
    return report.to_json()


# -- bottleneck block schema check (tests + CI) --------------------------------------

_WHAT_IF_KEYS = {"name", "label", "projected_speedup"}


def validate_bottleneck(data: Any) -> List[str]:
    """Structural validation of a ``bottleneck`` JSON block; returns a
    list of problems (empty = valid).  The CI perf job runs this against
    the analysis artifact it uploads."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["bottleneck block must be an object"]
    if data.get("schema") != BOTTLENECK_SCHEMA:
        problems.append(
            f"schema must be {BOTTLENECK_SCHEMA}, got {data.get('schema')!r}"
        )
    if data.get("source") not in ("trace", "metrics"):
        problems.append(f"bad source {data.get('source')!r}")
    if not isinstance(data.get("top"), str):
        problems.append("top must be a string blame key")
    for field_name in ("fractions", "categories"):
        fractions = data.get(field_name)
        if not isinstance(fractions, dict):
            problems.append(f"{field_name} must be an object")
            continue
        for key, value in fractions.items():
            if not isinstance(value, (int, float)) or value < 0 or value > 1.001:
                problems.append(f"{field_name}[{key}] out of [0, 1]: {value!r}")
        total = sum(
            v for v in fractions.values() if isinstance(v, (int, float))
        )
        if fractions and total > 1.02:
            problems.append(f"{field_name} sum to {total:.3f} > 1")
    what_ifs = data.get("what_ifs")
    if not isinstance(what_ifs, list):
        problems.append("what_ifs must be a list")
    else:
        for index, what_if in enumerate(what_ifs):
            if not isinstance(what_if, dict):
                problems.append(f"what_ifs[{index}] not an object")
                continue
            missing = _WHAT_IF_KEYS - what_if.keys()
            if missing:
                problems.append(
                    f"what_ifs[{index}] missing keys {sorted(missing)}"
                )
            speedup = what_if.get("projected_speedup")
            if not isinstance(speedup, (int, float)) or speedup <= 0:
                problems.append(
                    f"what_ifs[{index}].projected_speedup bad: {speedup!r}"
                )
        speedups = [
            w.get("projected_speedup", 0)
            for w in what_ifs
            if isinstance(w, dict)
        ]
        if speedups != sorted(speedups, reverse=True):
            problems.append("what_ifs not ranked by projected_speedup")
    for key in ("wall_s", "path_s"):
        value = data.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{key} must be a non-negative number")
    return problems


# -- Chrome-trace ingestion (``obs analyze TRACE.json``) -----------------------------

#: Inverse of the exporter's span naming.
_SPAN_KIND_BY_NAME = {
    "A": EventKind.TASK_A,
    "B": EventKind.TASK_B,
    "C": EventKind.TASK_C,
    "reexec": EventKind.SERIAL_REEXEC,
    "wait:gate": EventKind.GATE_WAIT,
    "admit": EventKind.ADMIT,
    "queue_wait": EventKind.QUEUE_WAIT,
    "sched_pick": EventKind.SCHED_PICK,
    "lease_dispatch": EventKind.LEASE_DISPATCH,
    "artifact_persist": EventKind.ARTIFACT_PERSIST,
    "retry_backoff": EventKind.RETRY_BACKOFF,
}

_INSTANT_KIND_BY_NAME = {
    kind.name.lower(): kind for kind in EventKind
}


def merged_from_chrome_trace(trace: dict) -> MergedTrace:
    """Rebuild a :class:`MergedTrace` from an exported Chrome trace file —
    the exporter preserves kind names, iteration args, and timestamps, so
    a stored ``trace.json`` artifact is a complete analyzer input."""
    merged = MergedTrace()
    process_names: Dict[int, str] = {}
    thread_names: Dict[Tuple[int, int], str] = {}
    events = trace.get("traceEvents") or []
    for event in events:
        if event.get("ph") != "M":
            continue
        args = event.get("args") or {}
        if event.get("name") == "process_name":
            process_names[event.get("pid", 0)] = args.get("name", "")
        elif event.get("name") == "thread_name":
            thread_names[(event.get("pid", 0), event.get("tid", 0))] = (
                args.get("name", "")
            )

    def role_of(event: dict) -> str:
        pid = event.get("pid", 0)
        tid = event.get("tid", 0)
        return (
            thread_names.get((pid, tid))
            or process_names.get(pid)
            or f"pid{pid}"
        )

    for event in events:
        phase = event.get("ph")
        pid = event.get("pid", 0)
        if phase == "X":
            if pid == 0:
                continue  # the synthetic committed-order track
            name = event.get("name", "")
            args = event.get("args") or {}
            kind = _SPAN_KIND_BY_NAME.get(name)
            detail = 0
            if kind is None and name.startswith("wait:"):
                parts = name.split(":")
                if len(parts) == 3:
                    kind = (
                        EventKind.QUEUE_PUT_WAIT
                        if parts[1] == "put"
                        else EventKind.QUEUE_GET_WAIT
                    )
                    detail = CHANNEL_IDS.get(parts[2], 0)
            if kind is None:
                continue
            merged.spans.append(
                Span(
                    kind=kind,
                    role=role_of(event),
                    pid=pid,
                    start_ns=int(round(event.get("ts", 0) * 1000.0)),
                    duration_ns=int(round(event.get("dur", 0) * 1000.0)),
                    arg=int(args.get("iter") or 0),
                    arg2=int(args.get("worker") or 0),
                    detail=detail,
                    aborted=bool(args.get("aborted")),
                )
            )
        elif phase == "i":
            name = event.get("name", "")
            args = event.get("args") or {}
            if name.startswith("chaos"):
                kind = EventKind.CHAOS
            elif name.startswith("throttle"):
                kind = EventKind.THROTTLE
            else:
                kind = _INSTANT_KIND_BY_NAME.get(name)
            if kind is None:
                continue
            merged.instants.append(
                Instant(
                    kind=kind,
                    role=role_of(event),
                    pid=pid,
                    ts_ns=int(round(event.get("ts", 0) * 1000.0)),
                    arg=int(args.get("arg") or 0),
                    arg2=int(args.get("arg2") or 0),
                )
            )
    merged.spans.sort(key=lambda span: (span.start_ns, span.role))
    merged.instants.sort(key=lambda instant: (instant.ts_ns, instant.role))
    _build_histograms(merged)
    return merged


# -- CLI entry point (``python -m repro obs analyze``) -------------------------------


def run_analyze(
    target: Optional[str] = None,
    state_dir: Optional[str] = None,
    metrics_path: Optional[str] = None,
    workers: Optional[int] = None,
    capacity: Optional[int] = None,
    json_out: Optional[str] = None,
) -> Tuple[str, int]:
    """The ``obs analyze`` entry point: returns ``(text, exit_code)``.

    Two input modes: a Chrome trace file (``obs analyze trace.json
    [--metrics m.json]``), or a stored job artifact (``obs analyze JOB_ID
    --state-dir DIR`` — the job's ``trace.json`` and ``metrics.json`` are
    read from the artifact store).
    """
    from repro.obs.export import validate_chrome_trace

    metrics: Optional[dict] = None
    if state_dir is not None:
        if not target:
            return ("obs analyze: a JOB_ID is required with --state-dir", 2)
        root = state_dir
        nested = os.path.join(state_dir, "artifacts")
        if os.path.isdir(nested):
            root = nested
        job_dir = os.path.join(root, target)
        trace_path = os.path.join(job_dir, "trace.json")
        if not os.path.isfile(trace_path):
            return (
                f"obs analyze: no trace artifact for job {target!r} under "
                f"{root} (submit with params.trace or serve with "
                "--trace-jobs)",
                2,
            )
        metrics_file = os.path.join(job_dir, "metrics.json")
        if os.path.isfile(metrics_file):
            metrics = _load_json_file(metrics_file)
    elif target:
        trace_path = target
        if not os.path.isfile(trace_path):
            return (f"obs analyze: no such trace file: {target}", 2)
    else:
        return (
            "obs analyze: pass a trace file, or JOB_ID with --state-dir", 2,
        )
    if metrics_path:
        metrics = _load_json_file(metrics_path)
        if metrics is None:
            return (f"obs analyze: unreadable metrics JSON: {metrics_path}", 2)

    trace = _load_json_file(trace_path)
    if trace is None:
        return (f"obs analyze: unreadable trace JSON: {trace_path}", 2)
    problems = validate_chrome_trace(trace)
    if problems:
        return (
            f"obs analyze: {trace_path} is not a valid Chrome trace: "
            + "; ".join(problems[:5]),
            2,
        )
    merged = merged_from_chrome_trace(trace)
    report = analyze_trace(
        merged, metrics=metrics, workers=workers, capacity=capacity
    )
    text = report.format_summary()
    if json_out:
        parent = os.path.dirname(os.path.abspath(json_out))
        os.makedirs(parent, exist_ok=True)
        with open(json_out, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
        text += f"\nwrote {json_out}"
    return (text, 0)


def _load_json_file(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            loaded = json.load(handle)
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None
