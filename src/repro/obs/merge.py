"""The post-run merger: per-process spools -> one coherent timeline.

Reads every ``*.spool`` file a traced run left behind, maps each record
onto the shared wall clock through its spool's epoch handshake
(:mod:`repro.obs.clock`), recovers from damage (truncated spools, torn
slots, begin-markers whose span never arrived — crashed workers), and
produces a :class:`MergedTrace`:

- typed :class:`~repro.obs.events.Span` / :class:`~repro.obs.events.Instant`
  lists on a run-relative nanosecond axis;
- per-event-kind latency histograms (task exec per phase, queue put/get
  waits, throttle gate waits, claim->commit lag);
- accounting that is loud about loss: ``dropped_events`` (ring
  overwrites), ``corrupt_slots``, ``truncated_spools``, ``aborted_spans``.

The merger is deliberately forgiving: chaos runs *will* hand it spools
that stop mid-record, and the contract is to recover a usable timeline —
an aborted span, a counted drop — never to corrupt or crash.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.events import (
    CHANNEL_NAMES,
    EventKind,
    Instant,
    ROBUSTNESS_KINDS,
    SPAN_KINDS,
    Span,
)
from repro.obs.hist import LatencyHistogram
from repro.obs.spool import SpoolData, SpoolError, read_spool

#: Histogram series the merger always derives (when samples exist).
_SPAN_SERIES = {
    EventKind.TASK_A: "task_a",
    EventKind.TASK_B: "task_b",
    EventKind.TASK_C: "task_c",
    EventKind.SERIAL_REEXEC: "serial_reexec",
    EventKind.GATE_WAIT: "gate_wait",
    EventKind.ADMIT: "admit",
    EventKind.QUEUE_WAIT: "queue_wait",
    EventKind.SCHED_PICK: "sched_pick",
    EventKind.LEASE_DISPATCH: "lease_dispatch",
    EventKind.ARTIFACT_PERSIST: "artifact_persist",
    EventKind.RETRY_BACKOFF: "retry_backoff",
}


@dataclass
class MergedTrace:
    """Everything one traced run produced, merged and recovered."""

    spools: List[SpoolData] = field(default_factory=list)
    spans: List[Span] = field(default_factory=list)
    instants: List[Instant] = field(default_factory=list)
    #: Run-relative zero point on the wall clock (ns since epoch).
    origin_wall_ns: int = 0
    histograms: Dict[str, LatencyHistogram] = field(default_factory=dict)
    aborted_spans: int = 0
    unreadable_spools: List[str] = field(default_factory=list)

    @property
    def dropped_events(self) -> int:
        return sum(spool.dropped_events for spool in self.spools)

    @property
    def corrupt_slots(self) -> int:
        return sum(spool.corrupt_slots for spool in self.spools)

    @property
    def truncated_spools(self) -> int:
        return sum(1 for spool in self.spools if spool.truncated)

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def robustness_events(self) -> int:
        return sum(
            1 for instant in self.instants if instant.kind in ROBUSTNESS_KINDS
        )

    def spans_of(self, kind: EventKind) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def instants_of(self, kind: EventKind) -> List[Instant]:
        return [i for i in self.instants if i.kind == kind]

    def roles(self) -> List[str]:
        return [spool.role for spool in self.spools]

    def duration_ns(self) -> int:
        latest = 0
        for span in self.spans:
            latest = max(latest, span.end_ns)
        for instant in self.instants:
            latest = max(latest, instant.ts_ns)
        return latest

    def format_summary(self) -> str:
        """One CLI line each for scope, loss accounting, and recovery."""
        lines = [
            f"trace: {len(self.spools)} spool(s) "
            f"({', '.join(sorted(self.roles()))}), "
            f"{self.span_count} spans + {len(self.instants)} instants over "
            f"{self.duration_ns() / 1e6:.1f}ms"
        ]
        lines.append(
            f"loss accounting   {self.dropped_events} dropped (ring), "
            f"{self.corrupt_slots} corrupt slot(s), "
            f"{self.truncated_spools} truncated spool(s), "
            f"{self.aborted_spans} aborted span(s)"
        )
        if self.unreadable_spools:
            lines.append(
                "unreadable        " + ", ".join(self.unreadable_spools)
            )
        return "\n".join(lines)


def merge_spool_dir(spool_dir: str) -> MergedTrace:
    """Merge every ``*.spool`` under ``spool_dir``."""
    paths = sorted(glob.glob(os.path.join(spool_dir, "*.spool")))
    return merge_spools(paths)


def merge_spools(paths: List[str]) -> MergedTrace:
    merged = MergedTrace()
    spools: List[SpoolData] = []
    for path in paths:
        try:
            spools.append(read_spool(path))
        except (SpoolError, OSError) as error:
            merged.unreadable_spools.append(
                f"{os.path.basename(path)}: {error}"
            )
    merged.spools = spools
    if not spools:
        return merged

    # The run-relative origin: the earliest wall-clock timestamp anywhere.
    origin: Optional[int] = None
    for spool in spools:
        for record in spool.records:
            wall = spool.anchor.to_wall(record.t0_ns)
            if origin is None or wall < origin:
                origin = wall
    merged.origin_wall_ns = origin or 0

    for spool in spools:
        _merge_one(merged, spool)

    merged.spans.sort(key=lambda span: (span.start_ns, span.role))
    merged.instants.sort(key=lambda instant: (instant.ts_ns, instant.role))
    _build_histograms(merged)
    return merged


def _merge_one(merged: MergedTrace, spool: SpoolData) -> None:
    """Records of one spool -> spans/instants, recovering aborted tasks."""
    to_rel = lambda perf_ns: spool.anchor.to_wall(perf_ns) - merged.origin_wall_ns
    # Begin markers not yet matched by their full span: iteration -> marker.
    open_begins: Dict[int, Tuple[int, int]] = {}
    commit_args = set()
    task_c_spans: List[Span] = []
    for record in spool.records:
        kind = EventKind(record.kind)
        if kind == EventKind.TASK_B_BEGIN:
            open_begins[record.arg] = (record.t0_ns, record.arg2)
            continue
        if kind in SPAN_KINDS:
            if kind == EventKind.TASK_B:
                open_begins.pop(record.arg, None)
            span = Span(
                kind=kind,
                role=spool.role,
                pid=spool.pid,
                start_ns=to_rel(record.t0_ns),
                duration_ns=record.t1_ns - record.t0_ns,
                arg=record.arg,
                arg2=record.arg2,
                detail=record.detail,
            )
            merged.spans.append(span)
            if kind == EventKind.TASK_C:
                task_c_spans.append(span)
        else:
            if kind == EventKind.COMMIT:
                commit_args.add(record.arg)
            merged.instants.append(
                Instant(
                    kind=kind,
                    role=spool.role,
                    pid=spool.pid,
                    ts_ns=to_rel(record.t0_ns),
                    arg=record.arg,
                    arg2=record.arg2,
                    detail=record.detail,
                )
            )
    # The committer folds the commit point into its TASK_C span (the span's
    # end *is* the commit, arg2 carries the misspeculation flag) rather than
    # paying for a separate record per item.  Synthesize the COMMIT instant
    # here so the downstream vocabulary (commit lag, the committed-order
    # track) is unchanged; spools carrying explicit COMMIT records
    # (hand-built fixtures, older writers) are honored as-is.
    for span in task_c_spans:
        if span.arg in commit_args:
            continue
        merged.instants.append(
            Instant(
                kind=EventKind.COMMIT,
                role=spool.role,
                pid=spool.pid,
                ts_ns=span.end_ns,
                arg=span.arg,
                arg2=span.arg2,
                detail=span.detail,
            )
        )
    # Whatever is still open when the spool ends was cut down mid-task —
    # a crash, a kill, a hard exit.  Close it as an aborted span ending at
    # the spool's last known timestamp so the timeline stays consistent.
    last_ns = spool.last_timestamp_ns()
    for iteration, (begin_ns, worker) in sorted(open_begins.items()):
        end_ns = max(last_ns if last_ns is not None else begin_ns, begin_ns)
        merged.spans.append(
            Span(
                kind=EventKind.TASK_B,
                role=spool.role,
                pid=spool.pid,
                start_ns=to_rel(begin_ns),
                duration_ns=end_ns - begin_ns,
                arg=iteration,
                arg2=worker,
                aborted=True,
            )
        )
        merged.aborted_spans += 1


def _build_histograms(merged: MergedTrace) -> None:
    histograms: Dict[str, LatencyHistogram] = {}

    def series(name: str) -> LatencyHistogram:
        if name not in histograms:
            histograms[name] = LatencyHistogram()
        return histograms[name]

    for span in merged.spans:
        if span.aborted:
            continue
        name = _SPAN_SERIES.get(span.kind)
        if name is not None:
            series(name).add(span.seconds)
        elif span.kind in (EventKind.QUEUE_PUT_WAIT, EventKind.QUEUE_GET_WAIT):
            channel = CHANNEL_NAMES.get(span.detail, f"ch{span.detail}")
            side = "put" if span.kind == EventKind.QUEUE_PUT_WAIT else "get"
            series(f"queue_{side}_wait_{channel}").add(span.seconds)

    # Claim->commit lag: both instants live in the committer spool, so the
    # pairing needs no cross-clock care at all.
    claims: Dict[int, int] = {}
    for instant in merged.instants:
        if instant.kind == EventKind.CLAIM:
            claims.setdefault(instant.arg, instant.ts_ns)
        elif instant.kind == EventKind.COMMIT:
            claimed = claims.pop(instant.arg, None)
            if claimed is not None and instant.ts_ns >= claimed:
                series("commit_lag").add((instant.ts_ns - claimed) / 1e9)
    merged.histograms = histograms


def commit_lag_spans(merged: MergedTrace) -> List[Tuple[int, int, int]]:
    """``(iteration, claim_ns, commit_ns)`` per committed iteration — the
    "committed order" track of the exported trace."""
    claims: Dict[int, int] = {}
    rows: List[Tuple[int, int, int]] = []
    for instant in merged.instants:
        if instant.kind == EventKind.CLAIM:
            claims.setdefault(instant.arg, instant.ts_ns)
        elif instant.kind == EventKind.COMMIT:
            claimed = claims.pop(instant.arg, instant.ts_ns)
            rows.append((instant.arg, min(claimed, instant.ts_ns), instant.ts_ns))
    rows.sort()
    return rows
