"""The trace vocabulary: event kinds, record shapes, and trace config.

Every process in the execution stack (phase-A producer, phase-B workers,
the committer) emits fixed-size binary records into its own spool
(:mod:`repro.obs.spool`).  A record is either an **instant** (one
timestamp) or a **span** (begin and end); :class:`EventKind` enumerates
what can happen, and the merger (:mod:`repro.obs.merge`) turns raw records
back into typed :class:`Span`/:class:`Instant` objects on the shared
wall-clock axis.

Span begin/end markers: a worker writes :attr:`EventKind.TASK_B_BEGIN`
*before* executing a task and the full ``TASK_B`` span after.  If the
process dies mid-task (a real crash, an injected ``os._exit``, a kill
after a hang) the spool ends with a begin that has no matching span — the
merger recovers it as an **aborted span** instead of corrupting the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional


class EventKind(IntEnum):
    """Everything the execution stack can put on a timeline."""

    # -- task execution (spans) ------------------------------------------------
    TASK_A = 1          # producer ran one produce() call       (arg=iteration)
    TASK_B = 2          # worker executed one task              (arg=iteration, arg2=worker)
    TASK_C = 3          # committer ran one commit() callback   (arg=iteration)
    TASK_B_BEGIN = 4    # instant marker written before TASK_B  (arg=iteration, arg2=worker)
    SERIAL_REEXEC = 5   # committer re-executed a task serially (arg=iteration)

    # -- communication (spans) -------------------------------------------------
    QUEUE_PUT_WAIT = 10  # blocked acquiring item credit  (detail=channel)
    QUEUE_GET_WAIT = 11  # blocked waiting for an item    (detail=channel)
    GATE_WAIT = 12       # throttle-gated before executing (arg=iteration)

    # -- the committer's ordered view (instants) --------------------------------
    CLAIM = 20           # claim message arrived  (arg=iteration, arg2=worker)
    COMMIT = 21          # iteration committed    (arg=iteration; arg2=1 on misspeculation)
    CONFLICT = 22        # commit-time validation failed (arg=iteration)

    # -- robustness / resilience (instants) -------------------------------------
    SOFT_FAULT = 30      # worker reported a fault        (arg=iteration, arg2=worker)
    WORKER_CRASH = 31    # nonzero worker exit detected   (arg=worker)
    WORKER_TIMEOUT = 32  # hung worker killed             (arg=iteration, arg2=worker)
    RESPAWN = 33         # replacement worker spawned     (arg=new worker id)
    PRODUCER_CRASH = 34  # producer died mid-stream
    DEGRADE = 35         # engine fell back to sequential (arg=next_commit)
    CHECKPOINT = 36      # committed prefix checkpointed  (arg=next_commit)
    THROTTLE = 37        # window changed (detail: 0=shrink 1=grow, arg=new window)
    CHAOS = 38           # an injection fired (detail=ChaosCode, arg=iteration/index)

    # -- job-plane service stages (spans; arg=attempt unless noted) --------------
    ADMIT = 40            # POST /jobs validate + journal + enqueue
    QUEUE_WAIT = 41       # admission fsync -> scheduler pick (arg=attempt)
    SCHED_PICK = 42       # one FairScheduler.take decision   (arg=queue depth)
    LEASE_DISPATCH = 43   # pool lease -> engine construction (arg=attempt, arg2=workers)
    ARTIFACT_PERSIST = 44 # result -> artifact store fsync    (arg=attempt)
    RETRY_BACKOFF = 45    # failure -> next attempt's enqueue (arg=attempt)


class ChaosCode(IntEnum):
    """``detail`` values for :attr:`EventKind.CHAOS` records."""

    CRASH = 1
    HANG = 2
    SOFT_FAULT = 3
    FORCED_CONFLICT = 4
    RESULT_LATENCY = 5
    RESULT_DUPLICATE = 6
    RESULT_DROP = 7
    CHANNEL_LATENCY = 8
    CHANNEL_DUPLICATE = 9
    CHANNEL_DROP = 10


#: Kinds that are spans (both timestamps meaningful); everything else is an
#: instant whose ``t0 == t1``.
SPAN_KINDS = frozenset(
    {
        EventKind.TASK_A,
        EventKind.TASK_B,
        EventKind.TASK_C,
        EventKind.SERIAL_REEXEC,
        EventKind.QUEUE_PUT_WAIT,
        EventKind.QUEUE_GET_WAIT,
        EventKind.GATE_WAIT,
        EventKind.ADMIT,
        EventKind.QUEUE_WAIT,
        EventKind.SCHED_PICK,
        EventKind.LEASE_DISPATCH,
        EventKind.ARTIFACT_PERSIST,
        EventKind.RETRY_BACKOFF,
    }
)

#: The job-plane stages the service spool records around an engine run —
#: the vocabulary :mod:`repro.obs.jobtrace` stitches onto A/B/C spans.
SERVICE_KINDS = frozenset(
    {
        EventKind.ADMIT,
        EventKind.QUEUE_WAIT,
        EventKind.SCHED_PICK,
        EventKind.LEASE_DISPATCH,
        EventKind.ARTIFACT_PERSIST,
        EventKind.RETRY_BACKOFF,
    }
)

#: Robustness instants — the events the acceptance criteria count next to
#: commits when sizing a trace.
ROBUSTNESS_KINDS = frozenset(
    {
        EventKind.SOFT_FAULT,
        EventKind.WORKER_CRASH,
        EventKind.WORKER_TIMEOUT,
        EventKind.RESPAWN,
        EventKind.PRODUCER_CRASH,
        EventKind.DEGRADE,
        EventKind.CHAOS,
        EventKind.CONFLICT,
    }
)

#: Chrome-trace category per kind family (Perfetto groups/filters by these).
CATEGORY_BY_KIND = {
    EventKind.TASK_A: "task",
    EventKind.TASK_B: "task",
    EventKind.TASK_C: "task",
    EventKind.SERIAL_REEXEC: "recovery",
    EventKind.QUEUE_PUT_WAIT: "queue",
    EventKind.QUEUE_GET_WAIT: "queue",
    EventKind.GATE_WAIT: "throttle",
    EventKind.CLAIM: "commit",
    EventKind.COMMIT: "commit",
    EventKind.CONFLICT: "speculation",
    EventKind.SOFT_FAULT: "robustness",
    EventKind.WORKER_CRASH: "robustness",
    EventKind.WORKER_TIMEOUT: "robustness",
    EventKind.RESPAWN: "robustness",
    EventKind.PRODUCER_CRASH: "robustness",
    EventKind.DEGRADE: "robustness",
    EventKind.CHECKPOINT: "resilience",
    EventKind.THROTTLE: "throttle",
    EventKind.CHAOS: "chaos",
    EventKind.ADMIT: "service",
    EventKind.QUEUE_WAIT: "service",
    EventKind.SCHED_PICK: "service",
    EventKind.LEASE_DISPATCH: "service",
    EventKind.ARTIFACT_PERSIST: "service",
    EventKind.RETRY_BACKOFF: "service",
}

#: ``detail`` channel ids for queue-wait records.
CHANNEL_IDS = {"work": 0, "done": 1}
CHANNEL_NAMES = {index: name for name, index in CHANNEL_IDS.items()}


@dataclass(frozen=True)
class TraceConfig:
    """How one engine run is traced.  Picklable: it crosses the process
    boundary to every producer/worker at spawn.

    ``spool_dir``   — directory the per-process spool files are written to;
    ``max_events``  — ring capacity per process (oldest records are
    overwritten beyond it and counted as ``dropped_events`` — bounded,
    never silent);
    ``enabled``     — master switch; a disabled config is inert everywhere.
    """

    spool_dir: str
    max_events: int = 1 << 18
    enabled: bool = True

    def __post_init__(self):
        if self.max_events < 16:
            raise ValueError("max_events must be at least 16")


@dataclass(frozen=True)
class RawRecord:
    """One decoded spool record, still on the process-local perf clock."""

    seq: int
    kind: int
    detail: int
    arg: int
    arg2: int
    t0_ns: int
    t1_ns: int


@dataclass(frozen=True)
class Span:
    """A merged interval on the shared wall-clock axis (trace-relative ns)."""

    kind: EventKind
    role: str           # spool role: "producer", "worker-3", "committer"
    pid: int
    start_ns: int
    duration_ns: int
    arg: int = 0
    arg2: int = 0
    detail: int = 0
    aborted: bool = False

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    @property
    def seconds(self) -> float:
        return self.duration_ns / 1e9


@dataclass(frozen=True)
class Instant:
    """A merged point event on the shared wall-clock axis."""

    kind: EventKind
    role: str
    pid: int
    ts_ns: int
    arg: int = 0
    arg2: int = 0
    detail: int = 0
