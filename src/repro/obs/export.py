"""Chrome trace-event export: open the run in Perfetto.

Turns a :class:`~repro.obs.merge.MergedTrace` into the JSON object format
of the Chrome trace-event spec (the ``{"traceEvents": [...]}`` envelope
that https://ui.perfetto.dev and ``chrome://tracing`` both load):

- one track per traced OS process (producer, each worker incarnation, the
  committer), named through ``process_name`` metadata events;
- complete (``"ph": "X"``) events for spans — phase letters for task
  execution, ``wait:*`` for queue/gate blocking, ``reexec`` for serial
  recovery — with the iteration id in ``args``;
- instant (``"ph": "i"``) events for claims, commits, conflicts, chaos
  injections, throttle moves, checkpoints, and robustness events;
- a synthetic **committed order** track (pid 0): one span per commit from
  claim arrival to commit completion, in commit order — the engine's
  in-order heartbeat laid out against the workers' out-of-order reality;
- loss accounting under ``otherData`` (``dropped_events``,
  ``aborted_spans``, ``corrupt_slots``, ``truncated_spools``) so a
  recovered-from-chaos trace says so on its face.

:func:`validate_chrome_trace` is the schema check the tests (and the CI
chaos job) run against every produced file.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from typing import Any, Dict, List

from repro.obs.events import (
    CATEGORY_BY_KIND,
    CHANNEL_NAMES,
    ChaosCode,
    EventKind,
    Instant,
    Span,
)
from repro.obs.merge import MergedTrace, commit_lag_spans

#: Synthetic pid for the committed-order track (real pids are never 0).
COMMITTED_ORDER_PID = 0

_SPAN_NAMES = {
    EventKind.TASK_A: "A",
    EventKind.TASK_B: "B",
    EventKind.TASK_C: "C",
    EventKind.SERIAL_REEXEC: "reexec",
    EventKind.GATE_WAIT: "wait:gate",
    EventKind.ADMIT: "admit",
    EventKind.QUEUE_WAIT: "queue_wait",
    EventKind.SCHED_PICK: "sched_pick",
    EventKind.LEASE_DISPATCH: "lease_dispatch",
    EventKind.ARTIFACT_PERSIST: "artifact_persist",
    EventKind.RETRY_BACKOFF: "retry_backoff",
}


def _span_name(span: Span) -> str:
    if span.kind in (EventKind.QUEUE_PUT_WAIT, EventKind.QUEUE_GET_WAIT):
        side = "put" if span.kind == EventKind.QUEUE_PUT_WAIT else "get"
        channel = CHANNEL_NAMES.get(span.detail, f"ch{span.detail}")
        return f"wait:{side}:{channel}"
    return _SPAN_NAMES.get(span.kind, span.kind.name.lower())


def _instant_name(instant: Instant) -> str:
    if instant.kind == EventKind.CHAOS:
        try:
            return f"chaos:{ChaosCode(instant.detail).name.lower()}"
        except ValueError:
            return "chaos"
    if instant.kind == EventKind.THROTTLE:
        return "throttle:shrink" if instant.detail == 0 else "throttle:grow"
    return instant.kind.name.lower()


def to_chrome_trace(merged: MergedTrace) -> Dict[str, Any]:
    """The trace-event JSON object for one merged run."""
    events: List[dict] = []

    def metadata(pid: int, name: str, sort_index: int) -> None:
        events.append(
            {
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": name},
            }
        )
        events.append(
            {
                "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )

    # Track assignment: one tid per (pid, role).  Engine processes each own
    # exactly one spool, so they keep tid 0 and the output is byte-for-byte
    # what it was; the job server hosts several spools in one pid (service,
    # phase-A thread, committer), which fan out onto sibling threads of the
    # same Perfetto process instead of colliding on one track.
    ordered = sorted(merged.spools, key=lambda s: s.role)
    tids: Dict[tuple, int] = {}
    roles_by_pid: Dict[int, List[str]] = defaultdict(list)
    for spool in ordered:
        tids[(spool.pid, spool.role)] = len(roles_by_pid[spool.pid])
        roles_by_pid[spool.pid].append(spool.role)

    def track(pid: int, role: str) -> int:
        return tids.get((pid, role), 0)

    metadata(COMMITTED_ORDER_PID, "committed order", 0)
    for index, spool in enumerate(ordered):
        tid = track(spool.pid, spool.role)
        if tid == 0:
            roles = roles_by_pid[spool.pid]
            name = "service" if "service" in roles else spool.role
            metadata(spool.pid, name, index + 1)
        if len(roles_by_pid[spool.pid]) > 1:
            events.append(
                {
                    "ph": "M", "name": "thread_name", "pid": spool.pid,
                    "tid": tid, "args": {"name": spool.role},
                }
            )

    # Per-track payload events, emitted in timestamp order per (pid, tid):
    # the spec does not require sorting, but sorted tracks make the file
    # diffable and let the validator assert monotonicity.
    per_track: Dict[tuple, List[dict]] = defaultdict(list)
    for span in merged.spans:
        args: Dict[str, Any] = {"iter": span.arg}
        if span.kind == EventKind.TASK_B:
            args["worker"] = span.arg2
        if span.aborted:
            args["aborted"] = True
        tid = track(span.pid, span.role)
        per_track[(span.pid, tid)].append(
            {
                "name": _span_name(span),
                "cat": "aborted" if span.aborted else CATEGORY_BY_KIND[span.kind],
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": span.pid,
                "tid": tid,
                "args": args,
            }
        )
    for instant in merged.instants:
        tid = track(instant.pid, instant.role)
        per_track[(instant.pid, tid)].append(
            {
                "name": _instant_name(instant),
                "cat": CATEGORY_BY_KIND.get(instant.kind, "event"),
                "ph": "i",
                "s": "t",
                "ts": instant.ts_ns / 1000.0,
                "pid": instant.pid,
                "tid": tid,
                "args": {"arg": instant.arg, "arg2": instant.arg2},
            }
        )
    for iteration, claim_ns, commit_ns in commit_lag_spans(merged):
        per_track[(COMMITTED_ORDER_PID, 0)].append(
            {
                "name": "commit",
                "cat": "commit",
                "ph": "X",
                "ts": claim_ns / 1000.0,
                "dur": (commit_ns - claim_ns) / 1000.0,
                "pid": COMMITTED_ORDER_PID,
                "tid": 0,
                "args": {"iter": iteration},
            }
        )
    for _, track_events in sorted(per_track.items()):
        track_events.sort(key=lambda event: event["ts"])
        events.extend(track_events)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "dropped_events": merged.dropped_events,
            "aborted_spans": merged.aborted_spans,
            "corrupt_slots": merged.corrupt_slots,
            "truncated_spools": merged.truncated_spools,
            "unreadable_spools": list(merged.unreadable_spools),
        },
    }


def write_chrome_trace(merged: MergedTrace, path: str) -> Dict[str, Any]:
    """Export ``merged`` to ``path``; returns the trace object.

    Creates missing parent directories: the export runs *after* the traced
    run succeeded, and a mistyped output directory must not throw that
    work away."""
    trace = to_chrome_trace(merged)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return trace


# -- schema validation (tests + CI chaos job) --------------------------------------

_REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}
_KNOWN_PHASES = {"X", "i", "M"}


def validate_chrome_trace(trace: Any) -> List[str]:
    """Structural validation of a trace-event object.

    Returns a list of problems (empty = valid): envelope shape, required
    keys per event, known phase types, non-negative durations, and
    non-decreasing ``ts`` within each (pid, tid) track.
    """
    problems: List[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["trace must be an object with a 'traceEvents' list"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    last_ts: Dict[tuple, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if phase == "M":
            if "name" not in event or "args" not in event:
                problems.append(f"event {index}: metadata without name/args")
            continue
        missing = _REQUIRED_KEYS - event.keys()
        if missing:
            problems.append(
                f"event {index}: missing keys {sorted(missing)}"
            )
            continue
        if phase not in _KNOWN_PHASES:
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index}: bad ts {ts!r}")
            continue
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"event {index}: X event with bad dur")
        track = (event["pid"], event["tid"])
        if ts < last_ts.get(track, 0.0):
            problems.append(
                f"event {index}: ts {ts} regresses on track {track}"
            )
        else:
            last_ts[track] = ts
    return problems


def load_and_validate(path: str) -> Dict[str, Any]:
    """Load a trace file and raise ``ValueError`` on schema problems."""
    with open(path) as handle:
        trace = json.load(handle)
    problems = validate_chrome_trace(trace)
    if problems:
        raise ValueError(
            f"{path}: invalid chrome trace: " + "; ".join(problems[:10])
        )
    return trace
