"""repro.obs — structured tracing for the execution stack.

Where :mod:`repro.exec.metrics` reports end-of-run aggregates, this
package records *when everything happened*: producer, workers, and the
committer emit timestamped span/event records into per-process binary
spool files (:mod:`repro.obs.spool` — ring-buffered, chaos-safe, no
hot-path pipe traffic), timestamps merge across processes through a
per-process clock handshake (:mod:`repro.obs.clock`), and a post-run
merger (:mod:`repro.obs.merge`) recovers a coherent timeline that exports
to the Chrome trace-event format (:mod:`repro.obs.export`, loadable in
Perfetto), feeds per-stage latency histograms (:mod:`repro.obs.hist`),
and lines up against the simulator's predicted schedule
(:mod:`repro.obs.compare`).

Tracing is **off by default** (pass a :class:`TraceConfig` to the engine
or ``--trace out.json`` to the CLI), **bounded** (per-process ring with an
explicit ``dropped_events`` count), and **must never take down a run**: an
unwritable spool degrades to no tracing, and a spool truncated by a
crashed worker merges into an aborted span, not a corrupt trace.

The *live* plane complements the post-mortem one: a lock-light
shared-memory :class:`MetricsRegistry` (:mod:`repro.obs.registry`) that
producer/workers/committer write in-band, a :class:`LiveMonitor` sampling
thread with a stall/saturation/storm :class:`Watchdog`
(:mod:`repro.obs.live`), a stdlib HTTP :class:`MetricsServer` exposing
``/metrics`` (Prometheus text), ``/snapshot``, and ``/health``
(:mod:`repro.obs.serve`), and a cross-run JSONL history store with a CI
regression gate (:mod:`repro.obs.history`).
"""

from repro.obs.analyze import (
    BOTTLENECK_SCHEMA,
    BottleneckReport,
    ItemChain,
    PathSegment,
    analyze_trace,
    compute_critical_path,
    crosscheck_with_graph,
    estimate_bottleneck,
    extract_chains,
    merged_from_chrome_trace,
    run_analyze,
    validate_bottleneck,
)
from repro.obs.clock import ClockAnchor, now_ns
from repro.obs.compare import (
    PhaseComparison,
    compare_phases,
    format_report,
    render_measured_timeline,
)
from repro.obs.events import (
    ChaosCode,
    EventKind,
    Instant,
    SERVICE_KINDS,
    Span,
    TraceConfig,
)
from repro.obs.export import (
    load_and_validate,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.hist import LatencyHistogram, format_seconds, percentile
from repro.obs.history import (
    HISTORY_SCHEMA,
    HistoryDiff,
    append_record,
    diff_records,
    format_history_diff,
    load_history,
    make_record,
    select_baseline,
)
from repro.obs.live import (
    HealthState,
    LiveConfig,
    LiveMonitor,
    Watchdog,
    WatchdogConfig,
)
from repro.obs.jobtrace import (
    FlightRecorder,
    JobTrace,
    TraceContext,
    aggregate_report,
    build_timeline,
    iter_job_traces,
    open_job_trace,
    run_report,
)
from repro.obs.merge import MergedTrace, merge_spool_dir, merge_spools
from repro.obs.registry import (
    MetricsRegistry,
    RegistrySnapshot,
    writers_for,
)
from repro.obs.serve import MetricsServer, prometheus_exposition
from repro.obs.spool import (
    SpoolData,
    SpoolError,
    SpoolWriter,
    open_tracer,
    read_spool,
)

__all__ = [
    "BOTTLENECK_SCHEMA",
    "BottleneckReport",
    "ChaosCode",
    "ClockAnchor",
    "EventKind",
    "FlightRecorder",
    "HISTORY_SCHEMA",
    "HealthState",
    "HistoryDiff",
    "Instant",
    "ItemChain",
    "JobTrace",
    "LatencyHistogram",
    "LiveConfig",
    "LiveMonitor",
    "MergedTrace",
    "MetricsRegistry",
    "MetricsServer",
    "PathSegment",
    "PhaseComparison",
    "RegistrySnapshot",
    "SERVICE_KINDS",
    "Span",
    "SpoolData",
    "SpoolError",
    "SpoolWriter",
    "TraceConfig",
    "TraceContext",
    "Watchdog",
    "WatchdogConfig",
    "aggregate_report",
    "analyze_trace",
    "append_record",
    "build_timeline",
    "compare_phases",
    "compute_critical_path",
    "crosscheck_with_graph",
    "diff_records",
    "estimate_bottleneck",
    "extract_chains",
    "format_history_diff",
    "format_report",
    "format_seconds",
    "iter_job_traces",
    "load_and_validate",
    "load_history",
    "make_record",
    "merge_spool_dir",
    "merge_spools",
    "merged_from_chrome_trace",
    "now_ns",
    "open_job_trace",
    "open_tracer",
    "percentile",
    "run_analyze",
    "run_report",
    "prometheus_exposition",
    "read_spool",
    "render_measured_timeline",
    "select_baseline",
    "to_chrome_trace",
    "validate_bottleneck",
    "validate_chrome_trace",
    "write_chrome_trace",
]
