"""The cross-run history store: one JSONL line per engine run.

A single run's metrics answer "how did this run go"; regressions only show
up *across* runs — yesterday's 40 k items/sec quietly becoming today's
28 k, a p95 commit lag creeping up PR over PR.  Every CLI exec run appends
one schema-versioned summary record to ``benchmarks/history.jsonl`` (or
``--history PATH``), and ``python -m repro history`` diffs the latest run
against a baseline — by label, by index, or automatically against the
previous comparable run (same workload, worker count, and batch size).

The store is append-only JSON Lines: one self-contained object per line,
no global file rewrite (concurrent runs at worst interleave whole lines),
corrupt lines skipped loudly rather than fatally.  ``schema`` is bumped on
any shape change; readers ignore records from the future instead of
misparsing them.

``--check`` turns the diff into a CI gate: items/sec below
``baseline * (1 - tolerance)``, p95 latency above
``baseline * (1 + tolerance)``, or a misspeculation-rate jump beyond an
absolute margin fails the build — the cross-run sibling of
``benchmarks/check_perf.py``'s intra-run gate.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

logger = logging.getLogger(__name__)

#: Bump on any record-shape change; readers skip records they postdate.
HISTORY_SCHEMA = 1

#: Default store, shared with the benchmark artifacts.
DEFAULT_HISTORY_PATH = os.path.join("benchmarks", "history.jsonl")

#: Latency series whose p95s are gated by ``--check``.
GATED_LATENCY_SERIES = ("task_b", "commit_lag", "task_c")

#: Absolute misspeculation-rate increase that fails the gate.
MISSPEC_RATE_MARGIN = 0.10


def make_record(
    *,
    name: str,
    metrics,
    seed: Optional[int] = None,
    label: Optional[str] = None,
    chaos: Optional[int] = None,
    ok: bool = True,
    watchdog: Optional[dict] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> dict:
    """One history record from a finished run's :class:`EngineMetrics`.

    ``watchdog`` is the live monitor's summary when the run was observed
    live (``None`` otherwise); ``ok`` carries the run-level verdict (output
    identical / invariants held).
    """
    from repro.obs.hist import summarize  # local: avoid cycle at import

    wall = metrics.wall_seconds or 0.0
    latency = {}
    for series, summary in summarize(metrics.latency).items():
        latency[series] = {
            key: summary[key]
            for key in ("count", "mean", "p50", "p95", "p99")
            if key in summary
        }
    record = {
        "schema": HISTORY_SCHEMA,
        "ts": round(time.time(), 3),
        "name": name,
        "label": label,
        "ok": bool(ok),
        "seed": seed,
        "chaos": chaos,
        "workers": metrics.workers,
        "capacity": metrics.capacity,
        "batch_size": metrics.batch_size,
        "transport": getattr(metrics, "transport", "pipe"),
        "iterations": metrics.iterations,
        "wall_seconds": round(wall, 6),
        "items_per_sec": round(metrics.commits / wall, 1) if wall else 0.0,
        "misspec_rate": round(metrics.misspeculation_rate, 4),
        "counters": {
            "commits": metrics.commits,
            "conflicts": metrics.conflicts,
            "serial_reexecutions": metrics.serial_reexecutions,
            "soft_faults": metrics.soft_faults,
            "worker_crashes": metrics.worker_crashes,
            "worker_timeouts": metrics.worker_timeouts,
            "respawns": metrics.respawns,
            "retries": metrics.retries,
            "checkpoints": metrics.checkpoints_taken,
        },
        "degraded": metrics.degraded_to_sequential,
        "latency": latency,
        "watchdog": watchdog,
    }
    bottleneck = getattr(metrics, "bottleneck", None)
    if bottleneck:
        # The analyzer's verdict, compacted: enough to see cross-run
        # bottleneck drift in ``history list``/``diff`` without carrying
        # the full segment-level analysis in every line.
        record["bottleneck"] = {
            "top": bottleneck.get("top"),
            "source": bottleneck.get("source"),
            "categories": bottleneck.get("categories") or {},
            "recommendation": bottleneck.get("recommendation"),
        }
    if extra:
        record.update(extra)
    return record


def append_record(path: str, record: dict) -> None:
    """Append one record as a JSON line, creating parent directories."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_history(path: str) -> List[dict]:
    """Every readable record, oldest first; corrupt or future-schema lines
    are skipped with a warning, never fatal (the store must survive a
    crashed writer's torn last line)."""
    records: List[dict] = []
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                logger.warning(
                    "history %s line %d: corrupt JSON skipped",
                    path, line_number,
                )
                continue
            if not isinstance(record, dict):
                logger.warning(
                    "history %s line %d: not an object, skipped",
                    path, line_number,
                )
                continue
            if record.get("schema", 0) > HISTORY_SCHEMA:
                logger.warning(
                    "history %s line %d: schema %s is newer than %d, "
                    "skipped", path, line_number, record.get("schema"),
                    HISTORY_SCHEMA,
                )
                continue
            records.append(record)
    return records


def _comparable(a: dict, b: dict) -> bool:
    # transport defaults to "pipe" so pre-transport records stay
    # comparable with pipe runs (they are the same configuration).
    if a.get("transport", "pipe") != b.get("transport", "pipe"):
        return False
    return all(
        a.get(key) == b.get(key)
        for key in ("name", "workers", "batch_size")
    )


def select_baseline(
    records: List[dict],
    latest: dict,
    selector: Optional[str] = None,
) -> Optional[dict]:
    """Resolve the baseline ``latest`` is diffed against.

    ``selector`` may be a record label (``--label`` at record time), or an
    integer index into the store (negative = from the end, with ``-1`` the
    latest record itself).  Without a selector: the most recent *earlier*
    record comparable to ``latest`` (same workload, workers, batch size).
    """
    if selector is not None:
        try:
            index = int(selector)
        except ValueError:
            for record in reversed(records):
                if record.get("label") == selector and record is not latest:
                    return record
            return None
        try:
            return records[index]
        except IndexError:
            return None
    for record in reversed(records):
        if record is latest:
            continue
        if record.get("ts", 0) > latest.get("ts", 0):
            continue
        if _comparable(record, latest):
            return record
    return None


@dataclass
class DiffRow:
    """One compared metric."""

    metric: str
    baseline: float
    current: float
    #: relative delta (current vs baseline); None when baseline is zero
    delta: Optional[float]
    #: "higher" or "lower" — which direction is better
    better: str
    regression: bool = False

    def format(self) -> str:
        delta_text = (
            f"{self.delta:+.1%}" if self.delta is not None else "   n/a"
        )
        verdict = "REGRESSION" if self.regression else "ok"
        return (
            f"{verdict:>10}  {self.metric:<24} "
            f"{self.baseline:>12,.4g} -> {self.current:>12,.4g}  "
            f"({delta_text})"
        )


@dataclass
class HistoryDiff:
    """Latest-vs-baseline comparison, CI-gateable."""

    baseline: dict
    current: dict
    tolerance: float
    rows: List[DiffRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": self.tolerance,
            "baseline_ts": self.baseline.get("ts"),
            "current_ts": self.current.get("ts"),
            "rows": [
                {
                    "metric": row.metric,
                    "baseline": row.baseline,
                    "current": row.current,
                    "delta": row.delta,
                    "regression": row.regression,
                }
                for row in self.rows
            ],
        }


def diff_records(
    baseline: dict, current: dict, tolerance: float = 0.30
) -> HistoryDiff:
    """Compare two history records along the gated axes.

    Throughput must not fall more than ``tolerance`` below baseline; gated
    p95 latencies must not rise more than ``tolerance`` above it; the
    misspeculation rate must not climb more than an absolute
    :data:`MISSPEC_RATE_MARGIN`.  Latency series are only gated when both
    records carry them (a stage that committed zero items has no
    histogram — absence is not a regression).
    """
    diff = HistoryDiff(
        baseline=baseline, current=current, tolerance=tolerance
    )

    def add(
        metric: str, base_value, current_value, better: str,
        gated: bool = True, absolute_margin: Optional[float] = None,
    ) -> None:
        if base_value is None or current_value is None:
            return
        base_value = float(base_value)
        current_value = float(current_value)
        delta = (
            (current_value - base_value) / base_value if base_value else None
        )
        regression = False
        if gated:
            if absolute_margin is not None:
                worse_by = (
                    current_value - base_value
                    if better == "lower"
                    else base_value - current_value
                )
                regression = worse_by > absolute_margin
            elif base_value > 0:
                if better == "higher":
                    regression = current_value < base_value * (1 - tolerance)
                else:
                    regression = current_value > base_value * (1 + tolerance)
        diff.rows.append(
            DiffRow(
                metric=metric,
                baseline=base_value,
                current=current_value,
                delta=delta,
                better=better,
                regression=regression,
            )
        )

    add(
        "items_per_sec",
        baseline.get("items_per_sec"), current.get("items_per_sec"),
        better="higher",
    )
    add(
        "wall_seconds",
        baseline.get("wall_seconds"), current.get("wall_seconds"),
        better="lower", gated=False,
    )
    add(
        "misspec_rate",
        baseline.get("misspec_rate"), current.get("misspec_rate"),
        better="lower", absolute_margin=MISSPEC_RATE_MARGIN,
    )
    base_latency = baseline.get("latency") or {}
    current_latency = current.get("latency") or {}
    for series in GATED_LATENCY_SERIES:
        base_series = base_latency.get(series) or {}
        current_series = current_latency.get(series) or {}
        add(
            f"{series}.p95",
            base_series.get("p95"), current_series.get("p95"),
            better="lower",
        )
    return diff


def format_history_diff(diff: HistoryDiff) -> str:
    """The CLI report for one latest-vs-baseline comparison."""

    def describe(record: dict) -> str:
        label = record.get("label")
        label_text = f" [{label}]" if label else ""
        return (
            f"{record.get('name', '?')}{label_text} "
            f"({record.get('workers', '?')}w batch "
            f"{record.get('batch_size', '?')}, "
            f"{record.get('transport', 'pipe')} transport, "
            f"{record.get('iterations', '?')} iterations)"
        )

    lines = [
        f"history: {describe(diff.current)}",
        f"baseline {describe(diff.baseline)}  "
        f"tolerance {diff.tolerance:.0%}",
    ]
    lines += [row.format() for row in diff.rows]
    base_bottleneck = diff.baseline.get("bottleneck") or {}
    current_bottleneck = diff.current.get("bottleneck") or {}
    if base_bottleneck or current_bottleneck:
        base_top = base_bottleneck.get("top", "-")
        current_top = current_bottleneck.get("top", "-")
        drift = "" if base_top == current_top else "  (BOTTLENECK SHIFTED)"
        lines.append(
            f"bottleneck: {base_top} -> {current_top}{drift}"
        )
    lines.append(
        "verdict: "
        + (
            "ok — no gated regression"
            if diff.ok
            else f"{len(diff.regressions)} REGRESSION(S)"
        )
    )
    return "\n".join(lines)


def format_history_list(records: List[dict], limit: int = 10) -> str:
    """The last ``limit`` records, one line each, oldest first."""
    lines = []
    for record in records[-limit:]:
        watchdog = record.get("watchdog") or {}
        health = watchdog.get("health", "-")
        label = record.get("label")
        bottleneck = record.get("bottleneck") or {}
        top = bottleneck.get("top")
        lines.append(
            f"{time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(record.get('ts', 0)))}  "
            f"{record.get('name', '?'):<12} "
            f"{record.get('workers', '?')}w b{record.get('batch_size', '?'):<3} "
            f"{record.get('transport', 'pipe'):<6} "
            f"{record.get('items_per_sec', 0):>10,.1f}/s  "
            f"misspec {record.get('misspec_rate', 0):.1%}  "
            f"health {health:<8} "
            f"{'ok' if record.get('ok') else 'FAIL'}"
            + (f"  bn:{top}" if top else "")
            + (f"  [{label}]" if label else "")
        )
    return "\n".join(lines) if lines else "history: no records"
