"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``suite``                  evaluate all eleven benchmarks, print Table 2;
- ``bench NAME``             evaluate one benchmark, print its curve and plan;
- ``figure N``               regenerate one of the paper's figures (4-7);
- ``exec NAME``              run a workload for REAL on the multiprocess
  execution engine and print measured metrics;
- ``history``                diff the latest recorded run against a baseline
  from the cross-run history store (``benchmarks/history.jsonl``);
- ``obs report STATE_DIR``   aggregate persisted job traces offline;
- ``obs analyze TRACE|JOB``  critical-path blame + what-if speedup
  projections from a Chrome trace file or a stored job artifact;
- ``list``                   list the available benchmarks.

The ``exec`` command carries the observability surface: ``--trace out.json``
records every process's spans/events into per-process spools and exports a
Chrome trace-event file (loadable at https://ui.perfetto.dev);
``--compare`` prints the predicted-vs-measured report (simulator Gantt vs
measured timeline, per-phase busy-share error); ``--metrics-out m.json``
writes the run metrics (including per-stage latency histograms) as JSON;
``--log-level`` controls the ``repro.exec`` / ``repro.resilience`` logging
namespaces (chaos injections log at INFO with their seed and indices).

The *live* telemetry plane (PR 5): ``--serve PORT`` exposes ``/metrics``
(Prometheus text), ``/snapshot`` (JSON), and ``/health`` (liveness probe)
over HTTP while the run executes; ``--watch`` renders a one-line status TUI
to stderr; a stall/saturation/storm watchdog escalates log → degraded →
(with ``--abort-on-stall``) abort.  Every exec run appends a
schema-versioned summary to the history store (``--history PATH``,
``--no-history`` to skip, ``--label`` to name a baseline) and
``python -m repro history`` diffs the latest run against a baseline.

Examples::

    python -m repro suite
    python -m repro bench 164.gzip
    python -m repro figure 6 --threads 1 2 4 8 16 32
    python -m repro exec 256.bzip2 --workers 4 --inject-faults
    python -m repro exec 256.bzip2 --workers 4 --trace trace.json --compare
    python -m repro exec 197.parser --chaos 24 --trace t.json --log-level info
    python -m repro exec 197.parser --chaos 24 --serve 9090 --watch
    python -m repro history --baseline my-label --check
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro.core.framework import FrameworkConfig, ParallelizationFramework
from repro.core.report import SuiteReport, format_speedup_curve
from repro.obs.history import DEFAULT_HISTORY_PATH
from repro.workloads.suite import (
    FIGURE4,
    FIGURE5,
    FIGURE6,
    FIGURE7,
    PAPER_TABLE2,
    SUITE,
    exec_names,
    make_workload,
    suite_names,
)

_FIGURES = {4: FIGURE4, 5: FIGURE5, 6: FIGURE6, 7: FIGURE7}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Revisiting the Sequential Programming "
                    "Model for Multi-Core' (MICRO 2007)",
    )
    parser.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="logging threshold for the repro.* namespaces (default "
             "warning; chaos/fault injections log at info)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks")

    suite_parser = sub.add_parser("suite", help="evaluate the whole suite (Table 2)")
    _add_common(suite_parser)

    bench_parser = sub.add_parser("bench", help="evaluate one benchmark")
    bench_parser.add_argument("name", choices=suite_names())
    _add_common(bench_parser)

    figure_parser = sub.add_parser("figure", help="regenerate one paper figure")
    figure_parser.add_argument("number", type=int, choices=sorted(_FIGURES))
    _add_common(figure_parser)

    exec_parser = sub.add_parser(
        "exec",
        help="run a workload for real on the multiprocess execution engine",
    )
    exec_parser.add_argument("name", choices=exec_names())
    exec_parser.add_argument(
        "--workers", type=int, default=2,
        help="phase-B worker processes (default 2)",
    )
    exec_parser.add_argument(
        "--capacity", type=int, default=8,
        help="inter-process channel capacity (default 8)",
    )
    exec_parser.add_argument(
        "--batch-size", type=int, default=16,
        help="transport batch size: items carried per channel frame "
             "(default 16; 1 = classic unbatched wire format)",
    )
    exec_parser.add_argument(
        "--flush-interval", type=float, default=0.005,
        help="latency bound in seconds before a partial frame is flushed "
             "(default 0.005)",
    )
    exec_parser.add_argument(
        "--transport", default="pipe", choices=("pipe", "shm", "thread"),
        help="channel wire backend: 'pipe' (mp.Queue, the default), 'shm' "
             "(shared-memory ring buffer — the zero-copy fast path), or "
             "'thread' (in-process workers, no pickling; for debugging "
             "and as a GIL-bound upper bound)",
    )
    exec_parser.add_argument(
        "--inject-faults", action="store_true",
        help="kill one worker mid-task and raise in another, proving "
             "recovery; the plan is drawn from --seed (printed, so any run "
             "is reproducible)",
    )
    exec_parser.add_argument(
        "--seed", type=int, default=None,
        help="seed for fault/chaos injection schedules (default: fresh "
             "entropy, printed for replay)",
    )
    exec_parser.add_argument(
        "--chaos", type=int, metavar="N", default=None,
        help="run the seeded chaos harness with ~N randomized injections "
             "(crashes, hangs, soft faults, forced conflicts, latency, "
             "duplicates, drops) and audit cross-layer invariants",
    )
    exec_parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="periodically checkpoint the committed prefix to PATH",
    )
    exec_parser.add_argument(
        "--checkpoint-interval", type=int, default=8, metavar="K",
        help="commits between checkpoints (default 8)",
    )
    exec_parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="resume from a checkpoint file written by --checkpoint",
    )
    exec_parser.add_argument(
        "--no-throttle", action="store_true",
        help="disable the adaptive speculation-throttling controller",
    )
    exec_parser.add_argument(
        "--calibrate", action="store_true",
        help="also simulate at the matching thread count and print the "
             "simulated-vs-measured calibration table",
    )
    exec_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the run metrics as JSON to PATH",
    )
    exec_parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the engine metrics JSON (latency histograms included) "
             "to PATH — the artifact the CI perf job uploads",
    )
    exec_parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a structured trace of the run (per-process spools, "
             "merged post-run) and write a Chrome trace-event JSON file to "
             "PATH (open it at https://ui.perfetto.dev)",
    )
    exec_parser.add_argument(
        "--no-trace", action="store_true",
        help="force tracing off, overriding --trace (tracing is already "
             "off by default; this pins it for benchmark A/B runs)",
    )
    exec_parser.add_argument(
        "--trace-events", type=int, default=None, metavar="N",
        help="per-process trace ring capacity in records (default 262144; "
             "overflow overwrites the oldest records and is reported as "
             "dropped_events)",
    )
    exec_parser.add_argument(
        "--compare", action="store_true",
        help="print the predicted-vs-measured report: the simulator's "
             "Gantt schedule next to the measured timeline (with --trace) "
             "and per-phase busy-time shares with relative error",
    )
    exec_parser.add_argument(
        "--serve", type=int, metavar="PORT", default=None,
        help="serve live telemetry over HTTP while the run executes: "
             "/metrics (Prometheus text), /snapshot (JSON), /health "
             "(liveness probe; 0 = ephemeral port, logged at startup)",
    )
    exec_parser.add_argument(
        "--watch", action="store_true",
        help="render a live one-line status TUI to stderr (items/sec, "
             "commit lag, occupancy, throttle window, misspec/chaos, health)",
    )
    exec_parser.add_argument(
        "--live-interval", type=float, default=0.2, metavar="SECONDS",
        help="live monitor sampling period (default 0.2)",
    )
    exec_parser.add_argument(
        "--abort-on-stall", action="store_true",
        help="escalate a persistent commit stall from health=degraded to "
             "an engine abort through the degradation path",
    )
    exec_parser.add_argument(
        "--history", metavar="PATH", default=DEFAULT_HISTORY_PATH,
        help="append this run's summary record to the cross-run history "
             f"store (default {DEFAULT_HISTORY_PATH})",
    )
    exec_parser.add_argument(
        "--no-history", action="store_true",
        help="skip the history record for this run",
    )
    exec_parser.add_argument(
        "--label", default=None,
        help="label this run's history record (a name 'repro history "
             "--baseline LABEL' can diff against)",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run the multi-tenant pipeline-as-a-service job server",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="API port (default 0 = ephemeral; the bound port is printed)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="long-lived pool worker processes shared across jobs "
             "(default 2)",
    )
    serve_parser.add_argument(
        "--slots", type=int, default=2,
        help="concurrent job slots — leases that can be out at once "
             "(default 2)",
    )
    serve_parser.add_argument(
        "--capacity", type=int, default=16,
        help="per-slot channel capacity (default 16)",
    )
    serve_parser.add_argument(
        "--batch-size", type=int, default=8,
        help="per-slot transport batch size (default 8)",
    )
    serve_parser.add_argument(
        "--transport", default="pipe", choices=("pipe", "shm"),
        help="per-slot channel wire backend (default pipe; 'thread' is "
             "not available — pool workers are processes)",
    )
    serve_parser.add_argument(
        "--max-queued", type=int, default=16,
        help="global queued-job bound; past it submissions get 429 "
             "(default 16)",
    )
    serve_parser.add_argument(
        "--tenant-quota", type=int, default=8,
        help="queued jobs allowed per tenant (default 8)",
    )
    serve_parser.add_argument(
        "--tenant-running", type=int, default=1,
        help="running jobs allowed per tenant (default 1)",
    )
    serve_parser.add_argument(
        "--weight", action="append", default=[], metavar="TENANT=N",
        help="fair-scheduler weight for a tenant (repeatable; default 1)",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="seconds running jobs get to finish after SIGTERM/SIGINT "
             "before cooperative cancellation (default 10)",
    )
    serve_parser.add_argument(
        "--history", metavar="PATH", default=None, dest="history_path",
        help="append one history record per finished job to PATH",
    )
    serve_parser.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durability root: write-ahead job journal + on-disk artifact "
             "store; restarting with the same DIR re-admits queued jobs, "
             "resumes interrupted ones from their checkpoint, and honors "
             "idempotency keys across the crash (default: in-memory only)",
    )
    serve_parser.add_argument(
        "--checkpoint-interval", type=int, default=8, metavar="K",
        help="commits between engine checkpoints for durable jobs — the "
             "resumable committed prefix is at most K commits stale "
             "(default 8; needs --state-dir)",
    )
    serve_parser.add_argument(
        "--retry-max", type=int, default=1, metavar="N",
        help="default max attempts for jobs that do not set params.retry "
             "(default 1 = a failure is terminal; jobs whose bounded "
             "retries exhaust are dead-lettered)",
    )
    serve_parser.add_argument(
        "--trace-jobs", action="store_true",
        help="trace every job end to end (admission -> scheduler pick -> "
             "lease -> engine phases -> artifact persist) and serve the "
             "merged Chrome trace at GET /jobs/<id>/trace; individual "
             "jobs can opt in with params.trace without this flag",
    )
    serve_parser.add_argument(
        "--postmortem-keep", type=int, default=8, metavar="N",
        help="post-mortem bundles retained per tenant, LRU by mtime "
             "(default 8; bundles are written on failure, dead-letter, "
             "and tenant degradation)",
    )

    obs_parser = sub.add_parser(
        "obs",
        help="offline observability tools over stored service artifacts",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    report_parser = obs_sub.add_parser(
        "report",
        help="aggregate per-tenant per-stage latency percentiles across "
             "every stored job trace artifact",
    )
    report_parser.add_argument(
        "state_dir", metavar="STATE_DIR",
        help="a serve --state-dir (or its artifacts/ directory)",
    )
    report_parser.add_argument(
        "--tenant", default=None,
        help="restrict the report to one tenant",
    )
    analyze_parser = obs_sub.add_parser(
        "analyze",
        help="critical-path analysis and what-if speedup projections over "
             "a recorded trace (an exported Chrome trace file, or a job's "
             "stored trace artifact via --state-dir)",
    )
    analyze_parser.add_argument(
        "target", metavar="TRACE_OR_JOB", nargs="?", default=None,
        help="a Chrome trace file written by --trace, or a JOB_ID when "
             "--state-dir is given",
    )
    analyze_parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="a serve --state-dir (or its artifacts/ directory): analyze "
             "the stored trace.json + metrics.json of job TRACE_OR_JOB",
    )
    analyze_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="the run's --metrics-out JSON (sharpens serialization blame "
             "and pipeline geometry for trace-file mode)",
    )
    analyze_parser.add_argument(
        "--workers", type=int, default=None,
        help="override the worker count when the trace/metrics do not "
             "record it",
    )
    analyze_parser.add_argument(
        "--capacity", type=int, default=None,
        help="override the channel capacity used for what-if replay",
    )
    analyze_parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_out",
        help="also write the machine-readable bottleneck block to PATH",
    )

    audit_parser = sub.add_parser(
        "shm-audit",
        help="scan /dev/shm for orphaned repro ring segments and exit "
             "nonzero if any survive the wait window",
    )
    audit_parser.add_argument(
        "--timeout", type=float, default=5.0,
        help="seconds to wait for lagging resource-tracker reclaims "
             "before declaring segments orphaned (default 5)",
    )
    audit_parser.add_argument(
        "--unlink", action="store_true",
        help="unlink whatever the audit finds after reporting it "
             "(cleanup mode for CI teardown)",
    )

    history_parser = sub.add_parser(
        "history",
        help="diff the latest recorded run against a baseline from the "
             "history store",
    )
    history_parser.add_argument(
        "--history", metavar="PATH", default=DEFAULT_HISTORY_PATH,
        help=f"history store to read (default {DEFAULT_HISTORY_PATH})",
    )
    history_parser.add_argument(
        "--baseline", default=None, metavar="LABEL_OR_INDEX",
        help="baseline record: a --label value or an integer index "
             "(negative = from the end); default: the most recent earlier "
             "run with the same workload, workers, and batch size",
    )
    history_parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="relative regression tolerance for items/sec and gated p95 "
             "latencies (default 0.30)",
    )
    history_parser.add_argument(
        "--check", action="store_true",
        help="CI gate: exit nonzero when any gated metric regresses "
             "beyond tolerance",
    )
    history_parser.add_argument(
        "--list", action="store_true", dest="list_records",
        help="list the most recent history records instead of diffing",
    )
    history_parser.add_argument(
        "--limit", type=int, default=10,
        help="records shown by --list (default 10)",
    )
    history_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the diff (or the record list) as JSON to PATH",
    )
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--threads", type=int, nargs="+", default=None,
        help="thread counts to simulate (default: the paper's 1-32 grid)",
    )
    parser.add_argument(
        "--no-speculation", action="store_true",
        help="ablation: synchronize every conflicting dependence",
    )
    parser.add_argument(
        "--no-commutative", action="store_true",
        help="ablation: ignore Commutative annotations",
    )
    parser.add_argument(
        "--no-ybranch", action="store_true",
        help="ablation: keep Y-branches on sequential policy",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the results as JSON to PATH",
    )


def _config(args) -> FrameworkConfig:
    config = FrameworkConfig()
    overrides = {}
    if args.threads:
        overrides["thread_counts"] = tuple(sorted(set(args.threads)))
    if args.no_speculation:
        overrides["enable_speculation"] = False
    if args.no_commutative:
        overrides["enable_commutative"] = False
    if args.no_ybranch:
        overrides["engage_ybranch"] = False
    return config.with_(**overrides) if overrides else config


def _evaluate_and_print(name: str, framework: ParallelizationFramework) -> "SpeedupReport":
    evaluation = framework.evaluate(make_workload(name))
    print(format_speedup_curve(evaluation.report))
    if evaluation.plan.decisions:
        print("speculation:")
        for decision in evaluation.plan.decisions[:8]:
            print(f"  {decision}")
        if len(evaluation.plan.decisions) > 8:
            print(f"  ... and {len(evaluation.plan.decisions) - 8} more")
    if evaluation.plan.commutative_groups:
        print(f"commutative groups: {', '.join(evaluation.plan.commutative_groups)}")
    print(f"misspeculation rate: {evaluation.misspeculation.rate:.1%}")
    if not evaluation.output_comparison.equivalent:
        print(f"output: {evaluation.output_comparison.note}")
    for warning in evaluation.warnings:
        print(f"WARNING: {warning}")
    paper_threads, paper_speedup = PAPER_TABLE2[name]
    print(f"paper reference: {paper_speedup}x @ {paper_threads} threads")
    return evaluation.report


def _chaos_seed(args) -> int:
    """The run's injection seed: the user's, or fresh printed entropy."""
    import os

    if args.seed is not None:
        return args.seed
    return int.from_bytes(os.urandom(4), "big")


def _trace_config(args):
    """``(TraceConfig, spool_dir)`` for ``--trace``, else ``(None, None)``."""
    if args.no_trace or not args.trace:
        return None, None
    import tempfile

    from repro.obs import TraceConfig

    spool_dir = tempfile.mkdtemp(prefix="repro-trace-")
    kwargs = {"spool_dir": spool_dir}
    if args.trace_events:
        kwargs["max_events"] = args.trace_events
    return TraceConfig(**kwargs), spool_dir


def _export_trace(args, spool_dir):
    """Merge the run's spools, write the Chrome trace, clean up."""
    import shutil

    from repro.obs import merge_spool_dir, write_chrome_trace

    merged = merge_spool_dir(spool_dir)
    write_chrome_trace(merged, args.trace)
    print(merged.format_summary())
    print(f"wrote {args.trace}  (open at https://ui.perfetto.dev)")
    shutil.rmtree(spool_dir, ignore_errors=True)
    return merged


def _attach_trace_bottleneck(merged, metrics) -> None:
    """Upgrade the engine's metrics-only bottleneck estimate to the real
    critical-path analysis once the merged trace is at hand, and print the
    analyzer's verdict."""
    try:
        from repro.obs import analyze_trace

        report = analyze_trace(merged, metrics=metrics.to_json())
        metrics.bottleneck = report.to_json()
        print()
        print(report.format_summary())
    except Exception as error:  # diagnosis must never fail the run
        print(f"bottleneck analysis failed: {error}", file=sys.stderr)


def _ensure_parent(path: str) -> None:
    """An output flag must not fail an otherwise-successful run at the very
    end just because its directory does not exist yet."""
    import os

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)


def _write_metrics(args, metrics) -> None:
    if not args.metrics_out:
        return
    import json

    _ensure_parent(args.metrics_out)
    with open(args.metrics_out, "w") as handle:
        json.dump(metrics.to_json(), handle, indent=2, sort_keys=True)
    print(f"wrote {args.metrics_out}")


def _live_config(args):
    """A ``LiveConfig`` when any live-telemetry flag is set, else None
    (the registry and monitor thread only exist when asked for)."""
    if args.serve is None and not args.watch and not args.abort_on_stall:
        return None
    from repro.obs import LiveConfig

    return LiveConfig(
        interval=args.live_interval,
        serve=args.serve,
        watch=args.watch,
        abort_on_stall=args.abort_on_stall,
    )


def _append_history(
    args, name: str, metrics, *, seed=None, chaos=None, ok=True
) -> None:
    """Append this run's summary record to the cross-run history store."""
    if args.no_history or not args.history:
        return
    from repro.obs import append_record, make_record

    record = make_record(
        name=name,
        metrics=metrics,
        seed=seed,
        label=args.label,
        chaos=chaos,
        ok=ok,
        watchdog=metrics.watchdog,
    )
    append_record(args.history, record)
    print(f"history: appended to {args.history}  "
          f"(diff with: python -m repro history)")


def _run_chaos(args) -> int:
    """``exec NAME --chaos N``: one audited seeded chaos run."""
    from repro.resilience import ChaosConfig, CheckpointConfig, run_chaos

    workload = make_workload(args.name)
    seed = _chaos_seed(args)
    print(f"chaos seed: {seed}  (replay with --seed {seed})")
    checkpoint_config = (
        CheckpointConfig(
            interval=args.checkpoint_interval, path=args.checkpoint
        )
        if args.checkpoint
        else None
    )
    trace_config, spool_dir = _trace_config(args)
    report = run_chaos(
        workload.exec_spec,
        seed,
        workers=args.workers,
        capacity=args.capacity,
        config=ChaosConfig.sized(args.chaos),
        checkpoint_config=checkpoint_config,
        batch_size=args.batch_size,
        flush_interval=args.flush_interval,
        transport=args.transport,
        trace=trace_config,
        live=_live_config(args),
    )
    print(report.format_summary())
    print(report.result.metrics.format_summary())
    if spool_dir is not None:
        merged = _export_trace(args, spool_dir)
        _attach_trace_bottleneck(merged, report.result.metrics)
    _write_metrics(args, report.result.metrics)
    _append_history(
        args, args.name, report.result.metrics,
        seed=seed, chaos=args.chaos, ok=report.ok,
    )
    if args.json:
        import json

        _ensure_parent(args.json)
        with open(args.json, "w") as handle:
            json.dump(report.to_json(), handle, indent=2)
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _run_exec(args) -> int:
    from repro.core.report import CalibrationRow, format_calibration_table
    from repro.exec import ExecutionEngine, FaultPlan, run_sequential
    from repro.resilience import CheckpointConfig, ThrottleConfig

    if args.chaos is not None:
        return _run_chaos(args)

    workload = make_workload(args.name)
    # Fresh specs for the reference and engine runs: phase-A producers may
    # be stateful.
    sequential_output, sequential_seconds = run_sequential(workload.exec_spec())
    spec = workload.exec_spec()
    fault_plan = None
    if args.inject_faults:
        seed = _chaos_seed(args)
        print(f"fault injection seed: {seed}  (replay with --seed {seed})")
        fault_plan = FaultPlan.seeded(spec.iterations, seed)
    checkpoint_config = (
        CheckpointConfig(
            interval=args.checkpoint_interval, path=args.checkpoint
        )
        if args.checkpoint
        else None
    )
    trace_config, spool_dir = _trace_config(args)
    engine = ExecutionEngine(
        workers=args.workers,
        capacity=args.capacity,
        fault_plan=fault_plan,
        throttle=ThrottleConfig(enabled=not args.no_throttle),
        checkpoints=checkpoint_config,
        batch_size=args.batch_size,
        flush_interval=args.flush_interval,
        transport=args.transport,
        trace=trace_config,
        live=_live_config(args),
    )
    result = engine.run(spec, resume_from=args.resume)
    result.metrics.sequential_seconds = sequential_seconds
    if engine.live_server_port is not None:
        print(f"live: served /metrics /snapshot /health on port "
              f"{engine.live_server_port}")

    print(result.metrics.format_summary())
    identical = result.output == sequential_output
    if identical:
        print("output: bit-identical to sequential execution")
    else:
        print(f"output: MISMATCH — engine {result.output!r} "
              f"vs sequential {sequential_output!r}")

    merged = None
    if spool_dir is not None:
        merged = _export_trace(args, spool_dir)
        _attach_trace_bottleneck(merged, result.metrics)

    if args.calibrate:
        threads = args.workers + 2  # + phase-A core + phase-C core
        config = FrameworkConfig().with_(thread_counts=(1, threads))
        evaluation = ParallelizationFramework(config).evaluate(
            make_workload(args.name)
        )
        row = CalibrationRow(
            workers=args.workers,
            threads=threads,
            simulated_speedup=evaluation.report.curve[threads],
            measured_speedup=result.metrics.measured_speedup or 0.0,
        )
        print()
        print(format_calibration_table(args.name, [row]))

    if args.compare:
        from repro.obs import format_report

        threads = args.workers + 2  # + phase-A core + phase-C core
        config = FrameworkConfig().with_(thread_counts=(1, threads))
        evaluation = ParallelizationFramework(config).evaluate(
            make_workload(args.name)
        )
        print()
        print(
            format_report(
                args.name,
                evaluation.graph,
                evaluation.simulations[threads],
                result.metrics.stage_seconds,
                measured_speedup=result.metrics.measured_speedup,
                merged=merged,
            )
        )

    _write_metrics(args, result.metrics)
    _append_history(
        args, args.name, result.metrics,
        seed=args.seed, ok=identical,
    )
    if args.json:
        import json

        _ensure_parent(args.json)
        with open(args.json, "w") as handle:
            json.dump(result.metrics.to_json(), handle, indent=2)
        print(f"wrote {args.json}")
    return _exec_exit_code(identical, result.metrics)


def _exec_exit_code(identical: bool, metrics) -> int:
    """``exec``'s exit status: 0 clean, 1 output mismatch, 2 when the run
    only finished by giving up on parallelism (watchdog degraded/aborted or
    the engine fell back to sequential) — CI must not count those as green."""
    if not identical:
        return 1
    watchdog = metrics.watchdog or {}
    unhealthy = watchdog.get("health") in ("degraded", "aborted")
    if unhealthy or metrics.degraded_to_sequential:
        state = watchdog.get("health") or "degraded"
        print(f"run completed {state}: exiting 2")
        return 2
    return 0


def _run_serve(args) -> int:
    """``serve``: the job server, until SIGTERM/SIGINT starts a drain."""
    import signal
    import threading

    from repro.service import PipelineService, ServiceConfig

    weights = {}
    for item in args.weight:
        name, sep, value = item.partition("=")
        if not sep or not name or not value.isdigit() or int(value) < 1:
            print(f"bad --weight {item!r}: expected TENANT=N with N >= 1",
                  file=sys.stderr)
            return 2
        weights[name] = int(value)

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        pool_workers=args.workers,
        slots=args.slots,
        capacity=args.capacity,
        batch_size=args.batch_size,
        transport=args.transport,
        max_queued=args.max_queued,
        tenant_queued_quota=args.tenant_quota,
        tenant_running_quota=args.tenant_running,
        weights=weights,
        drain_timeout=args.drain_timeout,
        history_path=args.history_path,
        state_dir=args.state_dir,
        checkpoint_interval=args.checkpoint_interval,
        default_max_attempts=args.retry_max,
        trace_jobs=args.trace_jobs,
        postmortem_keep=args.postmortem_keep,
    )
    service = PipelineService(config).start()
    if service.durable and service.recovery.recovered:
        print(f"recovered from {args.state_dir}: "
              f"{service.recovery.to_json()}", flush=True)
    # The smoke harness parses this exact line for the bound port.
    print(f"serving on http://{args.host}:{service.port}", flush=True)

    stop = threading.Event()

    def _graceful(signum, frame):
        service.request_drain()  # new submissions now get 503
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    while not stop.is_set():
        stop.wait(0.2)
    clean = service.drain_and_stop(args.drain_timeout)
    print("drained cleanly" if clean else "drain timed out: jobs cancelled",
          flush=True)
    return 0 if clean else 1


def _run_shm_audit(args) -> int:
    """``shm-audit``: fail loudly when a run leaked shared-memory rings."""
    from repro.exec.transport import reap_stale_segments, wait_for_reclaim

    leaked = wait_for_reclaim(timeout=args.timeout)
    if not leaked:
        print("shm-audit: clean (no repro segments in /dev/shm)")
        return 0
    print(f"shm-audit: {len(leaked)} orphaned segment(s) after "
          f"{args.timeout:.1f}s:", file=sys.stderr)
    for name in leaked:
        print(f"  /dev/shm/{name}", file=sys.stderr)
    if args.unlink:
        from multiprocessing import shared_memory

        reaped = reap_stale_segments()
        for name in reaped:
            print(f"  unlinked {name} (creator dead)", file=sys.stderr)
        for name in leaked:
            if name in reaped:
                continue
            try:
                segment = shared_memory.SharedMemory(name=name)
                segment.close()
                segment.unlink()
                print(f"  unlinked {name}", file=sys.stderr)
            except FileNotFoundError:
                pass
    return 1


def _run_history(args) -> int:
    """``history``: diff the latest recorded run against a baseline."""
    from repro.obs.history import (
        diff_records,
        format_history_diff,
        format_history_list,
        load_history,
        select_baseline,
    )

    records = load_history(args.history)
    if not records:
        print(f"history: no records in {args.history} "
              f"(run 'python -m repro exec ...' first)")
        return 1

    if args.list_records:
        print(format_history_list(records, limit=args.limit))
        if args.json:
            import json

            _ensure_parent(args.json)
            with open(args.json, "w") as handle:
                json.dump(records[-args.limit:], handle, indent=2)
            print(f"wrote {args.json}")
        return 0

    latest = records[-1]
    baseline = select_baseline(records, latest, args.baseline)
    if baseline is None or baseline is latest:
        selector = (
            f"baseline {args.baseline!r}" if args.baseline
            else "a comparable earlier run"
        )
        print(f"history: {selector} not found in {args.history} "
              f"({len(records)} record(s))")
        print(format_history_list(records, limit=args.limit))
        # Nothing to diff against is a setup problem for --check, not a
        # regression: fail loudly only when the gate was requested.
        return 1 if args.check else 0

    diff = diff_records(baseline, latest, tolerance=args.tolerance)
    print(format_history_diff(diff))
    if args.json:
        import json

        _ensure_parent(args.json)
        with open(args.json, "w") as handle:
            json.dump(diff.to_json(), handle, indent=2)
        print(f"wrote {args.json}")
    if args.check and not diff.ok:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    # Configured before any child process forks so the repro.exec /
    # repro.resilience namespaces inherit the threshold.
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )

    if args.command == "exec":
        return _run_exec(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "obs":
        import os

        if args.obs_command == "analyze":
            from repro.obs.analyze import run_analyze

            text, code = run_analyze(
                args.target,
                state_dir=args.state_dir,
                metrics_path=args.metrics,
                workers=args.workers,
                capacity=args.capacity,
                json_out=args.json_out,
            )
        else:
            from repro.obs.jobtrace import run_report

            text, code = run_report(args.state_dir, tenant=args.tenant)
        try:
            print(text)
        except BrokenPipeError:  # report piped through e.g. ``| head``
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return code

    if args.command == "shm-audit":
        return _run_shm_audit(args)

    if args.command == "history":
        return _run_history(args)

    if args.command == "list":
        for name in suite_names():
            threads, speedup = PAPER_TABLE2[name]
            print(f"{name:<12} paper: {speedup:6.2f}x @ {threads} threads")
        return 0

    framework = ParallelizationFramework(_config(args))

    if args.command == "bench":
        _evaluate_and_print(args.name, framework)
        return 0

    if args.command == "figure":
        for name in _FIGURES[args.number]:
            print(f"=== {name} ===")
            _evaluate_and_print(name, framework)
            print()
        return 0

    # suite
    suite = SuiteReport()
    for name in suite_names():
        evaluation = framework.evaluate(make_workload(name))
        suite.add(evaluation.report)
        print(f"evaluated {name}: {evaluation.report.best_speedup:.2f}x")
    print()
    print(suite.format_table())
    if args.json:
        import json

        from repro.core.report import suite_to_json

        with open(args.json, "w") as handle:
            json.dump(suite_to_json(suite), handle, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
