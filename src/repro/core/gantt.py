"""ASCII Gantt rendering of simulated schedules.

Turns a :class:`~repro.core.simulator.SimulationResult` into a per-core
timeline, which is how the examples show *why* a plan behaves as it does —
pipeline fill, the B-core fan-out, serialization stalls, the C-core commit
chain — without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.simulator import SimulationResult
from repro.core.tasks import TaskGraph


def render_gantt(
    graph: TaskGraph,
    result: SimulationResult,
    width: int = 100,
    max_cores: Optional[int] = 16,
) -> str:
    """Render the schedule as one row per core.

    Each cell is one time bucket; the glyph is the phase letter of the task
    occupying most of that bucket on that core (``.`` for idle).  Tasks
    shorter than a bucket may not appear — the picture is for humans, the
    numbers are in the result object.
    """
    if result.makespan == 0 or not graph.tasks:
        return "(empty schedule)"
    if not result.task_start_times:
        raise ValueError("result lacks start times; re-run the simulation")

    bucket = max(1, -(-result.makespan // width))  # ceil
    columns = -(-result.makespan // bucket)
    cores = sorted(result.core_busy_time)
    if max_cores is not None and len(cores) > max_cores:
        shown = cores[: max_cores - 1] + [cores[-1]]
    else:
        shown = cores

    rows: Dict[int, List[str]] = {core: ["."] * columns for core in shown}
    for task in graph.tasks:
        core = result.task_cores[task.index]
        if core not in rows:
            continue
        start = result.task_start_times[task.index]
        end = result.task_end_times[task.index]
        for column in range(start // bucket, min(-(-end // bucket), columns)):
            rows[core][column] = task.phase.value

    lines = [
        f"t = 0 .. {result.makespan} work units "
        f"({bucket} units per column, speedup {result.speedup:.2f}x)"
    ]
    for core in shown:
        label = _core_label(core, result)
        lines.append(f"core {core:>3} {label} |{''.join(rows[core])}|")
    if max_cores is not None and len(cores) > max_cores:
        lines.insert(len(lines) - 1, f"         ... {len(cores) - max_cores} cores elided ...")
    return "\n".join(lines)


def _core_label(core: int, result: SimulationResult) -> str:
    plan = result.plan
    if core == plan.a_core and core == plan.c_core:
        return "(A+C)"
    if core == plan.a_core:
        return "(A)  "
    if core == plan.c_core:
        return "(C)  "
    return "(B)  "
