"""Tasks, phases and the task dependence graph (Sections 3.1-3.2).

The paper decomposes every studied loop into three phases:

    "Ignoring dependences that were speculated, the tasks from the first
    phase of each application depended only on prior tasks from the first
    phase.  Tasks from the second phase depended on the corresponding task
    from the first phase.  Finally, tasks from the third phase depended on
    the corresponding task from the second phase as well as prior tasks
    from the third phase."

:class:`TaskGraph` holds the dynamic tasks plus the *extra* dependences the
structural pattern does not imply: serialization edges from speculated
dependences that actually occurred, synchronization chains, and Commutative
atomic-section costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.profiling.memory_profile import MemoryProfile
from repro.profiling.tracer import TraceResult
from repro.speculation.manager import SpeculationPlan

Location = Tuple[str, Hashable]


class Phase(Enum):
    """The three pipeline phases of Section 3.2."""

    A = "A"  # sequential produce stage (one core)
    B = "B"  # replicated parallel stage (dynamically assigned cores)
    C = "C"  # sequential consume stage (one core)

    @property
    def sequential(self) -> bool:
        return self is not Phase.B


@dataclass
class Task:
    """One dynamic task.

    Attributes:
        index: position in original sequential execution order.
        phase: which pipeline phase the task's static region belongs to.
        iteration: originating loop iteration.
        cost: execution time in abstract work units.
        section_costs: work spent inside Commutative groups, by group name;
            these slices execute under the group's mutual exclusion.
    """

    index: int
    phase: Phase
    iteration: int
    cost: int
    section_costs: Dict[str, int] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"Task({self.phase.value}{self.iteration}, cost={self.cost})"


@dataclass(frozen=True)
class SerializationEdge:
    """An extra ordering constraint between two tasks.

    ``reason`` is ``"misspeculation"`` for a speculated dependence that
    actually occurred (the simulator serializes it, charging no extra cost,
    per Section 3.1) or ``"synchronization"`` for a dependence the plan chose
    to synchronize.  ``location`` names the responsible shared state.
    """

    source: int
    target: int
    reason: str
    location: Optional[Location] = None


class TaskGraph:
    """Tasks in sequential order plus extra ordering constraints."""

    def __init__(self, tasks: Sequence[Task], edges: Sequence[SerializationEdge] = ()) -> None:
        self.tasks = list(tasks)
        for position, task in enumerate(self.tasks):
            if task.index != position:
                raise ValueError(
                    f"task at position {position} has index {task.index}; "
                    "tasks must be supplied in sequential order"
                )
        self.edges: List[SerializationEdge] = []
        self._incoming: Dict[int, List[SerializationEdge]] = {}
        for edge in edges:
            self.add_edge(edge)

    def add_edge(self, edge: SerializationEdge) -> None:
        if edge.source >= edge.target:
            raise ValueError(
                f"serialization edge {edge.source}->{edge.target} is not "
                "forward in sequential order"
            )
        if edge.target >= len(self.tasks) or edge.source < 0:
            raise ValueError(f"edge {edge.source}->{edge.target} out of range")
        self.edges.append(edge)
        self._incoming.setdefault(edge.target, []).append(edge)

    # -- queries -------------------------------------------------------------------

    def incoming(self, task_index: int) -> List[SerializationEdge]:
        return list(self._incoming.get(task_index, []))

    def tasks_in_phase(self, phase: Phase) -> List[Task]:
        return [task for task in self.tasks if task.phase is phase]

    def iterations(self) -> int:
        if not self.tasks:
            return 0
        return max(task.iteration for task in self.tasks) + 1

    def total_cost(self) -> int:
        """Single-threaded time: the sum of all task costs."""
        return sum(task.cost for task in self.tasks)

    def phase_cost(self, phase: Phase) -> int:
        return sum(task.cost for task in self.tasks_in_phase(phase))

    def misspeculation_edges(self) -> List[SerializationEdge]:
        return [edge for edge in self.edges if edge.reason == "misspeculation"]

    def commutative_groups(self) -> List[str]:
        groups = set()
        for task in self.tasks:
            groups.update(task.section_costs)
        return sorted(groups)

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:
        return f"TaskGraph({len(self.tasks)} tasks, {len(self.edges)} extra edges)"

    # -- construction from a trace --------------------------------------------------

    @classmethod
    def from_trace(
        cls,
        trace: TraceResult,
        profile: Optional[MemoryProfile] = None,
        plan: Optional[SpeculationPlan] = None,
    ) -> "TaskGraph":
        """Build the graph the simulator needs from one profiled run.

        Without a plan, every cross-task dynamic dependence is honored
        (fully conservative).  With a plan:

        - speculated locations contribute their actual dynamic dependences
          as ``misspeculation`` edges — a speculated dependence that really
          occurred serializes the dependent task, with no additional cost
          (Section 3.1);
        - synchronized locations contribute the same actual dependences as
          ``synchronization`` edges — the value flows through a queue at a
          known program point instead of through rollback hardware, but the
          serialization it imposes is identical (reads never conflict with
          reads, so only true RAW/WAR/WAW pairs are ordered);
        - other locations' dependences are dropped: they were proven
          iteration-private (versioned-memory privatization) or erased by a
          Commutative annotation.
        """
        tasks = [
            Task(
                index=record.index,
                phase=Phase(record.phase),
                iteration=record.iteration,
                cost=record.cost,
            )
            for record in trace.tasks
        ]
        for (task_index, group), cost in trace.section_costs.items():
            tasks[task_index].section_costs[group] = (
                tasks[task_index].section_costs.get(group, 0) + cost
            )

        graph = cls(tasks)
        if profile is None:
            return graph

        if plan is None:
            for dependence in profile.dependences:
                if dependence.source_index < dependence.target_index:
                    graph.add_edge(
                        SerializationEdge(
                            dependence.source_index,
                            dependence.target_index,
                            reason="synchronization",
                            location=dependence.location,
                        )
                    )
            return graph

        seen = set()
        for dependence in profile.dependences:
            if dependence.source_index >= dependence.target_index:
                continue
            if dependence.kind != "raw":
                # The versioned memory subsystem ([33], Section 3.1)
                # privatizes anti and output dependences: each task writes
                # its own version and commits in order, so only true (RAW)
                # dependences ever serialize execution.
                continue
            if dependence.location in plan.speculated:
                reason = "misspeculation"
            elif dependence.location in plan.synchronized:
                reason = "synchronization"
            else:
                continue
            key = (dependence.source_index, dependence.target_index)
            if key in seen:
                continue
            seen.add(key)
            graph.add_edge(
                SerializationEdge(
                    dependence.source_index,
                    dependence.target_index,
                    reason=reason,
                    location=dependence.location,
                )
            )
        return graph
