"""The parallelization framework: the paper's primary contribution.

- :mod:`repro.core.tasks` — tasks, phases and the task dependence graph the
  simulator consumes (Section 3.1-3.2 methodology);
- :mod:`repro.core.plan` — execution plans: which cores run which phases;
- :mod:`repro.core.simulator` — the multi-core performance simulator with
  queue backpressure, dynamic least-loaded B-core assignment, Commutative
  atomic sections and misspeculation-as-serialization;
- :mod:`repro.core.framework` — the orchestrator tying profiling,
  annotations, speculation, partitioning, planning and simulation together
  for both the IR route and the trace route;
- :mod:`repro.core.report` — speedup curves, Table 2's Moore's-law
  comparison, and suite-level aggregation.
"""

from repro.core.framework import (
    FrameworkConfig,
    ParallelizationFramework,
    WorkloadEvaluation,
)
from repro.core.gantt import render_gantt
from repro.core.plan import ExecutionPlan
from repro.core.report import SpeedupReport, SuiteReport, moores_law_speedup
from repro.core.simulator import PipelineSimulator, SimulationResult
from repro.core.tasks import Phase, SerializationEdge, Task, TaskGraph

__all__ = [
    "ExecutionPlan",
    "FrameworkConfig",
    "ParallelizationFramework",
    "Phase",
    "PipelineSimulator",
    "SerializationEdge",
    "SimulationResult",
    "SpeedupReport",
    "SuiteReport",
    "Task",
    "TaskGraph",
    "WorkloadEvaluation",
    "moores_law_speedup",
    "render_gantt",
]
