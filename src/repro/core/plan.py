"""Execution plans: which cores run which phases (Section 3.2).

    "Tasks from the first phase were executed serially on a single core.
    Tasks from the second phase were then executed in parallel with one
    another through dynamic assignment to the core with the least amount of
    work enqueued.  Finally, like the first phase, tasks from the third
    phase executed serially on a single core."

The plan degrades gracefully at small core counts: with one core everything
is sequential; with two, the sequential phases share core 0 and phase B gets
core 1; from three cores up, A and C get dedicated cores and B takes the
rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.tasks import Phase
from repro.hw.machine import MachineConfig


@dataclass(frozen=True)
class ExecutionPlan:
    """Core assignment for the three phases."""

    machine: MachineConfig
    a_core: Optional[int]
    c_core: Optional[int]
    b_cores: List[int]

    @classmethod
    def for_machine(
        cls,
        machine: MachineConfig,
        has_a: bool = True,
        has_c: bool = True,
    ) -> "ExecutionPlan":
        cores = machine.cores
        if cores == 1:
            return cls(machine, a_core=0 if has_a else None,
                       c_core=0 if has_c else None, b_cores=[0])

        sequential_cores_needed = 0
        a_core = c_core = None
        if has_a and has_c:
            if cores >= 3:
                a_core, c_core = 0, cores - 1
                b_cores = list(range(1, cores - 1))
            else:  # cores == 2: A and C share core 0
                a_core = c_core = 0
                b_cores = [1]
        elif has_a:
            a_core = 0
            b_cores = list(range(1, cores))
        elif has_c:
            c_core = cores - 1
            b_cores = list(range(0, cores - 1))
        else:
            b_cores = list(range(cores))
        return cls(machine, a_core=a_core, c_core=c_core, b_cores=b_cores)

    @property
    def is_sequential(self) -> bool:
        """True when every phase shares one core — no parallelism possible."""
        cores_used = set(self.b_cores)
        if self.a_core is not None:
            cores_used.add(self.a_core)
        if self.c_core is not None:
            cores_used.add(self.c_core)
        return len(cores_used) <= 1

    @property
    def replication_width(self) -> int:
        """How many copies of the parallel stage run concurrently."""
        return len(self.b_cores)

    def core_of_phase(self, phase: Phase) -> Optional[int]:
        if phase is Phase.A:
            return self.a_core
        if phase is Phase.C:
            return self.c_core
        return None

    def describe(self) -> str:
        pieces = []
        if self.a_core is not None:
            pieces.append(f"A->core{self.a_core}")
        pieces.append(
            f"B->cores{{{self.b_cores[0]}..{self.b_cores[-1]}}}"
            if len(self.b_cores) > 1
            else f"B->core{self.b_cores[0]}"
        )
        if self.c_core is not None:
            pieces.append(f"C->core{self.c_core}")
        return ", ".join(pieces)
