"""Speedup reporting: the figures' curves and Table 2's summary.

Table 2 compares each benchmark's best speedup against the "Moore's Law
Speedup": assuming transistor counts double every 18 months and performance
historically doubled every 3 years, every doubling of cores must yield 1.4x
to stay on trend — so the expected speedup at *t* threads is
``1.4 ** log2(t)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import exp, log, log2
from typing import Dict, List, Sequence, Tuple


def moores_law_speedup(threads: int) -> float:
    """Speedup needed at ``threads`` cores to maintain historical trends.

    1.4x per doubling of cores: ``moores_law_speedup(32) == 1.4**5 == 5.38``,
    matching Table 2's column for the 32-thread benchmarks.
    """
    if threads < 1:
        raise ValueError(f"thread count must be positive, got {threads}")
    return 1.4 ** log2(threads)


@dataclass
class SpeedupReport:
    """One benchmark's speedup curve plus Table 2 derived columns."""

    name: str
    curve: Dict[int, float]  # thread count -> speedup
    notes: str = ""

    @property
    def best_speedup(self) -> float:
        return max(self.curve.values())

    @property
    def best_threads(self) -> int:
        """Minimum thread count achieving the maximum speedup (Table 2).

        The paper reports "the minimum # of threads at which the maximum
        speedup occurs"; speedups within 1% of the maximum count as achieving
        it, mirroring the saturation the paper's curves show.
        """
        best = self.best_speedup
        for threads in sorted(self.curve):
            if self.curve[threads] >= 0.99 * best:
                return threads
        return max(self.curve)

    @property
    def moores_speedup(self) -> float:
        return moores_law_speedup(self.best_threads)

    @property
    def ratio(self) -> float:
        """Actual speedup over the Moore's-law requirement (Table 2's last column)."""
        return self.speedup_at_best / self.moores_speedup

    @property
    def speedup_at_best(self) -> float:
        return self.curve[self.best_threads]

    def row(self) -> Tuple[str, int, float, float, float]:
        return (
            self.name,
            self.best_threads,
            self.speedup_at_best,
            self.moores_speedup,
            self.ratio,
        )

    def format_row(self) -> str:
        name, threads, speedup, moores, ratio = self.row()
        return f"{name:<12} {threads:>9} {speedup:>8.2f} {moores:>16.2f} {ratio:>6.2f}"


@dataclass
class SuiteReport:
    """Aggregates per-benchmark reports into Table 2 (with GeoMean/ArithMean)."""

    reports: List[SpeedupReport] = field(default_factory=list)

    def add(self, report: SpeedupReport) -> None:
        self.reports.append(report)

    def geo_mean_row(self) -> Tuple[str, float, float, float, float]:
        n = len(self.reports)
        if n == 0:
            raise ValueError("empty suite")
        threads = exp(sum(log(r.best_threads) for r in self.reports) / n)
        speedup = exp(sum(log(r.speedup_at_best) for r in self.reports) / n)
        moores = exp(sum(log(r.moores_speedup) for r in self.reports) / n)
        ratio = exp(sum(log(r.ratio) for r in self.reports) / n)
        return ("GeoMean", threads, speedup, moores, ratio)

    def arith_mean_row(self) -> Tuple[str, float, float, float, float]:
        n = len(self.reports)
        if n == 0:
            raise ValueError("empty suite")
        threads = sum(r.best_threads for r in self.reports) / n
        speedup = sum(r.speedup_at_best for r in self.reports) / n
        moores = sum(r.moores_speedup for r in self.reports) / n
        ratio = sum(r.ratio for r in self.reports) / n
        return ("ArithMean", threads, speedup, moores, ratio)

    def format_table(self) -> str:
        """Render Table 2: benchmark, # threads, speedup, Moore's, ratio."""
        header = (
            f"{'Benchmark':<12} {'# Threads':>9} {'Speedup':>8} "
            f"{'Moores Speedup':>16} {'Ratio':>6}"
        )
        lines = [header, "-" * len(header)]
        for report in self.reports:
            lines.append(report.format_row())
        lines.append("-" * len(header))
        for label, threads, speedup, moores, ratio in (
            self.geo_mean_row(),
            self.arith_mean_row(),
        ):
            lines.append(
                f"{label:<12} {threads:>9.0f} {speedup:>8.2f} "
                f"{moores:>16.2f} {ratio:>6.2f}"
            )
        return "\n".join(lines)


def curve_to_csv(reports: Sequence[SpeedupReport]) -> str:
    """All reports' curves as CSV: benchmark,threads,speedup rows."""
    lines = ["benchmark,threads,speedup"]
    for report in reports:
        for threads in sorted(report.curve):
            lines.append(f"{report.name},{threads},{report.curve[threads]:.4f}")
    return "\n".join(lines) + "\n"


def suite_to_json(suite: "SuiteReport") -> Dict:
    """Table 2 as a JSON-ready structure (used by the CLI and benches)."""
    rows = []
    for report in suite.reports:
        name, threads, speedup, moores, ratio = report.row()
        rows.append(
            {
                "benchmark": name,
                "threads": threads,
                "speedup": round(speedup, 4),
                "moores_speedup": round(moores, 4),
                "ratio": round(ratio, 4),
                "curve": {str(t): round(s, 4) for t, s in sorted(report.curve.items())},
            }
        )
    geo = suite.geo_mean_row()
    arith = suite.arith_mean_row()
    return {
        "rows": rows,
        "geomean": {"threads": geo[1], "speedup": geo[2], "ratio": geo[4]},
        "arithmean": {"threads": arith[1], "speedup": arith[2], "ratio": arith[4]},
    }


@dataclass(frozen=True)
class CalibrationRow:
    """One simulated-vs-measured point from the execution engine.

    The engine's N phase-B workers correspond to a simulated plan with
    N + 2 threads (one phase-A core, one phase-C core); ``threads`` records
    that mapping so rows line up against the simulator's curves.
    """

    workers: int
    threads: int
    simulated_speedup: float
    measured_speedup: float

    @property
    def ratio(self) -> float:
        """Measured over simulated — 1.0 means the model is perfectly calibrated."""
        if self.simulated_speedup <= 0:
            raise ValueError("simulated speedup must be positive")
        return self.measured_speedup / self.simulated_speedup


def format_calibration_table(name: str, rows: Sequence[CalibrationRow]) -> str:
    """Render the simulated-vs-measured calibration table for one workload."""
    header = (
        f"{'Workers':>7} {'Threads':>7} {'Simulated':>10} "
        f"{'Measured':>9} {'Ratio':>6}"
    )
    lines = [f"{name} — simulated vs. measured speedup", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.workers:>7} {row.threads:>7} {row.simulated_speedup:>10.2f} "
            f"{row.measured_speedup:>9.2f} {row.ratio:>6.2f}"
        )
    return "\n".join(lines)


def format_speedup_curve(report: SpeedupReport, width: int = 50) -> str:
    """ASCII rendition of one figure panel (speedup vs. thread count)."""
    lines = [f"{report.name} — speedup vs. threads"]
    peak = max(report.best_speedup, 1.0)
    for threads in sorted(report.curve):
        speedup = report.curve[threads]
        bar = "#" * max(1, round(width * speedup / peak))
        lines.append(f"{threads:>3} | {bar} {speedup:.2f}")
    return "\n".join(lines)
