"""The parallelization framework orchestrator.

Two front doors:

- :meth:`ParallelizationFramework.evaluate` — the **trace route** used for
  the paper's evaluation: run a workload analog sequentially under the
  tracer, build the memory profile, choose speculation, construct the task
  graph, and simulate it across thread counts (Sections 3.1-3.2);
- :meth:`ParallelizationFramework.parallelize_loop` — the **IR route**: take
  a whole program and a loop, build the PDG, apply profile-guided
  speculation, partition with speculative PS-DSWP, and return the stage
  assignment plus a synthetic task graph for simulation (Sections 2.1-2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.annotations.registry import global_registry
from repro.core.plan import ExecutionPlan
from repro.core.report import SpeedupReport
from repro.core.simulator import PipelineSimulator, SimulationResult
from repro.core.tasks import Phase, TaskGraph
from repro.hw.machine import MachineConfig
from repro.profiling.context import activate
from repro.profiling.branch_profile import BranchProfile, BranchSummary
from repro.profiling.loop_profile import LoopProfile
from repro.profiling.memory_profile import MemoryProfile
from repro.profiling.tracer import Tracer, TraceResult
from repro.profiling.value_profile import SiteSummary, ValueProfile
from repro.speculation.manager import SpeculationPlan, plan_from_profile
from repro.speculation.misspec import MisspeculationReport, analyze_misspeculation
from repro.workloads.base import OutputComparison, Workload

#: Thread counts matching the paper's figures (1 to 32 cores); the grid
#: includes every best-threads value Table 2 reports (5, 8, 10, 12, 15, 16, 32).
DEFAULT_THREAD_COUNTS: Tuple[int, ...] = (
    1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 15, 16, 20, 24, 28, 32
)


@dataclass(frozen=True)
class FrameworkConfig:
    """Knobs of the framework; the defaults reproduce the paper's setup.

    The booleans are the ablation switches benchmarked in
    ``benchmarks/test_ablations.py``:

    - ``enable_speculation=False`` synchronizes every conflicting location
      (no alias/value speculation at all);
    - ``enable_commutative=False`` ignores Commutative annotations (their
      accesses become ordinary dependences);
    - ``engage_ybranch=False`` leaves Y-branches on sequential policy.
    """

    machine: MachineConfig = field(default_factory=MachineConfig)
    thread_counts: Tuple[int, ...] = DEFAULT_THREAD_COUNTS
    enable_speculation: bool = True
    enable_commutative: bool = True
    engage_ybranch: bool = True

    def with_(self, **overrides) -> "FrameworkConfig":
        return replace(self, **overrides)


@dataclass
class WorkloadEvaluation:
    """Everything :meth:`ParallelizationFramework.evaluate` produces.

    ``warnings`` collects correctness caveats the framework detected — most
    importantly Commutative groups used under speculation without a
    registered rollback function, which Section 2.3.2 requires ("a rollback
    function existed to undo the effects of calls to the Commutative
    function").
    """

    workload: Workload
    report: SpeedupReport
    sequential_trace: TraceResult
    parallel_trace: TraceResult
    profile: MemoryProfile
    plan: SpeculationPlan
    graph: TaskGraph
    misspeculation: MisspeculationReport
    simulations: Dict[int, SimulationResult]
    output_comparison: OutputComparison
    warnings: List[str] = field(default_factory=list)
    #: Value sites the profile proved predictable enough to speculate
    #: (Section 4.1.3's PL_stack_sp discovery, crafty's search state, ...).
    value_speculations: List[SiteSummary] = field(default_factory=list)
    #: Branch sites biased enough for control speculation (crafty's
    #: next_time_check).  Y-branches are excluded — they need no bias.
    control_speculations: List[BranchSummary] = field(default_factory=list)

    @property
    def sequential_cost(self) -> int:
        return self.sequential_trace.total_cost

    def speedup_at(self, threads: int) -> float:
        return self.report.curve[threads]


class ParallelizationFramework:
    """Ties profiling, annotation, speculation, planning and simulation together."""

    def __init__(self, config: Optional[FrameworkConfig] = None) -> None:
        self.config = config or FrameworkConfig()

    # ----------------------------------------------------------------------------
    # Trace route
    # ----------------------------------------------------------------------------

    def profile_workload(self, workload: Workload, parallel_policy: bool) -> Tuple[TraceResult, Any]:
        """Run ``workload`` once under the tracer; returns (trace, output).

        ``parallel_policy`` engages Y-branch interval firing; sequential
        policy reproduces the original program bit-for-bit.
        """
        registry = global_registry()
        if parallel_policy and self.config.engage_ybranch:
            registry.engage_parallel_policies()
        else:
            registry.restore_sequential_policies()
        try:
            tracer = Tracer()
            with activate(tracer):
                output = workload.run(tracer)
            return tracer.finish(), output
        finally:
            registry.restore_sequential_policies()

    def evaluate(self, workload: Workload) -> WorkloadEvaluation:
        """Full pipeline: profile → speculate → plan → simulate → report."""
        sequential_trace, sequential_output = self.profile_workload(
            workload, parallel_policy=False
        )
        if workload.uses_ybranch and self.config.engage_ybranch:
            parallel_trace, parallel_output = self.profile_workload(
                workload, parallel_policy=True
            )
        else:
            parallel_trace, parallel_output = sequential_trace, sequential_output

        profile = MemoryProfile(
            parallel_trace, honor_commutative=self.config.enable_commutative
        )
        plan = self._choose_speculation(workload, profile)
        graph = TaskGraph.from_trace(parallel_trace, profile, plan)
        misspeculation = analyze_misspeculation(profile, plan)

        # The single-threaded baseline is the *sequential-policy* run: the
        # paper reports MT speedup over the original single-threaded program.
        st_cost = sequential_trace.total_cost
        simulations: Dict[int, SimulationResult] = {}
        curve: Dict[int, float] = {}
        for threads in self.config.thread_counts:
            simulator = PipelineSimulator(self.config.machine.with_cores(threads))
            result = simulator.simulate(graph)
            simulations[threads] = result
            curve[threads] = st_cost / result.makespan if result.makespan else 1.0

        warnings: List[str] = []
        if self.config.enable_speculation and plan.commutative_groups:
            registry = global_registry()
            known = set(registry.commutative_groups())
            for group in registry.validate_rollbacks(
                [g for g in plan.commutative_groups if g in known]
            ):
                warnings.append(
                    f"Commutative group {group!r} is used under speculation "
                    "but registers no rollback function (Section 2.3.2)"
                )

        value_speculations: List[SiteSummary] = []
        control_speculations: List[BranchSummary] = []
        if self.config.enable_speculation:
            value_speculations = ValueProfile(parallel_trace).speculation_candidates()
            control_speculations = [
                summary
                for summary in BranchProfile(parallel_trace).speculation_candidates()
                if not summary.is_ybranch
            ]

        report = SpeedupReport(name=workload.name, curve=curve)
        comparison = workload.compare_outputs(sequential_output, parallel_output)
        return WorkloadEvaluation(
            workload=workload,
            report=report,
            sequential_trace=sequential_trace,
            parallel_trace=parallel_trace,
            profile=profile,
            plan=plan,
            graph=graph,
            misspeculation=misspeculation,
            simulations=simulations,
            output_comparison=comparison,
            warnings=warnings,
            value_speculations=value_speculations,
            control_speculations=control_speculations,
        )

    def _choose_speculation(self, workload: Workload, profile: MemoryProfile) -> SpeculationPlan:
        if not self.config.enable_speculation:
            # Ablation: synchronize every conflicting location.
            plan = plan_from_profile(
                profile,
                synchronize_rate_threshold=-1.0,  # everything >= threshold
                forced_synchronized=(),
                forced_speculated=(),
            )
            return plan
        return plan_from_profile(
            profile,
            synchronize_rate_threshold=workload.synchronize_rate_threshold,
            forced_synchronized=workload.forced_synchronized(),
            forced_speculated=workload.forced_speculated(),
        )

    # ----------------------------------------------------------------------------
    # IR route
    # ----------------------------------------------------------------------------

    def parallelize_loop(self, program, loop, *, branch_profile=None,
                         value_profile=None, memory_conflict_rates=None,
                         iterations: int = 64, inline_calls: bool = False,
                         profile_arguments: Optional[Sequence[int]] = None,
                         profile_entry: Optional[str] = None):
        """Speculative PS-DSWP on an IR loop; see :mod:`repro.dswp`.

        With ``inline_calls=True`` the whole-program scope of Section 2.2 is
        applied first: eligible call sites inside the loop are inlined so
        deeply nested code becomes visible to the partitioner.  With
        ``profile_arguments`` (a list of integers for the entry function),
        the program is first *executed* through the interpreter and the
        branch/value/conflict profiles are collected from that run — the
        profile-guided speculation of Section 2.1, end to end.  Returns a
        :class:`repro.dswp.partition.Partition` whose synthetic task graph
        can be fed straight to :class:`PipelineSimulator`.
        """
        from repro.analysis.callgraph import compute_side_effects
        from repro.dswp.partition import partition_loop
        from repro.ir.inline import inline_loop_calls

        if inline_calls:
            loop = inline_loop_calls(program, loop)
        if profile_arguments is not None:
            from repro.ir.profile_collector import collect_profiles

            profiles = collect_profiles(
                program, loop, entry=profile_entry, arguments=profile_arguments
            )
            branch_profile = branch_profile or profiles.branch_profile
            value_profile = value_profile or profiles.value_profile
            if memory_conflict_rates is None:
                memory_conflict_rates = profiles.memory_conflict_rates
        compute_side_effects(program)
        return partition_loop(
            program,
            loop,
            branch_profile=branch_profile,
            value_profile=value_profile,
            memory_conflict_rates=memory_conflict_rates,
            iterations=iterations,
        )

    def simulate_graph(self, graph: TaskGraph, threads: int) -> SimulationResult:
        simulator = PipelineSimulator(self.config.machine.with_cores(threads))
        return simulator.simulate(graph)
