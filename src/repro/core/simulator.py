"""The multi-core performance simulator (Section 3.1).

Deterministic, event-free implementation: because phase A and phase C are
serial chains and every extra constraint points forward in sequential order,
the whole schedule is computable in a single in-order pass of recurrences —
each task's start time is the max of its structural predecessors, its queue
availability, its core's free time, its serialization sources, and its
Commutative lock waits.

Modelled, per the paper:

- tasks communicate through bounded core-to-core queues
  (:class:`~repro.hw.queues.TimedQueueModel`); a producer stalls when its
  queue is full, a consumer waits while it is empty;
- phase B tasks are dynamically assigned to the least-loaded B core;
- a speculated dependence that actually occurred serializes the dependent
  task behind its source but costs nothing extra (misspeculation-as-
  serialization);
- Commutative groups execute atomically: each task's in-group section
  acquires a per-group lock (Section 2.3.2 — calls may happen in any order
  but must be atomic with respect to the group);
- microarchitectural effects are not modelled (no caches, no bandwidth),
  matching the paper's stated scope.

Not modelled (also per the paper): rollback cost beyond serialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.plan import ExecutionPlan
from repro.core.tasks import Phase, Task, TaskGraph
from repro.hw.machine import MachineConfig
from repro.hw.queues import TimedQueueModel


@dataclass
class SimulationResult:
    """Outcome of simulating one task graph on one machine."""

    machine: MachineConfig
    plan: ExecutionPlan
    makespan: int
    sequential_time: int
    task_end_times: List[int] = field(default_factory=list)
    #: Start times and core assignments, parallel to the task list; enough
    #: to independently re-validate the whole schedule (see
    #: tests/test_schedule_validity.py).
    task_start_times: List[int] = field(default_factory=list)
    task_cores: List[int] = field(default_factory=list)
    queue_stall_time: int = 0
    serialization_wait_time: int = 0
    lock_wait_time: int = 0
    core_busy_time: Dict[int, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.makespan == 0:
            return 1.0
        return self.sequential_time / self.makespan

    @property
    def utilization(self) -> float:
        capacity = self.makespan * self.machine.cores
        if capacity == 0:
            return 1.0
        return sum(self.core_busy_time.values()) / capacity

    def __repr__(self) -> str:
        return (
            f"SimulationResult(cores={self.machine.cores}, "
            f"makespan={self.makespan}, speedup={self.speedup:.2f})"
        )


class PipelineSimulator:
    """Simulates a :class:`TaskGraph` under an :class:`ExecutionPlan`."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine

    def simulate(self, graph: TaskGraph, plan: Optional[ExecutionPlan] = None) -> SimulationResult:
        has_a = bool(graph.tasks_in_phase(Phase.A))
        has_c = bool(graph.tasks_in_phase(Phase.C))
        if plan is None:
            plan = ExecutionPlan.for_machine(self.machine, has_a=has_a, has_c=has_c)

        if plan.is_sequential:
            return self._simulate_sequential(graph, plan)
        return self._simulate_pipeline(graph, plan)

    # -- one-core: the single-threaded baseline --------------------------------------

    def _simulate_sequential(self, graph: TaskGraph, plan: ExecutionPlan) -> SimulationResult:
        time = 0
        starts: List[int] = []
        ends: List[int] = []
        for task in graph.tasks:
            starts.append(time)
            time += task.cost
            ends.append(time)
        return SimulationResult(
            machine=self.machine,
            plan=plan,
            makespan=time,
            sequential_time=graph.total_cost(),
            task_end_times=ends,
            task_start_times=starts,
            task_cores=[0] * len(graph.tasks),
            core_busy_time={0: time},
        )

    # -- pipelined execution ------------------------------------------------------------

    def _simulate_pipeline(self, graph: TaskGraph, plan: ExecutionPlan) -> SimulationResult:
        latency = self.machine.communication_latency
        capacity = self.machine.queue_capacity
        b_cores = plan.b_cores

        queues_needed = 2 * len(b_cores)
        if queues_needed > self.machine.queue_count:
            raise ValueError(
                f"plan needs {queues_needed} queues but the machine has "
                f"{self.machine.queue_count}"
            )

        a_to_b: Dict[int, TimedQueueModel] = {
            core: TimedQueueModel(capacity, name=f"A->B{core}") for core in b_cores
        }
        b_to_c: Dict[int, TimedQueueModel] = {
            core: TimedQueueModel(capacity, name=f"B{core}->C") for core in b_cores
        }

        core_free: Dict[int, int] = {core: 0 for core in b_cores}
        if plan.a_core is not None:
            core_free.setdefault(plan.a_core, 0)
        if plan.c_core is not None:
            core_free.setdefault(plan.c_core, 0)
        busy: Dict[int, int] = {core: 0 for core in core_free}
        lock_free: Dict[str, int] = {}

        task_end: List[int] = [0] * len(graph.tasks)
        task_start: List[int] = [0] * len(graph.tasks)
        task_core: List[int] = [-1] * len(graph.tasks)
        serialization_wait = 0
        lock_wait_total = 0

        by_iteration = self._index_by_iteration(graph)
        a_prev_end = 0
        c_prev_end = 0
        # Consume bookkeeping: C must consume tokens of one queue in the
        # order they were produced; iterating iterations in order guarantees
        # that because per-core B assignment is monotone in iteration number.

        for iteration in range(graph.iterations()):
            a_task, b_task, c_task = by_iteration.get(iteration, (None, None, None))

            # ---- phase A: serial chain on the A core -------------------------------
            a_end = a_prev_end
            if a_task is not None:
                # A's core may be shared with C (2-core plans): respect the
                # core's actual availability, not just the A chain.
                a_ready = max(a_prev_end, core_free.get(plan.a_core, 0))
                ready, wait = self._constrained_start(
                    graph, a_task, a_ready, task_end
                )
                serialization_wait += wait
                finish = ready + a_task.cost
                busy[plan.a_core] = busy.get(plan.a_core, 0) + a_task.cost
                a_end = finish
                task_start[a_task.index] = ready
                task_core[a_task.index] = plan.a_core
            # B-core selection happens when the producing A task completes:
            # pick the least-loaded B core at that moment.
            b_core = min(b_cores, key=lambda core: (max(core_free[core], a_end), core))

            if a_task is not None and b_task is not None:
                # Produce the iteration token; a full queue stalls the A core.
                a_end = a_to_b[b_core].record_produce(a_end)
                task_end[a_task.index] = a_end
                a_prev_end = a_end
                core_free[plan.a_core] = max(core_free.get(plan.a_core, 0), a_end)
            elif a_task is not None:
                task_end[a_task.index] = a_end
                a_prev_end = a_end
                core_free[plan.a_core] = max(core_free.get(plan.a_core, 0), a_end)

            # ---- phase B: replicated parallel stage ----------------------------------
            b_end = a_end
            if b_task is not None:
                ready = max(core_free[b_core], a_end + latency if a_task is not None else 0)
                ready, wait = self._constrained_start(graph, b_task, ready, task_end)
                serialization_wait += wait
                if a_task is not None:
                    ready = a_to_b[b_core].record_consume(ready)
                start = ready
                lock_delay = self._acquire_locks(b_task, start, lock_free)
                lock_wait_total += lock_delay
                b_end = start + b_task.cost + lock_delay
                busy[b_core] = busy.get(b_core, 0) + b_task.cost
                if c_task is not None:
                    b_end = b_to_c[b_core].record_produce(b_end)
                core_free[b_core] = b_end
                task_end[b_task.index] = b_end
                task_start[b_task.index] = start
                task_core[b_task.index] = b_core

            # ---- phase C: serial chain on the C core -----------------------------------
            if c_task is not None:
                ready = max(
                    c_prev_end,
                    core_free.get(plan.c_core, 0),
                    (b_end + latency) if b_task is not None else 0,
                )
                ready, wait = self._constrained_start(graph, c_task, ready, task_end)
                serialization_wait += wait
                if b_task is not None:
                    ready = b_to_c[b_core].record_consume(ready)
                lock_delay = self._acquire_locks(c_task, ready, lock_free)
                lock_wait_total += lock_delay
                c_end = ready + c_task.cost + lock_delay
                busy[plan.c_core] = busy.get(plan.c_core, 0) + c_task.cost
                c_prev_end = c_end
                task_end[c_task.index] = c_end
                task_start[c_task.index] = ready
                task_core[c_task.index] = plan.c_core
                core_free[plan.c_core] = max(core_free.get(plan.c_core, 0), c_end)

        makespan = max(task_end) if task_end else 0
        queue_stall = sum(q.stall_time for q in a_to_b.values())
        queue_stall += sum(q.stall_time for q in b_to_c.values())
        return SimulationResult(
            machine=self.machine,
            plan=plan,
            makespan=makespan,
            sequential_time=graph.total_cost(),
            task_end_times=task_end,
            task_start_times=task_start,
            task_cores=task_core,
            queue_stall_time=queue_stall,
            serialization_wait_time=serialization_wait,
            lock_wait_time=lock_wait_total,
            core_busy_time=busy,
        )

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _index_by_iteration(graph: TaskGraph) -> Dict[int, Tuple[Optional[Task], Optional[Task], Optional[Task]]]:
        table: Dict[int, List[Optional[Task]]] = {}
        previous_iteration = -1
        for task in graph.tasks:
            if task.iteration < previous_iteration:
                # Serialization sources must be processed before their
                # targets; tasks arriving out of iteration order would let a
                # later-indexed source be scheduled after its target.
                raise ValueError(
                    "tasks must be supplied in iteration order "
                    f"(task {task.index} is iteration {task.iteration} after "
                    f"iteration {previous_iteration})"
                )
            previous_iteration = task.iteration
        for task in graph.tasks:
            slot = {"A": 0, "B": 1, "C": 2}[task.phase.value]
            row = table.setdefault(task.iteration, [None, None, None])
            if row[slot] is not None:
                raise ValueError(
                    f"iteration {task.iteration} has two {task.phase.value} tasks; "
                    "the pipeline model expects at most one task per phase per iteration"
                )
            row[slot] = task
        return {i: tuple(row) for i, row in table.items()}  # type: ignore[return-value]

    @staticmethod
    def _constrained_start(
        graph: TaskGraph,
        task: Task,
        ready: int,
        task_end: List[int],
    ) -> Tuple[int, int]:
        """Apply serialization edges; return (start time, wait attributable)."""
        start = ready
        for edge in graph.incoming(task.index):
            start = max(start, task_end[edge.source])
        return start, start - ready

    @staticmethod
    def _acquire_locks(task: Task, start: int, lock_free: Dict[str, int]) -> int:
        """Serialize the task's Commutative sections; return total lock wait."""
        wait_total = 0
        for group in sorted(task.section_costs):
            section = task.section_costs[group]
            acquire_at = max(start + wait_total, lock_free.get(group, 0))
            wait_total += acquire_at - (start + wait_total)
            lock_free[group] = acquire_at + section
        return wait_total
