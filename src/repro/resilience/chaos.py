"""The seeded chaos harness: randomized, reproducible fault schedules.

``FaultPlan.default_for`` hand-picks two iterations; real speculative
runtimes must survive *arbitrary* fault timing.  :func:`chaos_plan`
generalizes the plan into a randomized schedule drawn from one integer
seed — worker crashes, hangs, soft faults, forced conflicts, result-latency
spikes, duplicated results, dropped results, and (optionally) work-channel
latency/duplicate/drop injection — every run replayable bit-for-bit from
its printed seed.

:func:`run_chaos` is the harness proper: it times the sequential oracle,
runs the engine under the seeded schedule (with checkpointing and adaptive
throttling live), then audits the run with the cross-layer invariant
checkers (:mod:`repro.resilience.invariants`).  Any violation surfaces as a
structured, taxonomized :class:`~repro.resilience.invariants.InvariantError`
— never a silent divergence.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional

from repro.exec.channels import ChannelChaos
from repro.exec.faults import FaultPlan, RobustnessPolicy
from repro.obs.events import TraceConfig
from repro.resilience.checkpoint import CheckpointConfig
from repro.resilience.invariants import (
    InvariantError,
    InvariantViolation,
    check_run,
)
from repro.resilience.throttle import ThrottleConfig

logger = logging.getLogger(__name__)

#: Fast-recovery policy for chaos runs: sub-second hang detection, a respawn
#: budget sized for the default injection mix, tight polling.
CHAOS_POLICY = RobustnessPolicy(
    task_timeout=1.0,
    stall_timeout=20.0,
    max_respawns=8,
    poll_interval=0.01,
)


@dataclass(frozen=True)
class ChaosConfig:
    """How much of each misbehaviour one chaos run injects.

    Worker-side counts are iterations (disjointly sampled); channel-side
    counts are put indices on the phase-A work channel.  ``drops`` lose a
    worker's *result* message (recovered via the hung-task timeout);
    ``channel_drops`` lose a work item entirely, which forces graceful
    degradation — off by default, enabled for degradation-path tests.
    """

    crashes: int = 2
    hangs: int = 1
    soft_faults: int = 5
    conflicts: int = 5
    latencies: int = 4
    duplicates: int = 3
    drops: int = 1
    producer_crash: bool = False
    channel_latencies: int = 2
    channel_duplicates: int = 1
    channel_drops: int = 0
    latency_seconds: float = 0.02
    hang_seconds: float = 30.0

    @property
    def worker_total(self) -> int:
        return (
            self.crashes
            + self.hangs
            + self.soft_faults
            + self.conflicts
            + self.latencies
            + self.duplicates
            + self.drops
        )

    @property
    def total(self) -> int:
        return (
            self.worker_total
            + self.channel_latencies
            + self.channel_duplicates
            + self.channel_drops
            + (1 if self.producer_crash else 0)
        )

    @classmethod
    def sized(cls, total: int) -> "ChaosConfig":
        """Scale the default mix to roughly ``total`` injections."""
        base = cls()
        factor = total / base.total
        scaled = {
            name: max(0, round(getattr(base, name) * factor))
            for name in (
                "crashes",
                "hangs",
                "soft_faults",
                "conflicts",
                "latencies",
                "duplicates",
                "drops",
                "channel_latencies",
                "channel_duplicates",
            )
        }
        if sum(scaled.values()) == 0:
            scaled["soft_faults"] = max(1, total)
        return replace(base, **scaled)

    def fitted(self, iterations: int) -> "ChaosConfig":
        """Scale counts down so worker-side injections fit the run.

        At most half the iterations carry a worker-side injection, keeping
        disjoint sampling possible and the run recognizably a pipeline
        rather than pure fault traffic.
        """
        budget = max(1, iterations // 2)
        if self.worker_total <= budget:
            return self
        scale = budget / self.worker_total
        scaled = {
            name: int(getattr(self, name) * scale)
            for name in (
                "crashes",
                "hangs",
                "soft_faults",
                "conflicts",
                "latencies",
                "duplicates",
                "drops",
            )
        }
        if sum(scaled.values()) == 0:
            scaled["soft_faults"] = 1
        return replace(self, **scaled)


def chaos_plan(
    iterations: int, seed: int, config: Optional[ChaosConfig] = None
) -> FaultPlan:
    """A reproducible randomized :class:`FaultPlan` for one run."""
    config = (config or ChaosConfig()).fitted(iterations)
    rng = random.Random(seed)
    picks = rng.sample(
        range(iterations), min(iterations, config.worker_total)
    )
    cursor = 0

    def draw(count: int) -> frozenset:
        nonlocal cursor
        chunk = frozenset(picks[cursor : cursor + count])
        cursor += len(chunk)
        return chunk

    crash = draw(config.crashes)
    hang = draw(config.hangs)
    error = draw(config.soft_faults)
    conflict = draw(config.conflicts)
    latency = draw(config.latencies)
    duplicate = draw(config.duplicates)
    drop = draw(config.drops)
    producer_crash_at = (
        rng.randrange(iterations) if config.producer_crash else None
    )
    return FaultPlan(
        crash_iterations=crash,
        error_iterations=error,
        hang_iterations=hang,
        hang_seconds=config.hang_seconds,
        producer_crash_at=producer_crash_at,
        conflict_iterations=conflict,
        latency_iterations=latency,
        latency_seconds=config.latency_seconds,
        duplicate_result_iterations=duplicate,
        drop_result_iterations=drop,
    )


@dataclass(frozen=True)
class ServerKillPlan:
    """A seeded schedule of hard server kills (SIGKILL — no drain, no
    goodbye) for the durable job plane.  Each entry in :attr:`delays` is
    how long one server incarnation runs before the harness kills it; the
    incarnation after the last kill runs to completion.  The plan only
    *times* the kills — recovery correctness (journal replay, checkpoint
    resume, bit-identical output) is asserted by the harness that consumes
    it (``benchmarks/service_smoke.py``, the durability tests)."""

    seed: int
    #: Seconds each doomed server incarnation lives after jobs land.
    delays: tuple
    #: Floor each delay waits for at least one engine checkpoint to hit
    #: disk before killing (harnesses poll for ``checkpoint.pkl`` first).
    min_delay: float

    def format_summary(self) -> str:
        spaced = ", ".join(f"{d:.2f}s" for d in self.delays)
        return (
            f"server-kill plan (seed {self.seed}): "
            f"{len(self.delays)} kill(s) at [{spaced}] after submit"
        )

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "delays": list(self.delays),
            "min_delay": self.min_delay,
        }


def server_kill_plan(
    seed: int,
    kills: int = 1,
    min_delay: float = 0.4,
    max_delay: float = 1.5,
) -> ServerKillPlan:
    """Draw a reproducible :class:`ServerKillPlan` from ``seed`` (distinct
    stream offset, so the same seed's worker/channel chaos is unchanged)."""
    if kills < 1:
        raise ValueError("kills must be >= 1")
    if not 0 < min_delay <= max_delay:
        raise ValueError("need 0 < min_delay <= max_delay")
    rng = random.Random(f"{seed}/server-kill")
    delays = tuple(
        round(rng.uniform(min_delay, max_delay), 3) for _ in range(kills)
    )
    return ServerKillPlan(seed=seed, delays=delays, min_delay=min_delay)


def chaos_channel_plan(
    iterations: int, seed: int, config: Optional[ChaosConfig] = None
) -> Optional[ChannelChaos]:
    """Work-channel chaos for the same seed (distinct stream offset)."""
    config = (config or ChaosConfig()).fitted(iterations)
    total = (
        config.channel_latencies
        + config.channel_duplicates
        + config.channel_drops
    )
    if total == 0 or iterations == 0:
        return None
    rng = random.Random(f"{seed}/channel")
    picks = rng.sample(range(iterations), min(iterations, total))
    latencies = picks[: config.channel_latencies]
    duplicates = picks[
        config.channel_latencies : config.channel_latencies
        + config.channel_duplicates
    ]
    drops = picks[config.channel_latencies + config.channel_duplicates :]
    return ChannelChaos(
        latency_by_index={
            index: config.latency_seconds for index in latencies
        },
        duplicate_indices=frozenset(duplicates),
        drop_indices=frozenset(drops),
    )


@dataclass
class ChaosReport:
    """One audited chaos run: the seed, what was injected, what held."""

    seed: int
    injected_faults: int
    channel_injections: int
    result: Any  # EngineResult
    sequential_output: Any
    violations: List[InvariantViolation]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def output_identical(self) -> bool:
        return self.result.output == self.sequential_output

    def raise_on_violation(self) -> None:
        if self.violations:
            raise InvariantError(self.violations)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "injected_faults": self.injected_faults,
            "channel_injections": self.channel_injections,
            "ok": self.ok,
            "output_identical": self.output_identical,
            "violations": [str(violation) for violation in self.violations],
            "metrics": self.result.metrics.to_json(),
        }

    def format_summary(self) -> str:
        status = "OK" if self.ok else "INVARIANT VIOLATIONS"
        lines = [
            f"chaos: seed {self.seed}, {self.injected_faults} worker-side + "
            f"{self.channel_injections} channel-side injections -> {status}",
            f"output            "
            + (
                "bit-identical to sequential oracle"
                if self.output_identical
                else "DIVERGED from sequential oracle"
            ),
        ]
        lines += [f"  {violation}" for violation in self.violations]
        return "\n".join(lines)


def run_chaos(
    spec_factory: Callable[[], Any],
    seed: int,
    *,
    workers: int = 3,
    capacity: int = 8,
    config: Optional[ChaosConfig] = None,
    policy: Optional[RobustnessPolicy] = None,
    checkpoint_config: Optional[CheckpointConfig] = None,
    throttle_config: Optional[ThrottleConfig] = None,
    start_method: Optional[str] = None,
    batch_size: Optional[int] = None,
    flush_interval: Optional[float] = None,
    transport: Optional[str] = None,
    trace: Optional[TraceConfig] = None,
    live=None,
) -> ChaosReport:
    """One seeded chaos run, audited end to end.

    ``spec_factory`` must build a fresh :class:`PipelineSpec` per call
    (stateful phase-A producers!); the sequential oracle and the engine
    each get their own.  ``trace`` attaches the :mod:`repro.obs` tracing
    layer — the chaos harness is its hardest customer (crashed workers
    leave truncated spools; the merger must still produce a timeline).
    ``live`` (a :class:`repro.obs.LiveConfig`) attaches the real-time
    telemetry plane the same way: injected hangs freeze the commit
    frontier, which is exactly what the live watchdog exists to flag.
    """
    # Imported here: repro.exec.engine imports this package at module load.
    from repro.exec.engine import ExecutionEngine, run_sequential

    oracle_output, oracle_seconds = run_sequential(spec_factory())
    spec = spec_factory()
    config = (config or ChaosConfig()).fitted(spec.iterations)
    plan = chaos_plan(spec.iterations, seed, config)
    channel_chaos = chaos_channel_plan(spec.iterations, seed, config)
    logger.info(
        "chaos run: seed %d, %d worker-side + %d channel-side injections",
        seed,
        plan.injected_fault_count,
        channel_chaos.injection_count if channel_chaos else 0,
    )
    engine_kwargs = {}
    if batch_size is not None:
        engine_kwargs["batch_size"] = batch_size
    if flush_interval is not None:
        engine_kwargs["flush_interval"] = flush_interval
    if transport is not None:
        engine_kwargs["transport"] = transport
    engine = ExecutionEngine(
        workers=workers,
        capacity=capacity,
        policy=policy or CHAOS_POLICY,
        fault_plan=plan,
        start_method=start_method,
        throttle=throttle_config or ThrottleConfig(),
        checkpoints=checkpoint_config or CheckpointConfig(),
        channel_chaos=channel_chaos,
        trace=trace,
        live=live,
        **engine_kwargs,
    )
    result = engine.run(spec)
    result.metrics.sequential_seconds = oracle_seconds
    violations = check_run(result, sequential_output=oracle_output)
    return ChaosReport(
        seed=seed,
        injected_faults=plan.injected_fault_count,
        channel_injections=(
            channel_chaos.injection_count if channel_chaos else 0
        ),
        result=result,
        sequential_output=oracle_output,
        violations=violations,
    )
